package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// Config configures one pollution service: a compiled process, the
// source it consumes, and the fan-out behaviour.
type Config struct {
	// Schema is the input schema (announced to clients in hello frames).
	Schema *stream.Schema
	// Proc is the compiled pollution process (exactly one pipeline; the
	// server drives it through the streaming runner). The server owns
	// Proc.CleanTap for the duration of the run.
	Proc *core.Process
	// NewSource opens the input stream for the run.
	NewSource func() (stream.Source, error)
	// Reorder is the bounded reordering window of the streaming runner.
	Reorder int
	// Buffer is the per-subscriber send queue capacity (frames).
	Buffer int
	// Replay is the number of frames retained per channel for late
	// subscribers and reconnects.
	Replay int
	// Policy selects the backpressure behaviour for slow subscribers.
	Policy Policy
	// DrainTimeout bounds the graceful drain on shutdown: how long the
	// server waits for subscribers to finish reading after the pipeline
	// ends (default 5s).
	DrainTimeout time.Duration
	// Reg receives service metrics (nil-safe).
	Reg *obs.Registry
	// Logf, when set, receives service diagnostics.
	Logf func(format string, args ...any)
}

// Server runs one pollution pipeline and streams its outputs to
// subscribed clients.
type Server struct {
	cfg Config
	hub *Hub

	mu        sync.Mutex
	listeners []net.Listener

	pipelineDone chan struct{}
	pipelineErr  error
	wg           sync.WaitGroup
}

// NewServer validates cfg and builds the server (hub and hello frames
// included, so clients may subscribe before the pipeline starts).
func NewServer(cfg Config) (*Server, error) {
	if cfg.Schema == nil {
		return nil, fmt.Errorf("netstream: config needs a schema")
	}
	if cfg.Proc == nil {
		return nil, fmt.Errorf("netstream: config needs a process")
	}
	if cfg.NewSource == nil {
		return nil, fmt.Errorf("netstream: config needs a source factory")
	}
	if cfg.Reorder < 1 {
		cfg.Reorder = 1
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:          cfg,
		hub:          NewHub(cfg.Buffer, cfg.Replay, cfg.Policy, cfg.Reg),
		pipelineDone: make(chan struct{}),
	}
	doc := SchemaDocument(cfg.Schema)
	for _, name := range Channels() {
		if err := s.hub.SetHello(name, &Frame{Type: FrameHello, Channel: name, Schema: doc}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Hub exposes the server's broadcast hub (tests and embedders).
func (s *Server) Hub() *Hub { return s.hub }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// runPipeline executes the pollution process once, publishing every
// output to the hub, and finishes each channel with a terminal frame.
// Client-side failures never reach the pipeline: a disconnected or slow
// subscriber only affects its own subscription (per the backpressure
// policy), while source-side faults keep the PR-1 contract — quarantine
// and DLQ work unchanged under the server runner.
func (s *Server) runPipeline(ctx context.Context) error {
	proc := s.cfg.Proc
	proc.CleanTap = func(t stream.Tuple) {
		if err := s.hub.Publish(ChannelClean, &Frame{Type: FrameTuple, Tuple: EncodeTuple(t)}); err != nil {
			s.logf("clean publish: %v", err)
		}
	}
	defer func() { proc.CleanTap = nil }()

	fail := func(err error) error {
		msg := err.Error()
		for _, name := range Channels() {
			if perr := s.hub.Publish(name, &Frame{Type: FrameError, Error: msg}); perr != nil && !errors.Is(perr, ErrHubClosed) {
				s.logf("error publish on %s: %v", name, perr)
			}
		}
		return err
	}

	src, err := s.cfg.NewSource()
	if err != nil {
		return fail(fmt.Errorf("netstream: open source: %w", err))
	}
	defer stopSource(src)

	polluted, plog, err := proc.RunStream(stream.WithContext(ctx, src), s.cfg.Reorder)
	if err != nil {
		return fail(err)
	}
	flushed := 0
	flushLog := func() error {
		if plog == nil {
			return nil
		}
		for ; flushed < len(plog.Entries); flushed++ {
			e := plog.Entries[flushed]
			if err := s.hub.Publish(ChannelLog, &Frame{Type: FrameLog, Entry: &e}); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		t, err := polluted.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if _, ok := stream.AsTupleError(err); ok {
				// Tuple-level failure without quarantine: skip the tuple,
				// the stream remains usable (Source error contract).
				s.logf("tuple error: %v", err)
				continue
			}
			return fail(err)
		}
		// The log trails the polluted stream by at most the reorder
		// window; flushing per emitted tuple keeps subscribers current
		// without observing entries that could still be rolled back
		// (rollback happens inside Next, before the tuple is emitted).
		if err := flushLog(); err != nil {
			return fail(err)
		}
		if err := s.hub.Publish(ChannelDirty, &Frame{Type: FrameTuple, Tuple: EncodeTuple(t)}); err != nil {
			return fail(err)
		}
	}
	if err := flushLog(); err != nil {
		return fail(err)
	}
	for _, name := range Channels() {
		if err := s.hub.Publish(name, &Frame{Type: FrameEOF}); err != nil && !errors.Is(err, ErrHubClosed) {
			return err
		}
	}
	return nil
}

// stopSource stops a source implementing stream.Stopper.
func stopSource(src stream.Source) {
	if st, ok := src.(stream.Stopper); ok {
		st.Stop()
	}
}

// Serve runs the pipeline and serves subscribers until ctx is cancelled
// (SIGTERM in the daemon), then drains gracefully: subscribers get
// DrainTimeout to finish reading their queues before connections close.
// tcpLn and httpLn are optional (nil disables that listener). Serve
// returns the pipeline's error, if any.
func (s *Server) Serve(ctx context.Context, tcpLn, httpLn net.Listener) error {
	if tcpLn != nil {
		s.track(tcpLn)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.acceptLoop(tcpLn)
		}()
	}
	var httpSrv *http.Server
	if httpLn != nil {
		s.track(httpLn)
		httpSrv = &http.Server{Handler: s.HTTPHandler()}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				s.logf("http: %v", err)
			}
		}()
	}

	err := s.runPipeline(ctx)
	s.mu.Lock()
	s.pipelineErr = err
	s.mu.Unlock()
	close(s.pipelineDone)

	// The pipeline has published its terminal frames. Keep serving until
	// the caller cancels, so late clients can still fetch results from
	// the replay ring.
	<-ctx.Done()

	// Graceful drain: give connected subscribers DrainTimeout to empty
	// their queues, then close everything.
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for time.Now().Before(deadline) && s.hub.subscribers.Load() > 0 {
		time.Sleep(10 * time.Millisecond)
	}
	s.hub.Close()
	s.mu.Lock()
	for _, ln := range s.listeners {
		ln.Close()
	}
	s.mu.Unlock()
	if httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}
	s.wg.Wait()
	return err
}

// PipelineDone reports completion of the pollution run (closed channel)
// and its error.
func (s *Server) PipelineDone() <-chan struct{} { return s.pipelineDone }

// PipelineErr returns the pipeline's terminal error (nil before
// completion or on success).
func (s *Server) PipelineErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipelineErr
}

func (s *Server) track(ln net.Listener) {
	s.mu.Lock()
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
}

// acceptLoop serves raw-TCP subscribers.
func (s *Server) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

// handleConn speaks the TCP protocol: one subscribe frame in, then a
// stream of length-prefixed frames out until a terminal frame.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	var req SubscribeRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		s.writeErrorFrame(conn, fmt.Errorf("netstream: bad subscribe request: %w", err))
		return
	}
	if req.Channel == "" {
		req.Channel = ChannelDirty
	}
	sub, err := s.hub.Subscribe(req.Channel, req.FromSeq)
	if err != nil {
		s.writeErrorFrame(conn, err)
		return
	}
	defer sub.Close()
	bw := bufio.NewWriter(conn)
	for {
		data, terminal, err := sub.Recv()
		if err != nil {
			if errors.Is(err, ErrSlowClient) {
				s.writeErrorFrame(conn, err)
			}
			return
		}
		start := time.Now()
		if err := WriteFrame(bw, data); err != nil {
			return // client went away; pipeline unaffected
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.cfg.Reg.ObserveStage(obs.StageNetSend, time.Since(start))
		if terminal {
			return
		}
	}
}

// writeErrorFrame best-effort reports err to the peer as a terminal
// frame.
func (s *Server) writeErrorFrame(conn net.Conn, err error) {
	data, merr := EncodeFrame(&Frame{Type: FrameError, Error: err.Error()})
	if merr != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = WriteFrame(conn, data)
}

// HTTPHandler returns the service's HTTP interface:
//
//	GET /stream?channel=dirty|clean|log&from_seq=N  — NDJSON (chunked)
//	GET /sse?channel=...&from_seq=N                 — Server-Sent Events
//	GET /metrics                                    — Prometheus text
//	GET /healthz                                    — liveness + run state
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stream", func(w http.ResponseWriter, r *http.Request) {
		s.serveHTTPStream(w, r, false)
	})
	mux.HandleFunc("/sse", func(w http.ResponseWriter, r *http.Request) {
		s.serveHTTPStream(w, r, true)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.cfg.Reg.Snapshot()
		if snap == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WritePrometheus(w); err != nil {
			s.logf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		state := "running"
		select {
		case <-s.pipelineDone:
			if s.PipelineErr() != nil {
				state = "failed"
			} else {
				state = "done"
			}
		default:
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"state\":%q,\"dirty_seq\":%d,\"clean_seq\":%d,\"log_seq\":%d}\n",
			state, s.hub.Seq(ChannelDirty), s.hub.Seq(ChannelClean), s.hub.Seq(ChannelLog))
	})
	return mux
}

// serveHTTPStream subscribes the request and streams frames as NDJSON
// lines or SSE events until a terminal frame.
func (s *Server) serveHTTPStream(w http.ResponseWriter, r *http.Request, sse bool) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		channel = ChannelDirty
	}
	var fromSeq uint64
	if raw := r.URL.Query().Get("from_seq"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad from_seq", http.StatusBadRequest)
			return
		}
		fromSeq = v
	}
	sub, err := s.hub.Subscribe(channel, fromSeq)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrGap) {
			status = http.StatusGone
		}
		http.Error(w, err.Error(), status)
		return
	}
	defer sub.Close()
	flusher, _ := w.(http.Flusher)
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	ctx := r.Context()
	for {
		data, terminal, err := sub.RecvContext(ctx)
		if err != nil {
			if errors.Is(err, ErrSlowClient) {
				s.writeHTTPFrame(w, flusher, sse, slowClientFrame())
			}
			return
		}
		start := time.Now()
		if !s.writeHTTPFrame(w, flusher, sse, data) {
			return
		}
		s.cfg.Reg.ObserveStage(obs.StageNetSend, time.Since(start))
		if terminal {
			return
		}
	}
}

// slowClientFrame renders the disconnect-slow terminal frame.
func slowClientFrame() []byte {
	data, _ := EncodeFrame(&Frame{Type: FrameError, Error: ErrSlowClient.Error()})
	return data
}

// writeHTTPFrame writes one frame in the chosen HTTP encoding.
func (s *Server) writeHTTPFrame(w http.ResponseWriter, flusher http.Flusher, sse bool, data []byte) bool {
	if sse {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
	} else {
		if _, err := w.Write(append(data, '\n')); err != nil {
			return false
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	return true
}
