package netstream

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"icewafl/internal/stream"
)

// ClientSource is a stream.Source fed by a remote icewafld service over
// the raw-TCP protocol: pipelines can chain across processes by reading
// a server's dirty (or clean) channel as their input.
//
// Fault behaviour follows the Source error contract: the end of the
// remote stream is io.EOF, Stop cancels the source (stream.ErrStopped),
// and network failures are ordinary (retryable) errors — the source
// remembers the last delivered sequence number and transparently
// re-subscribes with from_seq on the next call, so wrapping a
// ClientSource in stream.RetrySource yields reconnect-with-backoff
// against a flapping server without duplicating or losing tuples (as
// long as the server's replay ring still covers the gap; when it does
// not, the server reports a terminal replay-gap error).
//
// Like every Source, a ClientSource is single-consumer: Next must be
// called from one goroutine. Stop is safe to call concurrently.
type ClientSource struct {
	addr        string
	channel     string
	dialTimeout time.Duration

	// Consumer-goroutine state (no locking needed beyond connMu for the
	// conn pointer, which Stop closes concurrently).
	br      *bufio.Reader
	nextSeq uint64 // sequence number of the next expected tuple frame
	eof     bool
	// pending holds rows of a colbatch frame not yet handed out: a
	// batch frame consumes one sequence number, so its rows are queued
	// locally and served by subsequent Next calls.
	pending []stream.Tuple

	schemaMu sync.Mutex
	schema   *stream.Schema

	connMu sync.Mutex
	conn   net.Conn

	stopped    atomic.Bool
	reconnects atomic.Uint64
}

// Dial connects to an icewafld server at addr and subscribes to channel
// (ChannelDirty or ChannelClean, or a session-namespaced
// <tenant>/<session>/dirty|clean; the log channel carries entries, not
// tuples, and is read with raw frames instead). The initial connection
// is made eagerly so the schema is known; see DialTimeout for a bounded
// variant.
func Dial(addr, channel string) (*ClientSource, error) {
	return DialTimeout(addr, channel, 10*time.Second)
}

// DialTimeout is Dial with a per-connection timeout (also applied to
// reconnects).
func DialTimeout(addr, channel string, timeout time.Duration) (*ClientSource, error) {
	return DialFrom(addr, channel, 0, timeout)
}

// DialFrom is Dial resuming at fromSeq (0 or 1 = from the beginning) —
// the recovery entry point after a GapError: re-subscribe at the
// error's ServerMin, accepting the lost frames in between.
func DialFrom(addr, channel string, fromSeq uint64, timeout time.Duration) (*ClientSource, error) {
	if channel == "" {
		channel = ChannelDirty
	}
	// Session-mode channels are namespaced <tenant>/<session>/<channel>;
	// only the final segment decides whether tuples flow on it.
	if base := channel[strings.LastIndexByte(channel, '/')+1:]; base != ChannelDirty && base != ChannelClean {
		return nil, fmt.Errorf("netstream: ClientSource reads tuple channels (dirty, clean), not %q", channel)
	}
	c := &ClientSource{addr: addr, channel: channel, dialTimeout: timeout, nextSeq: fromSeq}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect (re-)establishes the subscription, resuming at c.nextSeq.
// Called from the consumer goroutine (and once from DialTimeout).
func (c *ClientSource) connect() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.dialTimeout)
	if err != nil {
		return fmt.Errorf("netstream: dial %s: %w", c.addr, err)
	}
	req, err := json.Marshal(SubscribeRequest{Channel: c.channel, FromSeq: c.nextSeq})
	if err != nil {
		conn.Close()
		return err
	}
	_ = conn.SetDeadline(time.Now().Add(c.dialTimeout))
	if err := WriteFrame(conn, req); err != nil {
		conn.Close()
		return fmt.Errorf("netstream: subscribe: %w", err)
	}
	br := bufio.NewReader(conn)
	payload, err := ReadFrame(br)
	if err != nil {
		conn.Close()
		return fmt.Errorf("netstream: read hello: %w", err)
	}
	f, err := DecodeFrame(payload)
	if err != nil {
		conn.Close()
		return err
	}
	switch f.Type {
	case FrameHello:
	case FrameError:
		conn.Close()
		if f.Gap != nil {
			// A replay gap is permanent for this from_seq: retrying the
			// same resume point can never succeed, so surface a typed,
			// non-retryable error (stream.PermanentError) instead of
			// letting a retry layer loop forever.
			lastAcked := uint64(0)
			if c.nextSeq > 0 {
				lastAcked = c.nextSeq - 1
			}
			return &GapError{Channel: c.channel, Requested: f.Gap.Requested, LastAcked: lastAcked, ServerMin: f.Gap.ServerMin}
		}
		return fmt.Errorf("netstream: server rejected subscription: %s", f.Error)
	default:
		conn.Close()
		return fmt.Errorf("netstream: expected hello frame, got %q", f.Type)
	}
	schema, err := SchemaFromDocument(f.Schema)
	if err != nil {
		conn.Close()
		return err
	}
	c.schemaMu.Lock()
	if c.schema != nil && !sameSchema(c.schema, schema) {
		c.schemaMu.Unlock()
		conn.Close()
		return fmt.Errorf("netstream: server schema changed across reconnect")
	}
	if c.schema != nil {
		c.reconnects.Add(1)
	}
	c.schema = schema
	c.schemaMu.Unlock()
	_ = conn.SetDeadline(time.Time{})

	c.connMu.Lock()
	if c.stopped.Load() {
		c.connMu.Unlock()
		conn.Close()
		return stream.ErrStopped
	}
	c.conn = conn
	c.connMu.Unlock()
	c.br = br
	return nil
}

// sameSchema compares two schemas structurally.
func sameSchema(a, b *stream.Schema) bool {
	if a.Len() != b.Len() || a.Timestamp() != b.Timestamp() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if a.Field(i) != b.Field(i) {
			return false
		}
	}
	return true
}

// Schema implements stream.Source.
func (c *ClientSource) Schema() *stream.Schema {
	c.schemaMu.Lock()
	defer c.schemaMu.Unlock()
	return c.schema
}

// Reconnects returns how many times the source re-subscribed after a
// connection loss.
func (c *ClientSource) Reconnects() uint64 { return c.reconnects.Load() }

// RestartAt moves the resume point to seq (0 or 1 = from the beginning)
// and clears a previous end-of-stream, so the next Next call
// re-subscribes there. This is the recovery hook for a GapError under a
// restart resume policy: tuples between the last acked sequence and seq
// are lost (or duplicated, when seq rewinds) — the caller accepts that
// trade by calling RestartAt. Call from the consumer goroutine only.
func (c *ClientSource) RestartAt(seq uint64) {
	c.disconnect()
	c.nextSeq = seq
	c.eof = false
	// Queued colbatch rows belong to an already-acked frame; a restart
	// re-reads (or skips) that frame, so they must not also be served.
	c.pending = nil
}

// disconnect tears the connection down without ending the stream.
func (c *ClientSource) disconnect() {
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.connMu.Unlock()
	c.br = nil
}

// connected reports whether a live connection exists.
func (c *ClientSource) connected() bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn != nil
}

// Next implements stream.Source. Connection failures return a retryable
// error; the following call re-subscribes at the last delivered
// sequence number, which composes with stream.RetrySource for automatic
// reconnect-with-backoff.
func (c *ClientSource) Next() (stream.Tuple, error) {
	for {
		if c.stopped.Load() {
			return stream.Tuple{}, stream.ErrStopped
		}
		if len(c.pending) > 0 {
			t := c.pending[0]
			c.pending[0] = stream.Tuple{}
			c.pending = c.pending[1:]
			return t, nil
		}
		if c.eof {
			return stream.Tuple{}, io.EOF
		}
		if !c.connected() {
			if err := c.connect(); err != nil {
				return stream.Tuple{}, err
			}
		}
		payload, err := ReadFrame(c.br)
		if err != nil {
			c.disconnect()
			if c.stopped.Load() {
				return stream.Tuple{}, stream.ErrStopped
			}
			return stream.Tuple{}, fmt.Errorf("netstream: read frame: %w", err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			c.disconnect()
			return stream.Tuple{}, err
		}
		switch f.Type {
		case FrameTuple:
			if f.Seq < c.nextSeq {
				continue // duplicate from an overlapping replay
			}
			t, err := DecodeTuple(f.Tuple, c.Schema())
			if err != nil {
				c.disconnect()
				return stream.Tuple{}, err
			}
			c.nextSeq = f.Seq + 1
			return t, nil
		case FrameColBatch:
			if f.Seq < c.nextSeq {
				continue // duplicate from an overlapping replay
			}
			tuples, err := DecodeColumnBatch(f.Batch, c.Schema())
			if err != nil {
				c.disconnect()
				return stream.Tuple{}, err
			}
			c.nextSeq = f.Seq + 1
			// Empty batches are legal on the wire; just keep reading.
			c.pending = tuples
			continue
		case FrameHello:
			continue
		case FrameEOF:
			c.eof = true
			c.disconnect()
			return stream.Tuple{}, io.EOF
		case FrameError:
			c.disconnect()
			return stream.Tuple{}, fmt.Errorf("netstream: server error: %s", f.Error)
		default:
			c.disconnect()
			return stream.Tuple{}, fmt.Errorf("netstream: unexpected frame type %q on tuple channel", f.Type)
		}
	}
}

// Stop implements stream.Stopper: it cancels the subscription; Next
// returns stream.ErrStopped afterwards. Safe to call concurrently with
// Next (closing the connection unblocks a Next stuck reading).
func (c *ClientSource) Stop() {
	c.stopped.Store(true)
	c.connMu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.connMu.Unlock()
}
