package netstream

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"icewafl/internal/stream"
)

func wireSchema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "sensor", Kind: stream.KindString},
	)
}

// TestTupleRoundTrip checks that a tuple survives the wire encoding
// exactly: IDs, substream, timestamps with nanoseconds, and every
// attribute value (including NULL).
func TestTupleRoundTrip(t *testing.T) {
	schema := wireSchema(t)
	in := stream.NewTuple(schema, []stream.Value{
		stream.Time(time.Date(2021, 6, 1, 12, 0, 0, 987654321, time.UTC)),
		stream.Float(3.14159),
		stream.Null(),
	})
	in.ID = 42
	in.SubStream = 3
	in.EventTime = time.Date(2021, 6, 1, 12, 0, 0, 987654321, time.UTC)
	in.Arrival = in.EventTime.Add(17 * time.Millisecond)

	out, err := DecodeTuple(EncodeTuple(in), schema)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.SubStream != in.SubStream {
		t.Errorf("identity changed: got (%d,%d), want (%d,%d)", out.ID, out.SubStream, in.ID, in.SubStream)
	}
	if !out.EventTime.Equal(in.EventTime) || !out.Arrival.Equal(in.Arrival) {
		t.Errorf("timestamps changed: got (%v,%v), want (%v,%v)", out.EventTime, out.Arrival, in.EventTime, in.Arrival)
	}
	for i := 0; i < schema.Len(); i++ {
		if got, want := out.At(i).String(), in.At(i).String(); got != want {
			t.Errorf("attr %d: got %q, want %q", i, got, want)
		}
	}
}

// TestDecodeTupleMismatch rejects tuples whose arity disagrees with the
// schema.
func TestDecodeTupleMismatch(t *testing.T) {
	schema := wireSchema(t)
	wt := &WireTuple{ID: 1, Event: "2021-06-01T00:00:00Z", Arrival: "2021-06-01T00:00:00Z", Values: []string{"x"}}
	if _, err := DecodeTuple(wt, schema); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := DecodeTuple(nil, schema); err == nil {
		t.Fatal("expected nil payload error")
	}
}

// TestSchemaDocumentRoundTrip checks the hello-frame schema encoding.
func TestSchemaDocumentRoundTrip(t *testing.T) {
	schema := wireSchema(t)
	out, err := SchemaFromDocument(SchemaDocument(schema))
	if err != nil {
		t.Fatal(err)
	}
	if !sameSchema(schema, out) {
		t.Errorf("schema changed over the wire: %v vs %v", schema, out)
	}
	if _, err := SchemaFromDocument(nil); err == nil {
		t.Fatal("expected error for missing schema")
	}
}

// TestFrameIO round-trips length-prefixed frames and enforces the size
// limit in both directions.
func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte(`{"type":"hello"}`), {}, []byte(strings.Repeat("x", 1000))}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame changed: got %q, want %q", got, want)
		}
	}

	if err := WriteFrame(&buf, make([]byte, MaxFrameBytes+1)); err == nil {
		t.Fatal("expected oversized write to fail")
	}
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&hdr); err == nil {
		t.Fatal("expected hostile length prefix to fail")
	}
}

// TestParsePolicy covers the configuration spellings and their String
// round-trip.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{
		{"", PolicyBlock},
		{"block", PolicyBlock},
		{"drop-oldest", PolicyDropOldest},
		{"disconnect-slow", PolicyDisconnectSlow},
	} {
		got, err := ParsePolicy(tc.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
}
