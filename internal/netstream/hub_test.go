package netstream

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// publishN publishes n numbered tuple frames on the channel, failing the
// test on error.
func publishN(t *testing.T, h *Hub, channel string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f := &Frame{Type: FrameTuple, Tuple: &WireTuple{ID: uint64(i + 1), Event: "2021-06-01T00:00:00Z", Arrival: "2021-06-01T00:00:00Z"}}
		if err := h.Publish(channel, f); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
}

// recvAll drains sub until a terminal frame or error, returning the
// decoded frames (hello included).
func recvAll(t *testing.T, sub *Subscriber) []*Frame {
	t.Helper()
	var frames []*Frame
	for {
		data, terminal, err := sub.Recv()
		if err != nil {
			t.Fatalf("recv after %d frames: %v", len(frames), err)
		}
		f, err := DecodeFrame(data)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		if terminal {
			return frames
		}
	}
}

// TestHubReplayAndLiveDelivery: a subscriber present from the start and
// one arriving after completion observe the identical frame sequence.
func TestHubReplayAndLiveDelivery(t *testing.T) {
	h := NewHub(8, 1024, PolicyBlock, nil)
	if err := h.SetHello(ChannelDirty, &Frame{Type: FrameHello, Channel: ChannelDirty}); err != nil {
		t.Fatal(err)
	}

	early, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()

	var wg sync.WaitGroup
	var earlyFrames []*Frame
	wg.Add(1)
	go func() {
		defer wg.Done()
		earlyFrames = recvAll(t, early)
	}()

	publishN(t, h, ChannelDirty, 20)
	if err := h.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	late, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	lateFrames := recvAll(t, late)

	if len(earlyFrames) != 22 || len(lateFrames) != 22 { // hello + 20 tuples + eof
		t.Fatalf("frame counts: early %d, late %d, want 22", len(earlyFrames), len(lateFrames))
	}
	for i := range earlyFrames {
		if earlyFrames[i].Type != lateFrames[i].Type || earlyFrames[i].Seq != lateFrames[i].Seq {
			t.Errorf("frame %d differs: early %s/%d, late %s/%d", i,
				earlyFrames[i].Type, earlyFrames[i].Seq, lateFrames[i].Type, lateFrames[i].Seq)
		}
	}
	if earlyFrames[0].Type != FrameHello {
		t.Errorf("first frame = %s, want hello", earlyFrames[0].Type)
	}
	if got := earlyFrames[len(earlyFrames)-1].Type; got != FrameEOF {
		t.Errorf("last frame = %s, want eof", got)
	}
}

// TestHubFromSeqResume: subscribing with from_seq resumes mid-stream
// without duplicates, and a from_seq older than the ring reports ErrGap.
func TestHubFromSeqResume(t *testing.T) {
	h := NewHub(4, 8, PolicyBlock, nil)
	publishN(t, h, ChannelDirty, 30) // ring retains seq 23..30
	if err := h.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
		t.Fatal(err)
	} // ring now 24..31

	sub, err := h.Subscribe(ChannelDirty, 24)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	frames := recvAll(t, sub)
	if len(frames) != 8 { // 24..31, no hello configured
		t.Fatalf("got %d frames, want 8", len(frames))
	}
	if frames[0].Seq != 24 {
		t.Errorf("first replayed seq = %d, want 24", frames[0].Seq)
	}

	if _, err := h.Subscribe(ChannelDirty, 5); !errors.Is(err, ErrGap) {
		t.Fatalf("expected ErrGap for evicted seq, got %v", err)
	}
	if _, err := h.Subscribe("bogus", 0); err == nil {
		t.Fatal("expected error for unknown channel")
	}
}

// stepReader reads exactly one frame from sub (which must be available:
// either replayed or just delivered into its buffer).
func stepReader(t *testing.T, sub *Subscriber) *Frame {
	t.Helper()
	data, _, err := sub.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	f, err := DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestHubDropOldest: a subscriber that never reads loses its oldest
// frames — counted — while the publisher and a keeping-up subscriber
// proceed unimpeded. The fast subscriber reads in lockstep with the
// publisher, which makes the schedule deterministic.
func TestHubDropOldest(t *testing.T) {
	h := NewHub(4, 256, PolicyDropOldest, nil)

	slow, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	var fastFrames []*Frame
	for i := 0; i < 100; i++ {
		publishN(t, h, ChannelDirty, 1)
		fastFrames = append(fastFrames, stepReader(t, fast))
	}
	if err := h.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
		t.Fatal(err)
	}
	fastFrames = append(fastFrames, stepReader(t, fast))

	if len(fastFrames) != 101 || fastFrames[100].Type != FrameEOF {
		t.Errorf("fast subscriber got %d frames (last %s), want 101 ending in eof", len(fastFrames), fastFrames[len(fastFrames)-1].Type)
	}
	if fast.Dropped() != 0 {
		t.Errorf("fast subscriber dropped %d frames, want 0", fast.Dropped())
	}
	if slow.Dropped() == 0 {
		t.Error("slow subscriber should have dropped frames")
	}
	// The slow subscriber's queue holds the newest frames; drain and
	// check the terminal frame survived the evictions.
	slowFrames := recvAll(t, slow)
	if got := slowFrames[len(slowFrames)-1].Type; got != FrameEOF {
		t.Errorf("slow subscriber's last frame = %s, want eof", got)
	}
	if len(slowFrames)+int(slow.Dropped()) != 101 {
		t.Errorf("conservation: delivered %d + dropped %d != 101 published", len(slowFrames), slow.Dropped())
	}
}

// TestHubDisconnectSlow: the slow subscriber is cut with ErrSlowClient
// after its buffered frames drain; a keeping-up subscriber and the
// publisher never stall.
func TestHubDisconnectSlow(t *testing.T) {
	h := NewHub(4, 256, PolicyDisconnectSlow, nil)

	slow, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	fast, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()

	var fastFrames []*Frame
	for i := 0; i < 100; i++ {
		publishN(t, h, ChannelDirty, 1)
		fastFrames = append(fastFrames, stepReader(t, fast))
	}
	if err := h.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
		t.Fatal(err)
	}
	fastFrames = append(fastFrames, stepReader(t, fast))
	if len(fastFrames) != 101 || fastFrames[100].Type != FrameEOF {
		t.Errorf("fast subscriber got %d frames, want 101 ending in eof", len(fastFrames))
	}
	if h.slowDisconnects.Load() == 0 {
		t.Error("expected a counted slow disconnect")
	}

	// The slow subscriber still drains what was buffered, then observes
	// the disconnect cause.
	drained := 0
	for {
		_, _, err := slow.Recv()
		if err != nil {
			if !errors.Is(err, ErrSlowClient) {
				t.Fatalf("terminal error = %v, want ErrSlowClient", err)
			}
			break
		}
		drained++
	}
	if drained == 0 || drained > 4 {
		t.Errorf("slow subscriber drained %d frames, want 1..4 (its buffer)", drained)
	}
}

// TestHubBlockPolicy: under block, a stalled subscriber throttles the
// publisher, and no frame is ever lost once it resumes.
func TestHubBlockPolicy(t *testing.T) {
	h := NewHub(2, 256, PolicyBlock, nil)
	sub, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	published := make(chan struct{})
	go func() {
		defer close(published)
		publishN(t, h, ChannelDirty, 50)
		if err := h.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
			t.Errorf("eof publish: %v", err)
		}
	}()

	// Give the publisher a moment: it must stall with the queue full.
	select {
	case <-published:
		t.Fatal("publisher finished although the subscriber never read (block policy)")
	case <-time.After(50 * time.Millisecond):
	}

	frames := recvAll(t, sub) // consuming unblocks the publisher
	<-published
	if len(frames) != 51 {
		t.Errorf("got %d frames, want 51 (lossless)", len(frames))
	}
	for i, f := range frames[:50] {
		if f.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d, want %d", i, f.Seq, i+1)
		}
	}
}

// TestHubTerminalLatch: publishing after a terminal frame fails, and
// closed hubs refuse publishes and subscriptions.
func TestHubTerminalLatch(t *testing.T) {
	h := NewHub(4, 16, PolicyBlock, nil)
	publishN(t, h, ChannelDirty, 3)
	if err := h.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
		t.Fatal(err)
	}
	if err := h.Publish(ChannelDirty, &Frame{Type: FrameTuple, Tuple: &WireTuple{ID: 9}}); err == nil {
		t.Fatal("expected publish after eof to fail")
	}
	if err := h.Publish("bogus", &Frame{Type: FrameTuple}); err == nil {
		t.Fatal("expected publish on unknown channel to fail")
	}

	h.Close()
	h.Close() // idempotent
	if err := h.Publish(ChannelClean, &Frame{Type: FrameTuple, Tuple: &WireTuple{ID: 1}}); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("publish after close = %v, want ErrHubClosed", err)
	}
	if _, err := h.Subscribe(ChannelDirty, 0); !errors.Is(err, ErrHubClosed) {
		t.Fatalf("subscribe after close = %v, want ErrHubClosed", err)
	}
}

// TestHubCloseDrains: Hub.Close lets connected subscribers drain their
// buffered frames before reporting ErrHubClosed.
func TestHubCloseDrains(t *testing.T) {
	h := NewHub(16, 64, PolicyBlock, nil)
	sub, err := h.Subscribe(ChannelDirty, 0)
	if err != nil {
		t.Fatal(err)
	}
	publishN(t, h, ChannelDirty, 5)
	h.Close()

	got := 0
	for {
		_, _, err := sub.Recv()
		if err != nil {
			if !errors.Is(err, ErrHubClosed) {
				t.Fatalf("terminal error = %v, want ErrHubClosed", err)
			}
			break
		}
		got++
	}
	if got != 5 {
		t.Errorf("drained %d frames after close, want 5", got)
	}
}

// TestHubSubscriberCountStable: Close is idempotent on the aggregate
// subscriber gauge.
func TestHubSubscriberCountStable(t *testing.T) {
	h := NewHub(4, 16, PolicyBlock, nil)
	subs := make([]*Subscriber, 0, 3)
	for i := 0; i < 3; i++ {
		s, err := h.Subscribe(ChannelLog, 0)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if got := h.subscribers.Load(); got != 3 {
		t.Fatalf("subscribers = %d, want 3", got)
	}
	for _, s := range subs {
		s.Close()
		s.Close() // double close must not double-decrement
	}
	if got := h.subscribers.Load(); got != 0 {
		t.Errorf("subscribers after close = %d, want 0", got)
	}
}

// TestHubConcurrentSubscribeUnsubscribe hammers subscribe/close while a
// publisher runs, for the race detector.
func TestHubConcurrentSubscribeUnsubscribe(t *testing.T) {
	h := NewHub(4, 512, PolicyDropOldest, nil)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			f := &Frame{Type: FrameTuple, Tuple: &WireTuple{ID: uint64(i + 1), Event: "2021-06-01T00:00:00Z", Arrival: "2021-06-01T00:00:00Z"}}
			if err := h.Publish(ChannelDirty, f); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sub, err := h.Subscribe(ChannelDirty, 0)
				if err != nil {
					if errors.Is(err, ErrGap) {
						continue // ring moved past the beginning; expected
					}
					t.Errorf("subscribe: %v", err)
					return
				}
				if _, _, err := sub.Recv(); err != nil && !errors.Is(err, ErrHubClosed) && !errors.Is(err, ErrSlowClient) {
					t.Errorf("recv: %v", err)
				}
				sub.Close()
			}
		}(g)
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if got := h.subscribers.Load(); got != 0 {
		t.Errorf("subscribers after churn = %d, want 0", got)
	}
}
