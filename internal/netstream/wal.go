package netstream

// This file is the durability layer of the service: a segmented,
// checksummed write-ahead log that backs the Hub's replay ring, so a
// subscriber's from_seq resume survives daemon restarts and ErrGap only
// occurs past the configured retention.
//
// On-disk layout: one directory per channel, holding segment files named
// after the sequence number of their first record
// (00000000000000000001.wal, ...). A segment starts with an 8-byte magic
// and carries length-prefixed records:
//
//	[4B big-endian payload length n]
//	[4B CRC32C over seq|flags|payload]
//	[8B big-endian sequence number]
//	[1B flags (bit0 = terminal)]
//	[n payload bytes]
//
// Appends are single-Write calls (readers never observe a half-visible
// record boundary inside a fully appended record) and fsync is batched:
// every FsyncEvery appends plus explicit Sync calls at checkpoints and
// terminal frames. A crash can therefore tear at most the record being
// appended; OpenWAL scans the last segment and truncates the torn tail.
// Retention deletes whole closed segments, oldest first, once the log
// exceeds RetainBytes or a segment's records are older than RetainAge.
//
// All file I/O goes through the FS interface so the chaos harness can
// inject short writes, fsync errors and ENOSPC (internal/chaos.FaultFS).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// File is the subset of *os.File the WAL needs. Writes must report the
// number of bytes actually written (short writes leave a torn tail that
// the self-healing append path truncates).
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the filesystem under the WAL; chaos tests swap in a
// fault-injecting implementation.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Remove(name string) error
	MkdirAll(name string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) MkdirAll(name string, perm os.FileMode) error {
	return os.MkdirAll(name, perm)
}
func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

// Segment file format constants.
const (
	walMagic      = "IWFLWAL1"
	walHeaderLen  = len(walMagic)
	recHeaderLen  = 4 + 4 + 8 + 1 // length, crc, seq, flags
	walSuffix     = ".wal"
	flagTerminal  = 0x01
	walFileDigits = 20
)

// crcTable is the Castagnoli polynomial (CRC32C), the checksum used by
// most storage systems for its hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// WALOptions tunes one channel's log. The zero value applies the
// documented defaults.
type WALOptions struct {
	// SegmentBytes rotates the active segment once it grows past this
	// size (default 8 MiB).
	SegmentBytes int64
	// RetainBytes caps the total size of closed segments; the oldest are
	// deleted first (default 256 MiB; the active segment never counts).
	RetainBytes int64
	// RetainAge deletes closed segments whose newest record is older
	// (0 = keep regardless of age).
	RetainAge time.Duration
	// FsyncEvery batches fsync: one sync per this many appends (default
	// 64; 1 = sync every append). Sync is also forced explicitly at
	// checkpoints and terminal frames.
	FsyncEvery int
	// FS is the filesystem (default: the real one).
	FS FS
	// Now is the clock used for retention decisions (default time.Now).
	Now func() time.Time
	// Budget, when set, shares a byte ledger across several WALs — the
	// session service gives every tenant one budget spanning all of its
	// sessions' logs. The WAL keeps the ledger in step with its on-disk
	// segment bytes, and the retention sweep additionally drops closed
	// segments, oldest first, while the shared total exceeds the budget's
	// limit — so one tenant's sessions compete with each other for
	// retention instead of with the whole daemon.
	Budget *WALBudget
}

// WALBudget is a byte ledger shared by the WALs of one tenant's durable
// sessions. Each WAL settles its on-disk size into the ledger as it
// appends, rotates and retains; NewWALBudget's limit is the tenant's
// max_wal_bytes quota (0 = track usage without enforcing a ceiling).
type WALBudget struct {
	limit int64
	used  atomic.Int64
}

// NewWALBudget returns a budget enforcing the given byte limit across
// every WAL attached to it (0 or negative = unlimited, usage still
// tracked).
func NewWALBudget(limit int64) *WALBudget {
	if limit < 0 {
		limit = 0
	}
	return &WALBudget{limit: limit}
}

// Limit returns the configured ceiling (0 = unlimited).
func (b *WALBudget) Limit() int64 { return b.limit }

// Used returns the bytes currently accounted against the budget.
func (b *WALBudget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

func (b *WALBudget) add(n int64) {
	if b != nil && n != 0 {
		b.used.Add(n)
	}
}

// over reports whether the shared total exceeds the limit.
func (b *WALBudget) over() bool {
	return b != nil && b.limit > 0 && b.used.Load() > b.limit
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.RetainBytes <= 0 {
		o.RetainBytes = 256 << 20
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 64
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// WALRecord is one decoded log record.
type WALRecord struct {
	Seq      uint64
	Terminal bool
	Payload  []byte
}

// AppendRecord encodes one record and appends it to buf (the wire-level
// codec, exported for the fuzz fixed-point suite).
func AppendRecord(buf []byte, seq uint64, terminal bool, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[8:16], seq)
	if terminal {
		hdr[16] = flagTerminal
	}
	crc := crc32.Update(0, crcTable, hdr[8:17])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// ErrWALCorrupt reports a record that failed validation somewhere other
// than the torn tail of the last segment.
var ErrWALCorrupt = errors.New("netstream: wal record corrupt")

// DecodeRecord decodes the first record in b, returning the record and
// the number of bytes it occupies. Incomplete or corrupt prefixes return
// an error wrapping ErrWALCorrupt; n is then the number of valid bytes
// before the corruption (always 0 at a record boundary).
func DecodeRecord(b []byte) (WALRecord, int, error) {
	if len(b) < recHeaderLen {
		return WALRecord{}, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrWALCorrupt, len(b))
	}
	n := binary.BigEndian.Uint32(b[0:4])
	if n > MaxFrameBytes {
		return WALRecord{}, 0, fmt.Errorf("%w: payload length %d exceeds limit", ErrWALCorrupt, n)
	}
	total := recHeaderLen + int(n)
	if len(b) < total {
		return WALRecord{}, 0, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrWALCorrupt, len(b), total)
	}
	crc := crc32.Update(0, crcTable, b[8:17])
	crc = crc32.Update(crc, crcTable, b[recHeaderLen:total])
	if crc != binary.BigEndian.Uint32(b[4:8]) {
		return WALRecord{}, 0, fmt.Errorf("%w: checksum mismatch", ErrWALCorrupt)
	}
	return WALRecord{
		Seq:      binary.BigEndian.Uint64(b[8:16]),
		Terminal: b[16]&flagTerminal != 0,
		Payload:  b[recHeaderLen:total],
	}, total, nil
}

// segment is one on-disk segment file's index entry.
type segment struct {
	path     string
	firstSeq uint64 // sequence of the first record (also the file name)
	lastSeq  uint64 // 0 while empty
	bytes    int64
	terminal bool      // last record is terminal
	newest   time.Time // write time of the newest record (retention clock)
}

// WAL is one channel's durable frame log. Append and Sync are safe for
// one writer; ReadFrom readers run concurrently with the writer.
type WAL struct {
	dir  string
	opts WALOptions

	mu        sync.Mutex
	segments  []segment // closed segments plus the active one (last)
	active    File      // handle of segments[len-1]
	sinceSync int
	broken    bool  // active handle is suspect; recover before next append
	accounted int64 // bytes this log has settled into opts.Budget

	encBuf []byte // reusable append encoding buffer

	fsyncs    atomic.Uint64
	appends   atomic.Uint64
	truncated atomic.Uint64 // torn bytes dropped across opens/recoveries
}

// OpenWAL opens (or creates) the log under dir, validating every
// segment and truncating a torn tail on the last one. The returned WAL
// is positioned to append the next sequence number after MaxSeq.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("netstream: wal mkdir: %w", err)
	}
	w := &WAL{dir: dir, opts: opts}
	if err := w.load(); err != nil {
		return nil, err
	}
	// Credit recovered segments against the shared budget immediately, so
	// a restarted tenant's usage is accurate before the first append.
	w.settleBudgetLocked()
	return w, nil
}

// settleBudgetLocked reconciles the shared budget with this log's
// current on-disk size; called after any mutation of the segment index.
// Callers hold w.mu (or own the WAL exclusively during open).
func (w *WAL) settleBudgetLocked() {
	if w.opts.Budget == nil {
		return
	}
	var total int64
	for i := range w.segments {
		total += w.segments[i].bytes
	}
	w.opts.Budget.add(total - w.accounted)
	w.accounted = total
}

// ReleaseBudget returns this log's accounted bytes to the shared budget
// and detaches from it. The durable delete path calls it just before
// removing the session's state directory, so the tenant's budget
// reflects the reclaimed disk immediately.
func (w *WAL) ReleaseBudget() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.opts.Budget == nil {
		return
	}
	w.opts.Budget.add(-w.accounted)
	w.accounted = 0
	w.opts.Budget = nil
}

// load scans the directory, indexes segments and truncates the torn
// tail of the last one.
func (w *WAL) load() error {
	entries, err := w.opts.FS.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("netstream: wal readdir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, walSuffix), 10, 64)
		if err != nil {
			return fmt.Errorf("netstream: wal segment %q: bad name: %v", name, err)
		}
		segs = append(segs, segment{path: filepath.Join(w.dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	for i := range segs {
		last := i == len(segs)-1
		if err := w.scanSegment(&segs[i], last); err != nil {
			return err
		}
	}
	// An all-torn last segment (no surviving records) still serves as the
	// active segment; appends continue at its firstSeq.
	w.segments = segs
	if len(segs) == 0 {
		return w.startSegmentLocked(1)
	}
	// Reopen the last segment for appending.
	act := &w.segments[len(w.segments)-1]
	f, err := w.opts.FS.OpenFile(act.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("netstream: wal reopen active: %w", err)
	}
	if _, err := f.Seek(act.bytes, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("netstream: wal seek active: %w", err)
	}
	w.active = f
	return nil
}

// scanSegment validates one segment. For the last segment a torn tail is
// truncated away; for earlier segments any invalid record is corruption.
func (w *WAL) scanSegment(s *segment, last bool) error {
	// The retention-age clock for recovered segments starts at open time,
	// not at the file's mtime: segments inherited from a previous process
	// are exactly the replay window a resuming subscriber depends on, and
	// aging them by mtime would let a long-idle session's first
	// post-restart rotation mass-drop the whole log before anyone could
	// resume. They age out RetainAge after the reopen instead.
	s.newest = w.opts.Now()
	f, err := w.opts.FS.OpenFile(s.path, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("netstream: wal open %s: %w", s.path, err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("netstream: wal read %s: %w", s.path, err)
	}
	valid := 0
	if len(data) < walHeaderLen || string(data[:walHeaderLen]) != walMagic {
		if !last {
			return fmt.Errorf("netstream: wal segment %s: bad magic", s.path)
		}
		// Torn segment header: rewrite the whole file below.
	} else {
		valid = walHeaderLen
		off := walHeaderLen
		next := s.firstSeq
		for off < len(data) {
			rec, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				if !last {
					return fmt.Errorf("netstream: wal segment %s at offset %d: %w", s.path, off, derr)
				}
				break // torn tail; truncate at off
			}
			if rec.Seq != next {
				if !last {
					return fmt.Errorf("%w: segment %s at offset %d: seq %d, want %d", ErrWALCorrupt, s.path, off, rec.Seq, next)
				}
				break
			}
			s.lastSeq = rec.Seq
			s.terminal = rec.Terminal
			next = rec.Seq + 1
			off += n
			valid = off
		}
	}
	s.bytes = int64(valid)
	if int64(valid) != int64(len(data)) {
		w.truncated.Add(uint64(len(data) - valid))
		tf, err := w.opts.FS.OpenFile(s.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("netstream: wal truncate open %s: %w", s.path, err)
		}
		if valid < walHeaderLen {
			// The magic itself was torn: rewrite it so the segment stays
			// appendable.
			if err := tf.Truncate(0); err == nil {
				if _, werr := tf.Write([]byte(walMagic)); werr == nil {
					s.bytes = int64(walHeaderLen)
				} else {
					tf.Close()
					return fmt.Errorf("netstream: wal rewrite magic %s: %w", s.path, werr)
				}
			} else {
				tf.Close()
				return fmt.Errorf("netstream: wal truncate %s: %w", s.path, err)
			}
		} else if err := tf.Truncate(int64(valid)); err != nil {
			tf.Close()
			return fmt.Errorf("netstream: wal truncate %s: %w", s.path, err)
		}
		serr := tf.Sync()
		tf.Close()
		if serr != nil {
			return fmt.Errorf("netstream: wal truncate sync %s: %w", s.path, serr)
		}
	}
	return nil
}

// startSegmentLocked creates and activates a fresh segment whose first
// record will carry firstSeq. Callers hold w.mu (or own the WAL
// exclusively during load).
func (w *WAL) startSegmentLocked(firstSeq uint64) error {
	path := filepath.Join(w.dir, fmt.Sprintf("%0*d%s", walFileDigits, firstSeq, walSuffix))
	f, err := w.opts.FS.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("netstream: wal create segment: %w", err)
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		w.opts.FS.Remove(path)
		return fmt.Errorf("netstream: wal segment header: %w", err)
	}
	if w.active != nil {
		w.active.Sync()
		w.active.Close()
	}
	w.active = f
	w.segments = append(w.segments, segment{path: path, firstSeq: firstSeq, bytes: int64(walHeaderLen), newest: w.opts.Now()})
	return nil
}

// MinSeq returns the oldest retained sequence number (0 when empty).
func (w *WAL) MinSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range w.segments {
		if w.segments[i].lastSeq != 0 {
			return w.segments[i].firstSeq
		}
	}
	return 0
}

// MaxSeq returns the newest retained sequence number (0 when empty).
func (w *WAL) MaxSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.maxSeqLocked()
}

func (w *WAL) maxSeqLocked() uint64 {
	for i := len(w.segments) - 1; i >= 0; i-- {
		if w.segments[i].lastSeq != 0 {
			return w.segments[i].lastSeq
		}
	}
	return 0
}

// Terminal reports whether the newest retained record is terminal (the
// stream completed durably).
func (w *WAL) Terminal() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := len(w.segments) - 1; i >= 0; i-- {
		if w.segments[i].lastSeq != 0 {
			return w.segments[i].terminal
		}
	}
	return false
}

// Fsyncs returns the number of fsync calls issued so far.
func (w *WAL) Fsyncs() uint64 { return w.fsyncs.Load() }

// Appends returns the number of records appended in this process.
func (w *WAL) Appends() uint64 { return w.appends.Load() }

// TruncatedBytes returns the torn bytes dropped by tail recovery.
func (w *WAL) TruncatedBytes() uint64 { return w.truncated.Load() }

// SizeBytes returns the total on-disk size of all retained segments.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var n int64
	for i := range w.segments {
		n += w.segments[i].bytes
	}
	return n
}

// Segments returns the number of retained segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segments)
}

// Append durably adds one record. Sequence numbers must be contiguous
// (MaxSeq+1); anything else is a programming error upstream. On an I/O
// failure the append is rolled back (the torn tail truncated) so a
// subsequent Append with the same sequence can succeed once the fault
// clears.
func (w *WAL) Append(seq uint64, terminal bool, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Settle whatever this append did to the on-disk size — record bytes,
	// rotation, retention, torn-tail rollback — into the shared budget on
	// every exit path.
	defer w.settleBudgetLocked()
	if w.active == nil || len(w.segments) == 0 {
		return fmt.Errorf("netstream: wal closed")
	}
	if w.broken {
		if err := w.recoverLocked(); err != nil {
			return err
		}
		// A failed fsync leaves the previous append complete in the file;
		// the caller retries the same sequence (publishing is
		// deterministic across recovery), which after rescan is already
		// the tail of the log — finish it idempotently by supplying the
		// missing durability barrier.
		if max := w.maxSeqLocked(); max != 0 && seq == max {
			return w.syncLocked()
		}
	}
	if max := w.maxSeqLocked(); max != 0 && seq != max+1 {
		return fmt.Errorf("netstream: wal append seq %d, want %d", seq, max+1)
	}
	act := &w.segments[len(w.segments)-1]
	if act.lastSeq == 0 && seq != act.firstSeq {
		// Empty active segment: its name pins the first sequence. A
		// mismatch can only happen on the very first append of a fresh
		// log resuming at a later seq; restart the segment at seq.
		if act.bytes == int64(walHeaderLen) && len(w.segments) == 1 {
			w.active.Close()
			w.opts.FS.Remove(act.path)
			w.segments = w.segments[:0]
			w.active = nil
			if err := w.startSegmentLocked(seq); err != nil {
				return err
			}
			act = &w.segments[len(w.segments)-1]
		} else {
			return fmt.Errorf("netstream: wal append seq %d into segment starting at %d", seq, act.firstSeq)
		}
	}
	w.encBuf = AppendRecord(w.encBuf[:0], seq, terminal, payload)
	n, err := w.active.Write(w.encBuf)
	if err != nil || n != len(w.encBuf) {
		// Torn append: roll the partial record back so the segment stays
		// valid and the caller may retry the same sequence.
		if n > 0 {
			if terr := w.active.Truncate(act.bytes); terr != nil {
				w.broken = true
			} else if _, serr := w.active.Seek(act.bytes, io.SeekStart); serr != nil {
				w.broken = true
			} else {
				w.truncated.Add(uint64(n))
			}
		}
		if err == nil {
			err = io.ErrShortWrite
		}
		return fmt.Errorf("netstream: wal append: %w", err)
	}
	act.bytes += int64(n)
	act.lastSeq = seq
	act.terminal = terminal
	act.newest = w.opts.Now()
	w.appends.Add(1)
	w.sinceSync++
	if terminal || w.sinceSync >= w.opts.FsyncEvery {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if act.bytes >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// recoverLocked reopens the active segment after a suspect failure,
// truncating any torn tail.
func (w *WAL) recoverLocked() error {
	act := &w.segments[len(w.segments)-1]
	if w.active != nil {
		w.active.Close()
		w.active = nil
	}
	if err := w.scanSegment(act, true); err != nil {
		return err
	}
	f, err := w.opts.FS.OpenFile(act.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("netstream: wal recover reopen: %w", err)
	}
	if _, err := f.Seek(act.bytes, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("netstream: wal recover seek: %w", err)
	}
	w.active = f
	w.broken = false
	return nil
}

// Sync forces an fsync of the active segment (checkpoints call this so
// a durable checkpoint never runs ahead of the durable log).
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil {
		return nil
	}
	if w.sinceSync == 0 {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if err := w.active.Sync(); err != nil {
		w.broken = true
		return fmt.Errorf("netstream: wal fsync: %w", err)
	}
	w.fsyncs.Add(1)
	w.sinceSync = 0
	return nil
}

// rotateLocked closes the active segment, starts the next one, and
// applies retention.
func (w *WAL) rotateLocked() error {
	act := &w.segments[len(w.segments)-1]
	next := act.lastSeq + 1
	if act.lastSeq == 0 {
		next = act.firstSeq
	}
	if w.sinceSync > 0 {
		if err := w.syncLocked(); err != nil {
			return err
		}
	}
	if err := w.startSegmentLocked(next); err != nil {
		return err
	}
	w.retainLocked()
	return nil
}

// retainLocked deletes the oldest closed segments past the byte and age
// budgets — and, when a shared tenant budget is attached, while the
// tenant's total across all of its logs exceeds that budget. The active
// segment is never deleted.
func (w *WAL) retainLocked() {
	var total int64
	for i := range w.segments {
		total += w.segments[i].bytes
	}
	// Settle before consulting the shared budget, so the sweep sees the
	// rotation that triggered it; decrement per dropped segment so
	// sibling logs sweeping concurrently observe the reclaimed space.
	if w.opts.Budget != nil {
		w.opts.Budget.add(total - w.accounted)
		w.accounted = total
	}
	now := w.opts.Now()
	drop := 0
	for drop < len(w.segments)-1 {
		s := &w.segments[drop]
		overBytes := total > w.opts.RetainBytes
		overAge := w.opts.RetainAge > 0 && now.Sub(s.newest) > w.opts.RetainAge
		if !overBytes && !overAge && !w.opts.Budget.over() {
			break
		}
		if err := w.opts.FS.Remove(s.path); err != nil {
			break // retry on the next rotation
		}
		total -= s.bytes
		if w.opts.Budget != nil {
			w.opts.Budget.add(-s.bytes)
			w.accounted -= s.bytes
		}
		drop++
	}
	if drop > 0 {
		w.segments = append(w.segments[:0], w.segments[drop:]...)
	}
}

// Close releases the active segment (a final sync included).
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.active == nil {
		return nil
	}
	var err error
	if w.sinceSync > 0 && !w.broken {
		err = w.syncLocked()
	}
	cerr := w.active.Close()
	w.active = nil
	if err == nil {
		err = cerr
	}
	return err
}

// WALReader iterates records with Seq >= the requested start, in
// sequence order, validating checksums as it reads. It is safe to use
// concurrently with the writer: it never reads past the max sequence
// captured when the reader was created.
type WALReader struct {
	wal   *WAL
	next  uint64 // next sequence to deliver
	until uint64 // snapshot of MaxSeq at creation
	f     File
	buf   []byte
	off   int
	fill  int
}

// ReadFrom returns a reader positioned at the first retained record with
// sequence >= start. Reading past the newest record at creation time
// returns io.EOF (late records are the live hub's business).
func (w *WAL) ReadFrom(start uint64) (*WALReader, error) {
	if start == 0 {
		start = 1
	}
	w.mu.Lock()
	until := w.maxSeqLocked()
	w.mu.Unlock()
	return &WALReader{wal: w, next: start, until: until}, nil
}

// Next returns the next record. The payload is valid until the
// following Next call. Returns io.EOF past the creation-time snapshot.
func (r *WALReader) Next() (WALRecord, error) {
	for {
		if r.next > r.until || r.until == 0 {
			r.Close()
			return WALRecord{}, io.EOF
		}
		if r.f == nil {
			if err := r.openSegmentFor(r.next); err != nil {
				return WALRecord{}, err
			}
		}
		rec, err := r.readRecord()
		if err == io.EOF {
			// Segment exhausted; move to the one holding r.next.
			r.f.Close()
			r.f = nil
			continue
		}
		if err != nil {
			r.Close()
			return WALRecord{}, err
		}
		if rec.Seq < r.next {
			continue // skipping toward start inside the first segment
		}
		if rec.Seq != r.next {
			r.Close()
			return WALRecord{}, fmt.Errorf("%w: reader at seq %d found %d", ErrWALCorrupt, r.next, rec.Seq)
		}
		r.next = rec.Seq + 1
		return rec, nil
	}
}

// openSegmentFor opens the segment containing seq and positions after
// its magic.
func (r *WALReader) openSegmentFor(seq uint64) error {
	r.wal.mu.Lock()
	var path string
	for i := len(r.wal.segments) - 1; i >= 0; i-- {
		s := &r.wal.segments[i]
		if s.firstSeq <= seq {
			if s.lastSeq == 0 || s.lastSeq < seq {
				break // seq not in this or any older segment
			}
			path = s.path
			break
		}
	}
	minSeq := uint64(0)
	for i := range r.wal.segments {
		if r.wal.segments[i].lastSeq != 0 {
			minSeq = r.wal.segments[i].firstSeq
			break
		}
	}
	r.wal.mu.Unlock()
	if path == "" {
		return fmt.Errorf("%w: wal retains from seq %d, requested %d", ErrGap, minSeq, seq)
	}
	f, err := r.wal.opts.FS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("netstream: wal reader open: %w", err)
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != walMagic {
		f.Close()
		return fmt.Errorf("%w: reader segment magic", ErrWALCorrupt)
	}
	r.f = f
	r.off, r.fill = 0, 0
	return nil
}

// readRecord reads one record from the current segment file.
func (r *WALReader) readRecord() (WALRecord, error) {
	hdr, err := r.peek(recHeaderLen)
	if err != nil {
		return WALRecord{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[0:4]))
	if n > MaxFrameBytes {
		return WALRecord{}, fmt.Errorf("%w: reader payload length %d", ErrWALCorrupt, n)
	}
	full, err := r.peek(recHeaderLen + n)
	if err != nil {
		return WALRecord{}, err
	}
	rec, used, derr := DecodeRecord(full)
	if derr != nil {
		return WALRecord{}, derr
	}
	r.off += used
	return rec, nil
}

// peek ensures at least n bytes are buffered at r.off and returns them.
// io.EOF at a record boundary means the segment is exhausted.
func (r *WALReader) peek(n int) ([]byte, error) {
	for r.fill-r.off < n {
		if r.off > 0 {
			copy(r.buf, r.buf[r.off:r.fill])
			r.fill -= r.off
			r.off = 0
		}
		if cap(r.buf) < n {
			nb := make([]byte, max(n, 64<<10))
			copy(nb, r.buf[:r.fill])
			r.buf = nb
		}
		r.buf = r.buf[:cap(r.buf)]
		m, err := r.f.Read(r.buf[r.fill:])
		r.fill += m
		if err != nil {
			if err == io.EOF && r.fill-r.off == 0 {
				return nil, io.EOF
			}
			if err == io.EOF {
				// A partial record at the end of a non-final segment (or a
				// concurrent append not yet complete): treat as exhausted —
				// records past the creation snapshot are never needed.
				return nil, io.EOF
			}
			return nil, fmt.Errorf("netstream: wal reader: %w", err)
		}
	}
	return r.buf[r.off : r.off+n], nil
}

// Close releases the reader's file handle (idempotent).
func (r *WALReader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}
