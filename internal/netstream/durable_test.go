package netstream

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"icewafl/internal/obs"
)

// durableRequest builds one durable session's create request.
func durableRequest(t *testing.T, tenant, name string, seed int64, n int) SessionRequest {
	t.Helper()
	return SessionRequest{Tenant: tenant, Name: name, Spec: specJSON(t, testSessionSpec{Seed: seed, N: n})}
}

// drainSession subscribes to the session's dirty channel and reads it
// to the terminal frame, failing on anything but a clean EOF.
func drainSession(t *testing.T, tcpAddr, tenant, name string) {
	t.Helper()
	conn := subscribeTCP(t, tcpAddr, tenant+"/"+name+"/"+ChannelDirty, 0)
	defer conn.Close()
	_, terminal := readTCPFrames(t, conn)
	if terminal.Type != FrameEOF {
		t.Fatalf("%s/%s: terminal %q: %s", tenant, name, terminal.Type, terminal.Error)
	}
}

// TestServiceDurableWALBudgetQuota: a tenant whose max_wal_bytes budget
// is exhausted gets a typed wal_bytes QuotaError on the next create,
// the rejection is counted, and the per-tenant gauge rides in /metrics
// round-trippably. A tenant without the quota is unaffected.
func TestServiceDurableWALBudgetQuota(t *testing.T) {
	reg := obs.NewRegistry()
	svc, tcpAddr, baseURL := startService(t, ServiceConfig{
		Reg:      reg,
		StateDir: t.TempDir(),
		Quotas:   map[string]TenantQuota{"capped": {MaxWALBytes: 1}},
	})

	// The first session opens its logs (already more than 1 byte on
	// disk) and runs to completion.
	if _, err := svc.Create(durableRequest(t, "capped", "first", 3, 50)); err != nil {
		t.Fatal(err)
	}
	drainSession(t, tcpAddr, "capped", "first")

	_, err := svc.Create(durableRequest(t, "capped", "second", 3, 50))
	var qerr *QuotaError
	if !errors.As(err, &qerr) || !errors.Is(err, ErrQuota) {
		t.Fatalf("create over wal budget = %v, want *QuotaError", err)
	}
	if qerr.Resource != "wal_bytes" || qerr.Tenant != "capped" || qerr.Limit != 1 || qerr.Used == 0 {
		t.Fatalf("quota error = %+v", qerr)
	}

	// An uncapped tenant shares the service but not the budget.
	if _, err := svc.Create(durableRequest(t, "free", "s", 3, 50)); err != nil {
		t.Fatalf("uncapped tenant rejected: %v", err)
	}

	// The gauge round-trips through the Prometheus exposition.
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.TenantWALBytes["capped"] == 0 {
		t.Fatalf("icewafl_tenant_wal_bytes missing for capped tenant: %v", snap.TenantWALBytes)
	}
	if snap.TenantQuotaRejections["capped"] == 0 {
		t.Fatalf("wal_bytes rejection not counted: %v", snap.TenantQuotaRejections)
	}
}

// TestServiceDurableDeleteReleasesBudget is the satellite-3 accounting
// audit: create → delete → recreate cycles must return the tenant's
// WAL-byte ledger to zero and remove the state directory every time —
// no residue, no leak, no drift.
func TestServiceDurableDeleteReleasesBudget(t *testing.T) {
	stateDir := t.TempDir()
	svc, tcpAddr, _ := startService(t, ServiceConfig{
		StateDir: stateDir,
		Quotas:   map[string]TenantQuota{"cycler": {MaxWALBytes: 1 << 20}},
	})
	ts := svc.tenant("cycler")
	sessDir := filepath.Join(stateDir, "cycler", "s")

	for cycle := 0; cycle < 3; cycle++ {
		if _, err := svc.Create(durableRequest(t, "cycler", "s", 5, 80)); err != nil {
			t.Fatalf("cycle %d create: %v", cycle, err)
		}
		drainSession(t, tcpAddr, "cycler", "s")
		if used := ts.walBudget.Used(); used == 0 {
			t.Fatalf("cycle %d: no WAL bytes accounted while running", cycle)
		}
		if _, err := os.Stat(filepath.Join(sessDir, "spec.json")); err != nil {
			t.Fatalf("cycle %d: spec not persisted: %v", cycle, err)
		}
		if err := svc.Delete("cycler", "s"); err != nil {
			t.Fatalf("cycle %d delete: %v", cycle, err)
		}
		if used := ts.walBudget.Used(); used != 0 {
			t.Fatalf("cycle %d: %d WAL bytes still accounted after delete", cycle, used)
		}
		if _, err := os.Stat(sessDir); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("cycle %d: state dir survives delete: %v", cycle, err)
		}
	}
}

// TestServiceDurableArchiveDeleted: with ArchiveDeleted the teardown
// moves the session's state under <StateDir>/.deleted instead of
// removing it, numbering repeat archives instead of clobbering.
func TestServiceDurableArchiveDeleted(t *testing.T) {
	stateDir := t.TempDir()
	svc, tcpAddr, _ := startService(t, ServiceConfig{
		StateDir:       stateDir,
		ArchiveDeleted: true,
	})
	for cycle := 0; cycle < 2; cycle++ {
		if _, err := svc.Create(durableRequest(t, "t", "a", 9, 30)); err != nil {
			t.Fatalf("cycle %d create: %v", cycle, err)
		}
		drainSession(t, tcpAddr, "t", "a")
		if err := svc.Delete("t", "a"); err != nil {
			t.Fatalf("cycle %d delete: %v", cycle, err)
		}
	}
	first := filepath.Join(stateDir, ".deleted", "t", "a")
	second := first + ".1"
	for _, p := range []string{first, second} {
		if _, err := os.Stat(filepath.Join(p, "spec.json")); err != nil {
			t.Fatalf("archive %s incomplete: %v", p, err)
		}
	}
	if _, err := os.Stat(filepath.Join(stateDir, "t", "a")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("live state dir survives archive: %v", err)
	}
}

// TestServiceDurableRecover is the in-process restart round-trip: a
// second Service pointed at the first one's state dir resurrects every
// persisted session through Recover, marks it resumed, settles the
// tenant's budget from the bytes already on disk, and serves streams
// byte-identical to the original run. The .deleted archive area is
// never mistaken for a tenant.
func TestServiceDurableRecover(t *testing.T) {
	stateDir := t.TempDir()
	const n = 120
	svc1, tcp1, _ := startService(t, ServiceConfig{
		StateDir:       stateDir,
		ArchiveDeleted: true,
	})
	for _, tenant := range []string{"alpha", "beta"} {
		for _, name := range []string{"s0", "s1"} {
			if _, err := svc1.Create(durableRequest(t, tenant, name, 7, n)); err != nil {
				t.Fatalf("create %s/%s: %v", tenant, name, err)
			}
			drainSession(t, tcp1, tenant, name)
		}
	}
	// One deleted session lands in the archive; Recover must skip it.
	if err := svc1.Delete("alpha", "s1"); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2, tcp2, _ := startService(t, ServiceConfig{
		StateDir: stateDir,
		Quotas:   map[string]TenantQuota{"alpha": {MaxWALBytes: 1 << 20}},
	})
	ids, err := svc2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha/s0", "beta/s0", "beta/s1"}
	if len(ids) != len(want) {
		t.Fatalf("recovered %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("recovered %v, want %v", ids, want)
		}
	}

	// Recovered sessions carry the durable markers on the control plane.
	for _, st := range svc2.List() {
		if !st.Durable || !st.Resumed {
			t.Fatalf("session %s/%s: durable=%t resumed=%t, want both", st.Tenant, st.Name, st.Durable, st.Resumed)
		}
	}
	// The recovered bytes were settled into alpha's budget before any
	// new append.
	if used := svc2.tenant("alpha").walBudget.Used(); used == 0 {
		t.Fatal("alpha's recovered WAL bytes not settled into the budget")
	}

	// Every resurrected stream replays byte-identical to the reference.
	refDirty, _, _ := referenceRun(t, 7, n, 1)
	for _, id := range want {
		conn := subscribeTCP(t, tcp2, id+"/"+ChannelDirty, 0)
		tuples, terminal := readTCPFrames(t, conn)
		conn.Close()
		if terminal.Type != FrameEOF {
			t.Fatalf("%s: terminal %q: %s", id, terminal.Type, terminal.Error)
		}
		sameTuples(t, id, tuples, refDirty)
	}

	// The deleted session stayed deleted.
	if _, ok := svc2.Get("alpha", "s1"); ok {
		t.Fatal("archived session resurrected")
	}
}
