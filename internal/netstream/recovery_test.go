// Crash-recovery tests for the durable service runtime: WAL-backed
// replay across server restarts, checkpoint resume of an interrupted
// pipeline with no duplicated or skipped sequence numbers, supervised
// in-process session restarts, quarantine reporting, and the bounded
// drain under a stuck subscriber.
package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/stream"
)

// startStoppableServer is startServer with an explicit stop function,
// so a test can shut one server down completely (WALs closed) before
// starting its successor over the same state directory.
func startStoppableServer(t *testing.T, cfg Config) (srv *Server, tcpAddr, httpAddr string, stop func()) {
	t.Helper()
	if cfg.Schema == nil {
		cfg.Schema = wireSchema(t)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 100 * time.Millisecond
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, tcpLn, httpLn); err != nil {
			t.Logf("serve: %v", err)
		}
	}()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
	t.Cleanup(stop)
	return srv, tcpLn.Addr().String(), httpLn.Addr().String(), stop
}

// failAfterSource emits the first n tuples of the wrapped source, then
// fails with a fatal (non-tuple, non-EOF) error — the in-process stand-
// in for a crashing session.
type failAfterSource struct {
	stream.Source
	left int
}

func (f *failAfterSource) Next() (stream.Tuple, error) {
	if f.left == 0 {
		return stream.Tuple{}, errors.New("injected fatal source failure")
	}
	f.left--
	return f.Source.Next()
}

// frameSeqs subscribes raw from fromSeq and returns the sequence
// numbers of every tuple frame until EOF.
func frameSeqs(t *testing.T, addr, channel string, fromSeq uint64) []uint64 {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req, _ := json.Marshal(SubscribeRequest{Channel: channel, FromSeq: fromSeq})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(15 * time.Second))
	br := bufio.NewReader(conn)
	var seqs []uint64
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case FrameHello:
		case FrameTuple, FrameColBatch:
			seqs = append(seqs, f.Seq)
		case FrameEOF:
			return seqs
		default:
			t.Fatalf("unexpected frame %q", f.Type)
		}
	}
}

// waitPipelineDone blocks until the server's pipeline run finishes.
func waitPipelineDone(t *testing.T, srv *Server) {
	t.Helper()
	select {
	case <-srv.PipelineDone():
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline never finished")
	}
}

// TestServerWALReplayAcrossRestart: a daemon restarted over a completed
// durable run serves every channel entirely from the WAL — without
// re-running the pipeline — byte-identical to the original, including
// mid-stream from_seq resumes.
func TestServerWALReplayAcrossRestart(t *testing.T) {
	const seed, n = 41, 200
	walDir := t.TempDir()
	refDirty, refClean, refLog := referenceRun(t, seed, n, 1)

	cfg := serverConfig(t, seed, n)
	cfg.WALDir = walDir
	srv1, addr1, _, stop1 := startStoppableServer(t, cfg)
	waitPipelineDone(t, srv1)
	if err := srv1.PipelineErr(); err != nil {
		t.Fatalf("first run failed: %v", err)
	}
	c1, err := Dial(addr1, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "dirty before restart", drainClient(t, c1), refDirty)
	stop1()

	// The restarted server must never re-run the pipeline: a completed
	// durable run serves from the log alone.
	cfg2 := serverConfig(t, seed, n)
	cfg2.WALDir = walDir
	cfg2.NewSource = func() (stream.Source, error) {
		return nil, errors.New("pipeline must not re-run over a terminal wal")
	}
	srv2, addr2, _, _ := startStoppableServer(t, cfg2)
	waitPipelineDone(t, srv2)
	if err := srv2.PipelineErr(); err != nil {
		t.Fatalf("restart over terminal wal re-ran the pipeline: %v", err)
	}

	c2, err := Dial(addr2, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "dirty after restart", drainClient(t, c2), refDirty)
	cc, err := Dial(addr2, ChannelClean)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "clean after restart", drainClient(t, cc), refClean)
	entries := readLogChannel(t, addr2)
	if len(entries) != len(refLog.Entries) {
		t.Fatalf("log after restart: %d entries, want %d", len(entries), len(refLog.Entries))
	}
	for i := range entries {
		if !reflect.DeepEqual(entries[i], refLog.Entries[i]) {
			t.Fatalf("log entry %d differs after restart:\ngot  %+v\nwant %+v", i, entries[i], refLog.Entries[i])
		}
	}

	// Mid-stream resume straight out of the WAL.
	mid := uint64(n / 2)
	seqs := frameSeqs(t, addr2, ChannelDirty, mid)
	if uint64(len(seqs)) != uint64(n)-mid+1 {
		t.Fatalf("from_seq=%d: got %d frames, want %d", mid, len(seqs), uint64(n)-mid+1)
	}
	for i, s := range seqs {
		if s != mid+uint64(i) {
			t.Fatalf("resume out of order at %d: seq %d, want %d", i, s, mid+uint64(i))
		}
	}
}

// TestServerCheckpointResumeMidRun is the acceptance test of the
// tentpole recovery path: the pipeline dies mid-run, the restarted
// server resumes from the durable checkpoint, re-served frames continue
// the WAL sequence with no duplicates or gaps, and a client draining
// the restarted server observes a stream byte-identical to an
// uninterrupted run.
func TestServerCheckpointResumeMidRun(t *testing.T) {
	const seed, n, dieAt = 43, 160, 70
	stateDir := t.TempDir()
	walDir := stateDir + "/wal"
	ckPath := stateDir + "/checkpoint.json"
	refDirty, refClean, refLog := referenceRun(t, seed, n, 1)

	cfg := serverConfig(t, seed, n)
	cfg.WALDir = walDir
	cfg.CheckpointPath = ckPath
	cfg.CheckpointEvery = 16
	cfg.WAL = WALOptions{FsyncEvery: 8}
	src := cfg.NewSource
	cfg.NewSource = func() (stream.Source, error) {
		inner, err := src()
		if err != nil {
			return nil, err
		}
		return &failAfterSource{Source: inner, left: dieAt}, nil
	}
	srv1, _, _, stop1 := startStoppableServer(t, cfg)
	waitPipelineDone(t, srv1)
	if err := srv1.PipelineErr(); err == nil {
		t.Fatal("first run was supposed to die mid-stream")
	}
	stop1()

	ck, err := core.ReadCheckpoint(ckPath)
	if err != nil {
		t.Fatalf("no checkpoint survived the crash: %v", err)
	}
	if ck.Offsets["net."+ChannelDirty] == 0 {
		t.Fatalf("checkpoint carries no dirty cursor: %+v", ck.Offsets)
	}

	cfg2 := serverConfig(t, seed, n)
	cfg2.WALDir = walDir
	cfg2.CheckpointPath = ckPath
	cfg2.CheckpointEvery = 16
	cfg2.WAL = WALOptions{FsyncEvery: 8}
	srv2, addr2, _, _ := startStoppableServer(t, cfg2)
	waitPipelineDone(t, srv2)
	if err := srv2.PipelineErr(); err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	if srv2.Hub().Recovered() == 0 {
		t.Fatal("resume never exercised the suppression window (recovered = 0)")
	}

	c, err := Dial(addr2, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "dirty across crash", drainClient(t, c), refDirty)
	cc, err := Dial(addr2, ChannelClean)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "clean across crash", drainClient(t, cc), refClean)
	entries := readLogChannel(t, addr2)
	if len(entries) != len(refLog.Entries) {
		t.Fatalf("log across crash: %d entries, want %d", len(entries), len(refLog.Entries))
	}

	// Never double-serve or skip a sequence: the full dirty frame
	// sequence is exactly 1..n.
	seqs := frameSeqs(t, addr2, ChannelDirty, 1)
	if len(seqs) != n {
		t.Fatalf("dirty frames across crash: %d, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("sequence broken at %d: seq %d, want %d (duplicate or gap across restart)", i, s, i+1)
		}
	}
}

// TestServerSuperviseRestartsSession: under -supervise a fatal session
// failure restarts the pipeline in-process; with the WAL and checkpoint
// armed the restarted session continues the stream seamlessly and the
// restart is counted.
func TestServerSuperviseRestartsSession(t *testing.T) {
	const seed, n, dieAt = 47, 120, 50
	stateDir := t.TempDir()
	refDirty, _, _ := referenceRun(t, seed, n, 1)

	cfg := serverConfig(t, seed, n)
	cfg.WALDir = stateDir + "/wal"
	cfg.CheckpointPath = stateDir + "/checkpoint.json"
	cfg.CheckpointEvery = 8
	cfg.Supervise = true
	cfg.RestartBudget = 3
	cfg.RestartWindow = time.Minute
	cfg.RestartBackoff = time.Millisecond
	src := cfg.NewSource
	attempts := 0
	cfg.NewSource = func() (stream.Source, error) {
		attempts++
		inner, err := src()
		if err != nil {
			return nil, err
		}
		if attempts == 1 {
			return &failAfterSource{Source: inner, left: dieAt}, nil
		}
		return inner, nil
	}
	srv, addr, httpAddr, _ := startStoppableServer(t, cfg)
	waitPipelineDone(t, srv)
	if err := srv.PipelineErr(); err != nil {
		t.Fatalf("supervised run did not recover: %v", err)
	}
	if got := srv.Supervisor().Restarts(); got != 1 {
		t.Fatalf("Restarts() = %d, want 1", got)
	}
	if srv.Supervisor().Quarantined() {
		t.Fatal("session quarantined despite recovering")
	}

	c, err := Dial(addr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "dirty across supervised restart", drainClient(t, c), refDirty)

	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["restarts"] != float64(1) {
		t.Fatalf("healthz restarts = %v, want 1 (%v)", health["restarts"], health)
	}
	if health["state"] == "quarantined" {
		t.Fatalf("healthz reports quarantine on a recovered session: %v", health)
	}
}

// TestServerQuarantineOnRestartBudget: a session that keeps dying
// exhausts its restart budget, is quarantined instead of crash-looping,
// and /healthz reports it.
func TestServerQuarantineOnRestartBudget(t *testing.T) {
	const seed, n = 53, 100
	cfg := serverConfig(t, seed, n)
	cfg.WALDir = t.TempDir()
	cfg.Supervise = true
	cfg.RestartBudget = 2
	cfg.RestartWindow = time.Minute
	cfg.RestartBackoff = time.Millisecond
	cfg.NewSource = func() (stream.Source, error) {
		return nil, errors.New("source permanently broken")
	}
	srv, _, httpAddr, _ := startStoppableServer(t, cfg)
	waitPipelineDone(t, srv)
	err := srv.PipelineErr()
	if err == nil || !errors.Is(err, ErrQuarantined) {
		t.Fatalf("pipeline error = %v, want quarantine", err)
	}
	if !srv.Supervisor().Quarantined() {
		t.Fatal("Quarantined() = false after budget exhaustion")
	}
	if got := srv.Supervisor().Restarts(); got != 2 {
		t.Fatalf("Restarts() = %d, want 2", got)
	}

	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["state"] != "quarantined" {
		t.Fatalf("healthz state = %v, want quarantined (%v)", health["state"], health)
	}
}

// TestServerDrainExpiredOnStuckSubscriber: a subscriber that stops
// reading under the block policy wedges its handler in a TCP write; the
// drain deadline must still bound shutdown, force-close the connection,
// and mark the drain expired (the daemon exits non-zero on it).
func TestServerDrainExpiredOnStuckSubscriber(t *testing.T) {
	const seed, n = 59, 60000
	cfg := serverConfig(t, seed, n)
	cfg.Policy = PolicyBlock
	cfg.Buffer = 16
	cfg.DrainTimeout = 300 * time.Millisecond
	srv, addr, _, stop := startStoppableServer(t, cfg)

	// Subscribe and never read past the hello: the send queue fills, the
	// handler wedges in the TCP write once the socket buffers fill, and
	// the pipeline blocks in Publish. Wait until the publish cursor
	// actually stalls before shutting down, so the drain path is
	// exercised against a genuinely wedged pipeline.
	conn := subscribeRaw(t, addr, ChannelDirty)
	defer conn.Close()
	var last uint64
	stable := 0
	wedgeDeadline := time.Now().Add(30 * time.Second)
	for stable < 3 {
		if time.Now().After(wedgeDeadline) {
			t.Fatalf("pipeline never wedged (seq %d of %d)", last, n)
		}
		time.Sleep(100 * time.Millisecond)
		cur := srv.Hub().Seq(ChannelDirty)
		if cur > 0 && cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
	}
	if last >= n {
		t.Fatalf("pipeline finished (%d frames) instead of wedging on the stuck subscriber", last)
	}

	start := time.Now()
	stop()
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown with a stuck subscriber took %v", elapsed)
	}
	if !srv.DrainExpired() {
		t.Fatal("DrainExpired() = false after force-closing a stuck subscriber")
	}
}

// gapSource always fails with a replay gap and counts the attempts.
type gapSource struct {
	schema *stream.Schema
	calls  int
}

func (g *gapSource) Schema() *stream.Schema { return g.schema }
func (g *gapSource) Next() (stream.Tuple, error) {
	g.calls++
	return stream.Tuple{}, fmt.Errorf("wrapped: %w", &GapError{Channel: ChannelDirty, Requested: 3, LastAcked: 2, ServerMin: 90})
}

// TestGapErrorTyped: the client maps a server-side replay gap to the
// typed, permanent GapError carrying both resume coordinates, and the
// retry layer refuses to retry it.
func TestGapErrorTyped(t *testing.T) {
	gap := &GapError{Channel: ChannelDirty, Requested: 3, LastAcked: 2, ServerMin: 90}
	if !errors.Is(gap, ErrGap) {
		t.Fatal("GapError does not unwrap to ErrGap")
	}
	if !stream.IsPermanent(gap) {
		t.Fatal("GapError is not permanent")
	}

	// The default retry policy must surface the permanent error on the
	// first attempt instead of burning its retry budget.
	src := &gapSource{schema: wireSchema(t)}
	rs := stream.NewRetrySource(src, stream.RetryPolicy{MaxRetries: 5, Sleep: func(time.Duration) {}})
	_, err := rs.Next()
	var got *GapError
	if !errors.As(err, &got) {
		t.Fatalf("RetrySource returned %v, want the GapError", err)
	}
	if src.calls != 1 {
		t.Fatalf("permanent gap was attempted %d times, want 1", src.calls)
	}
}

// TestClientSourceGapError: end-to-end over TCP — a reconnect past the
// server's replay retention yields the typed GapError with the server's
// minimum retained sequence, and RestartAt resumes there.
func TestClientSourceGapError(t *testing.T) {
	const seed, n = 61, 400
	cfg := serverConfig(t, seed, n)
	cfg.Replay = 32 // tiny ring: early frames evict quickly
	srv, addr, _, _ := startStoppableServer(t, cfg)
	waitPipelineDone(t, srv)

	_, err := Dial(addr, ChannelDirty) // from_seq 0 → oldest is long gone
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("expected GapError, got %v", err)
	}
	if gap.ServerMin == 0 || gap.ServerMin <= 1 {
		t.Fatalf("GapError.ServerMin = %d, want the ring's oldest retained seq", gap.ServerMin)
	}
	if gap.Channel != ChannelDirty {
		t.Fatalf("GapError.Channel = %q", gap.Channel)
	}
	if !stream.IsPermanent(gap) {
		t.Fatal("wire GapError is not permanent")
	}

	// The recovery hook: restart the subscription at the server minimum.
	c, err := DialFrom(addr, ChannelDirty, gap.ServerMin, 5*time.Second)
	if err != nil {
		t.Fatalf("resume at server minimum: %v", err)
	}
	tuples, err := stream.Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(uint64(n) - gap.ServerMin + 1); len(tuples) != want {
		t.Fatalf("resumed read: %d tuples, want %d", len(tuples), want)
	}
}
