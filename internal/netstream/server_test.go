package netstream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// testSource generates n deterministic tuples over wireSchema.
func testSource(s *stream.Schema, n int) stream.Source {
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(s, n, func(i int) stream.Tuple {
		return stream.NewTuple(s, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Float(float64(i)),
			stream.Str(fmt.Sprintf("s%d", i%3)),
		})
	})
}

// testProcess builds a deliberately stateful pipeline (RNG noise plus a
// sticky frozen value), constructed fresh per run like config.Build
// would.
func testProcess(seed int64) *core.Process {
	noise := core.NewStandard("noise",
		&core.GaussianNoise{Stddev: core.Const(3), Rand: rng.Derive(seed, "noise")},
		core.NewRandomConst(0.4, rng.Derive(seed, "noise-cond")), "v")
	freeze := core.NewStandard("freeze",
		core.NewFrozenValue(),
		core.NewSticky(core.NewRandomConst(0.05, rng.Derive(seed, "freeze-cond")), 30*time.Minute), "v")
	return &core.Process{
		Pipelines: []*core.Pipeline{core.NewPipeline(noise, freeze)},
		FirstID:   1,
	}
}

// referenceRun executes the pipeline in-process, returning the dirty
// tuples, the clean (prepared) tuples, and the pollution log — the
// ground truth every network client must observe.
func referenceRun(t *testing.T, seed int64, n, reorder int) (dirty, clean []stream.Tuple, plog *core.Log) {
	t.Helper()
	proc := testProcess(seed)
	proc.CleanTap = func(tp stream.Tuple) { clean = append(clean, tp) }
	src, plog, err := proc.RunStream(testSource(wireSchema(t), n), reorder)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err = stream.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	return dirty, clean, plog
}

// startServer builds and serves a test server over loopback TCP and
// HTTP, returning the two addresses. The server is shut down during
// test cleanup.
func startServer(t *testing.T, cfg Config) (srv *Server, tcpAddr, httpAddr string) {
	t.Helper()
	schema := wireSchema(t)
	if cfg.Schema == nil {
		cfg.Schema = schema
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 100 * time.Millisecond
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, tcpLn, httpLn); err != nil {
			t.Logf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
	})
	return srv, tcpLn.Addr().String(), httpLn.Addr().String()
}

// serverConfig returns a Config running testProcess over n generated
// tuples.
func serverConfig(t *testing.T, seed int64, n int) Config {
	t.Helper()
	schema := wireSchema(t)
	return Config{
		Schema: schema,
		Proc:   testProcess(seed),
		NewSource: func() (stream.Source, error) {
			return testSource(schema, n), nil
		},
		Reorder: 1,
		Buffer:  64,
		Replay:  1 << 16,
	}
}

// drainClient reads every tuple from a ClientSource until EOF.
func drainClient(t *testing.T, c *ClientSource) []stream.Tuple {
	t.Helper()
	tuples, err := stream.Drain(c)
	if err != nil {
		t.Fatal(err)
	}
	return tuples
}

// sameTuples compares two tuple slices by their wire rendering.
func sameTuples(t *testing.T, label string, got, want []stream.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := EncodeTuple(got[i]), EncodeTuple(want[i])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: tuple %d differs:\ngot  %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestServerEquivalence is the acceptance test of the tentpole: every
// channel served over the network carries exactly what the in-process
// runner produces — dirty stream, clean stream, and pollution log.
func TestServerEquivalence(t *testing.T) {
	const seed, n = 4242, 500
	refDirty, refClean, refLog := referenceRun(t, seed, n, 1)

	_, tcpAddr, _ := startServer(t, serverConfig(t, seed, n))

	dirtyC, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer dirtyC.Stop()
	cleanC, err := Dial(tcpAddr, ChannelClean)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanC.Stop()

	sameTuples(t, "dirty", drainClient(t, dirtyC), refDirty)
	sameTuples(t, "clean", drainClient(t, cleanC), refClean)
	if !sameSchema(dirtyC.Schema(), wireSchema(t)) {
		t.Error("client schema differs from server schema")
	}

	// The log channel carries the ground-truth entries in order.
	entries := readLogChannel(t, tcpAddr)
	if len(entries) != len(refLog.Entries) {
		t.Fatalf("log: got %d entries, want %d", len(entries), len(refLog.Entries))
	}
	for i := range entries {
		g, _ := json.Marshal(entries[i])
		w, _ := json.Marshal(refLog.Entries[i])
		if string(g) != string(w) {
			t.Fatalf("log entry %d differs:\ngot  %s\nwant %s", i, g, w)
		}
	}
}

// readLogChannel subscribes to the log channel over raw TCP and reads
// entries until eof.
func readLogChannel(t *testing.T, addr string) []core.Entry {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req, _ := json.Marshal(SubscribeRequest{Channel: ChannelLog})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var entries []core.Entry
	for {
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case FrameHello:
		case FrameLog:
			entries = append(entries, *f.Entry)
		case FrameEOF:
			return entries
		default:
			t.Fatalf("unexpected frame %q on log channel", f.Type)
		}
	}
}

// TestServerConcurrentClientsIdentical: four concurrent subscribers —
// two from the start (one deliberately slow), two attaching late —
// observe byte-identical dirty streams, and the frame count matches the
// channel's sequence counter (flow conservation). The default block
// policy keeps the slow client lossless.
func TestServerConcurrentClientsIdentical(t *testing.T) {
	const seed, n = 7, 300
	srv, tcpAddr, _ := startServer(t, serverConfig(t, seed, n))

	collect := func(delay time.Duration) []string {
		conn, err := net.Dial("tcp", tcpAddr)
		if err != nil {
			t.Error(err)
			return nil
		}
		defer conn.Close()
		req, _ := json.Marshal(SubscribeRequest{Channel: ChannelDirty})
		if err := WriteFrame(conn, req); err != nil {
			t.Error(err)
			return nil
		}
		br := bufio.NewReader(conn)
		var frames []string
		for {
			payload, err := ReadFrame(br)
			if err != nil {
				t.Errorf("read: %v", err)
				return frames
			}
			f, err := DecodeFrame(payload)
			if err != nil {
				t.Error(err)
				return frames
			}
			if f.Type == FrameHello {
				continue // hello carries no seq; identical by construction
			}
			frames = append(frames, string(payload))
			if f.Type == FrameEOF || f.Type == FrameError {
				return frames
			}
			if delay > 0 && len(frames)%16 == 0 {
				time.Sleep(delay) // a deliberately slow reader
			}
		}
	}

	var mu sync.Mutex
	results := make([][]string, 0, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		if i == 2 {
			<-srv.PipelineDone() // the last two attach after the run: replay path
		}
		var delay time.Duration
		if i == 1 {
			delay = time.Millisecond
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			frames := collect(delay)
			mu.Lock()
			results = append(results, frames)
			mu.Unlock()
		}()
	}
	wg.Wait()

	if len(results) != 4 {
		t.Fatalf("got %d client results, want 4", len(results))
	}
	for i := 1; i < 4; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("client %d observed a different stream (%d vs %d frames)", i, len(results[i]), len(results[0]))
		}
	}
	// Conservation: every client saw exactly seq frames (n tuples + eof).
	wantFrames := int(srv.Hub().Seq(ChannelDirty))
	if len(results[0]) != wantFrames {
		t.Errorf("clients saw %d frames, channel published %d", len(results[0]), wantFrames)
	}
	if wantFrames != n+1 {
		t.Errorf("dirty channel published %d frames, want %d tuples + eof", wantFrames, n)
	}
}

// gatedSource delays the first Next until the gate channel closes,
// letting tests subscribe clients before the pipeline starts.
type gatedSource struct {
	stream.Source
	gate <-chan struct{}
	once sync.Once
}

func (g *gatedSource) Next() (stream.Tuple, error) {
	g.once.Do(func() { <-g.gate })
	return g.Source.Next()
}

// subscribeRaw opens a raw TCP subscription and reads the hello frame,
// so the hub has definitely registered the subscriber on return.
func subscribeRaw(t *testing.T, addr, channel string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(SubscribeRequest{Channel: channel})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	f, err := DecodeFrame(payload)
	if err != nil || f.Type != FrameHello {
		t.Fatalf("expected hello, got %v (%v)", f, err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	return conn
}

// TestServerSlowClientDisconnect: under disconnect-slow, a stalled TCP
// reader is cut by the backpressure policy while the pipeline finishes
// and other clients receive the complete stream.
func TestServerSlowClientDisconnect(t *testing.T) {
	const seed, n = 11, 8000
	gate := make(chan struct{})
	cfg := serverConfig(t, seed, n)
	inner := cfg.NewSource
	cfg.NewSource = func() (stream.Source, error) {
		src, err := inner()
		if err != nil {
			return nil, err
		}
		return &gatedSource{Source: src, gate: gate}, nil
	}
	cfg.Policy = PolicyDisconnectSlow
	cfg.Buffer = 8
	cfg.Replay = 1 << 16
	srv, tcpAddr, _ := startServer(t, cfg)

	// Slow client: subscribed before the pipeline starts, never reads
	// past the hello — the server-side writer blocks once the kernel
	// buffers fill and its hub queue overflows.
	slowConn := subscribeRaw(t, tcpAddr, ChannelDirty)
	defer slowConn.Close()
	close(gate)

	// The pipeline must finish promptly despite the stalled client: the
	// policy cuts the slow subscription instead of throttling the run.
	select {
	case <-srv.PipelineDone():
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline stalled behind the slow client under disconnect-slow")
	}
	if err := srv.PipelineErr(); err != nil {
		t.Fatalf("pipeline error: %v", err)
	}
	if srv.Hub().slowDisconnects.Load() == 0 {
		t.Error("expected the slow client to be disconnected by policy")
	}

	// Another client still receives the entire stream (replay ring).
	fast, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Stop()
	tuples := drainClient(t, fast)
	if len(tuples) != n {
		t.Fatalf("fast client got %d tuples, want %d", len(tuples), n)
	}
}

// TestServerSlowClientDropOldest: under drop-oldest, the stalled client
// loses frames (counted) but keeps its subscription and still observes
// the terminal frame; the fast client and the pipeline are unaffected.
func TestServerSlowClientDropOldest(t *testing.T) {
	const seed, n = 13, 8000
	gate := make(chan struct{})
	cfg := serverConfig(t, seed, n)
	inner := cfg.NewSource
	cfg.NewSource = func() (stream.Source, error) {
		src, err := inner()
		if err != nil {
			return nil, err
		}
		return &gatedSource{Source: src, gate: gate}, nil
	}
	cfg.Policy = PolicyDropOldest
	cfg.Buffer = 8
	cfg.Replay = 1 << 16
	srv, tcpAddr, _ := startServer(t, cfg)

	slowConn := subscribeRaw(t, tcpAddr, ChannelDirty)
	defer slowConn.Close()
	close(gate)

	// The pipeline must finish promptly: drop-oldest sheds the slow
	// client's load instead of throttling the run.
	select {
	case <-srv.PipelineDone():
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline stalled behind the slow client under drop-oldest")
	}
	if err := srv.PipelineErr(); err != nil {
		t.Fatalf("pipeline error: %v", err)
	}

	// Another client still receives the entire stream (replay ring).
	fast, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Stop()
	if got := len(drainClient(t, fast)); got != n {
		t.Fatalf("fast client got %d tuples, want %d", got, n)
	}

	// The slow client now drains what survived: a strict subset ending in
	// the terminal eof frame.
	br := bufio.NewReader(slowConn)
	got, lastType := 0, ""
	for {
		_ = slowConn.SetReadDeadline(time.Now().Add(10 * time.Second))
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("slow drain after %d frames: %v", got, err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		got++
		lastType = f.Type
		if f.Type == FrameEOF || f.Type == FrameError {
			break
		}
	}
	if lastType != FrameEOF {
		t.Errorf("slow client's last frame = %s, want eof", lastType)
	}
	if got >= n+1 { // n tuples + eof would be a complete stream (hello already read)
		t.Errorf("slow client received a complete stream (%d frames); expected drops", got)
	}
	if srv.Hub().framesDropped.Load() == 0 {
		t.Error("expected counted drops for the slow client")
	}
}

// flappingProxy forwards TCP to backend but kills every connection after
// limit forwarded bytes, forcing clients to reconnect.
type flappingProxy struct {
	ln    net.Listener
	kills int
	mu    sync.Mutex
}

func newFlappingProxy(t *testing.T, backend string, limit int64) *flappingProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flappingProxy{ln: ln}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go p.relay(conn, backend, limit)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *flappingProxy) relay(client net.Conn, backend string, limit int64) {
	defer client.Close()
	server, err := net.Dial("tcp", backend)
	if err != nil {
		return
	}
	defer server.Close()
	go func() {
		_, _ = io.Copy(server, client) // subscribe request upstream
	}()
	_, _ = io.CopyN(client, server, limit) // bounded downstream, then cut
	p.mu.Lock()
	p.kills++
	p.mu.Unlock()
}

// TestClientSourceReconnect: a ClientSource wrapped in RetrySource reads
// the complete stream exactly once through a proxy that kills the
// connection every few KB — reconnect-with-backoff plus from_seq resume.
func TestClientSourceReconnect(t *testing.T) {
	const seed, n = 99, 600
	_, tcpAddr, _ := startServer(t, serverConfig(t, seed, n))
	proxy := newFlappingProxy(t, tcpAddr, 8<<10)

	client, err := Dial(proxy.ln.Addr().String(), ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Stop()
	retry := stream.NewRetrySource(client, stream.RetryPolicy{
		MaxRetries: 1000,
		Sleep:      func(time.Duration) {},
	})

	got, err := stream.Drain(retry)
	if err != nil {
		t.Fatalf("drain through flapping proxy: %v", err)
	}
	refDirty, _, _ := referenceRun(t, seed, n, 1)
	sameTuples(t, "reconnected dirty", got, refDirty)

	if client.Reconnects() == 0 {
		t.Error("expected at least one reconnect through the flapping proxy")
	}
	// No duplicates: IDs strictly increase.
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatalf("tuple IDs not strictly increasing at %d: %d after %d", i, got[i].ID, got[i-1].ID)
		}
	}
}

// TestClientSourceErrors covers subscription validation and server-side
// rejection.
func TestClientSourceErrors(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ChannelLog); err == nil {
		t.Error("expected log-channel subscription to be rejected client-side")
	}
	_, tcpAddr, _ := startServer(t, serverConfig(t, 3, 10))
	if _, err := Dial(tcpAddr, "bogus"); err == nil {
		t.Error("expected unknown channel to be rejected")
	}
}

// TestClientSourceStop: Stop unblocks a reader and latches ErrStopped.
func TestClientSourceStop(t *testing.T) {
	const seed, n = 21, 50
	_, tcpAddr, _ := startServer(t, serverConfig(t, seed, n))
	client, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Next(); err != nil {
		t.Fatal(err)
	}
	client.Stop()
	for i := 0; i < 3; i++ {
		if _, err := client.Next(); err != stream.ErrStopped {
			t.Fatalf("Next after Stop = %v, want ErrStopped", err)
		}
	}
}

// TestServerHTTP exercises the NDJSON, SSE, health and metrics
// endpoints.
func TestServerHTTP(t *testing.T) {
	const seed, n = 17, 40
	reg := obs.NewRegistry()
	cfg := serverConfig(t, seed, n)
	cfg.Reg = reg
	srv, _, httpAddr := startServer(t, cfg)
	<-srv.PipelineDone()
	base := "http://" + httpAddr

	// NDJSON: hello + n tuples + eof, one JSON object per line.
	resp, err := http.Get(base + "/stream?channel=dirty")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != n+2 {
		t.Fatalf("got %d NDJSON lines, want %d", len(lines), n+2)
	}
	first, last := mustFrame(t, lines[0]), mustFrame(t, lines[len(lines)-1])
	if first.Type != FrameHello || last.Type != FrameEOF {
		t.Errorf("stream frames = %s..%s, want hello..eof", first.Type, last.Type)
	}

	// SSE: every event line carries a frame.
	resp2, err := http.Get(base + "/sse?channel=clean")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("sse content type = %q", ct)
	}
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "data: ") {
			mustFrame(t, strings.TrimPrefix(line, "data: "))
			events++
		}
	}
	if events != n+2 {
		t.Errorf("got %d SSE events, want %d", events, n+2)
	}

	// Replay gap over HTTP is 410 Gone... but only when evicted; here the
	// ring holds everything, so from_seq resumes mid-stream instead.
	resp3, err := http.Get(base + "/stream?channel=dirty&from_seq=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	partial, _ := io.ReadAll(resp3.Body)
	gotLines := strings.Count(strings.TrimSpace(string(partial)), "\n") + 1
	if want := (n - 9) + 1 + 1; gotLines != want { // seq 10..n, hello, eof
		t.Errorf("from_seq=10 returned %d lines, want %d", gotLines, want)
	}

	resp4, err := http.Get(base + "/stream?channel=dirty&from_seq=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusBadRequest {
		t.Errorf("bad from_seq status = %d, want 400", resp4.StatusCode)
	}

	// Health: pipeline done, all channels fully published.
	resp5, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp5.Body.Close()
	var health struct {
		State    string `json:"state"`
		DirtySeq uint64 `json:"dirty_seq"`
		CleanSeq uint64 `json:"clean_seq"`
		LogSeq   uint64 `json:"log_seq"`
	}
	if err := json.NewDecoder(resp5.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.State != "done" {
		t.Errorf("health state = %q, want done", health.State)
	}
	if health.DirtySeq != n+1 || health.CleanSeq != n+1 {
		t.Errorf("health seqs = %d/%d, want %d", health.DirtySeq, health.CleanSeq, n+1)
	}

	// Metrics: Prometheus exposition with the net gauges present.
	resp6, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp6.Body.Close()
	prom, _ := io.ReadAll(resp6.Body)
	for _, want := range []string{"icewafl_net_frames_sent_total", "icewafl_net_subscribers"} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func mustFrame(t *testing.T, line string) *Frame {
	t.Helper()
	f, err := DecodeFrame([]byte(line))
	if err != nil {
		t.Fatalf("bad frame line %q: %v", line, err)
	}
	return f
}

// TestServerGracefulDrain: cancelling the serve context lets a connected
// subscriber finish reading buffered frames before the connection
// closes.
func TestServerGracefulDrain(t *testing.T) {
	const seed, n = 31, 100
	cfg := serverConfig(t, seed, n)
	cfg.DrainTimeout = 5 * time.Second
	schema := wireSchema(t)
	cfg.Schema = schema
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, tcpLn, nil)
	}()

	client, err := Dial(tcpLn.Addr().String(), ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Stop()
	<-srv.PipelineDone()
	cancel() // shutdown begins while the client still has everything to read

	tuples, err := stream.Drain(client)
	if err != nil {
		t.Fatalf("drain during graceful shutdown: %v", err)
	}
	if len(tuples) != n {
		t.Errorf("client got %d tuples through the drain, want %d", len(tuples), n)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not exit after drain")
	}
}
