package netstream

import (
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// keyedTestProcess builds a fully keyed pipeline: every per-key
// instance derives its randomness from (seed, key), the precondition
// for byte-identical sharded execution.
func keyedTestProcess(seed int64) *core.Process {
	perKey := func(key string) core.Polluter {
		return core.NewComposite("per-key", nil,
			core.NewStandard("noise",
				&core.GaussianNoise{Stddev: core.Const(2), Rand: rng.Derive(seed, "noise/"+key)},
				core.NewRandomConst(0.4, rng.Derive(seed, "noise-cond/"+key)), "v"),
			core.NewStandard("freeze",
				core.NewFrozenValue(),
				core.NewSticky(core.NewRandomConst(0.05, rng.Derive(seed, "sticky/"+key)), 30*time.Minute), "v"),
		)
	}
	return &core.Process{
		Pipelines: []*core.Pipeline{core.NewPipeline(core.NewKeyedPolluter("keyed", "sensor", perKey))},
		FirstID:   1,
	}
}

// TestServerSharded: a sharded server session must stream exactly what
// the in-process sequential runner produces on every channel — the
// strict merge order makes sharding invisible on the wire.
func TestServerSharded(t *testing.T) {
	const seed, n = 777, 600
	schema := wireSchema(t)

	// Sequential in-process ground truth.
	proc := keyedTestProcess(seed)
	var refClean []stream.Tuple
	proc.CleanTap = func(tp stream.Tuple) { refClean = append(refClean, tp.Clone()) }
	src, refLog, err := proc.RunStream(testSource(schema, n), 1)
	if err != nil {
		t.Fatal(err)
	}
	refDirty, err := stream.Drain(src)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{
		Schema: schema,
		Proc:   keyedTestProcess(seed),
		NewSource: func() (stream.Source, error) {
			return testSource(schema, n), nil
		},
		Reorder:  1,
		Buffer:   64,
		Replay:   1 << 16,
		Shards:   4,
		ShardKey: "sensor",
	}
	_, tcpAddr, _ := startServer(t, cfg)

	dirtyC, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer dirtyC.Stop()
	cleanC, err := Dial(tcpAddr, ChannelClean)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanC.Stop()
	sameTuples(t, "dirty", drainClient(t, dirtyC), refDirty)
	sameTuples(t, "clean", drainClient(t, cleanC), refClean)

	entries := readLogChannel(t, tcpAddr)
	if len(entries) != len(refLog.Entries) {
		t.Fatalf("log: got %d entries, want %d", len(entries), len(refLog.Entries))
	}
	for i := range entries {
		if entries[i].TupleID != refLog.Entries[i].TupleID || entries[i].Polluter != refLog.Entries[i].Polluter {
			t.Fatalf("log entry %d differs: got %+v, want %+v", i, entries[i], refLog.Entries[i])
		}
	}
}

// TestServerShardedRejectsBadConfig: sharded sessions must be rejected
// at construction when misconfigured, not fail at runtime.
func TestServerShardedRejectsBadConfig(t *testing.T) {
	base := serverConfig(t, 1, 10)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"missing key", func(c *Config) { c.Shards = 4 }},
		{"key not in schema", func(c *Config) { c.Shards = 4; c.ShardKey = "nope" }},
		{"checkpointed", func(c *Config) {
			c.Shards = 4
			c.ShardKey = "sensor"
			c.WALDir = t.TempDir()
			c.CheckpointPath = "ck.json"
		}},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("%s: NewServer accepted the config", tc.name)
		}
	}
}
