package netstream

// Supervision: a pipeline session runs as a restartable unit. A failed
// (or panicked) session is restarted with exponential backoff until the
// restart budget — N restarts per sliding window — is exhausted, at
// which point the session is quarantined: no further restarts, the
// terminal error is surfaced on /healthz, and the durable log stays
// resumable for the next daemon start. Combined with the hub's recovery
// suppression (BeginRecovery), a restarted session continues the WAL
// sequence with no duplicates and no gaps.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQuarantined marks the terminal error of a session that exhausted
// its restart budget; callers match it with errors.Is.
var ErrQuarantined = errors.New("netstream: session quarantined")

// Supervisor restarts a failing session within a budget.
type Supervisor struct {
	budget  int
	window  time.Duration
	backoff time.Duration
	logf    func(format string, args ...any)

	restarts    atomic.Uint64
	quarantined atomic.Bool

	mu      sync.Mutex
	recent  []time.Time
	lastErr error
}

// NewSupervisor builds a supervisor. budget is the number of restarts
// tolerated per window before quarantine (default 3), window the
// sliding budget window (default 1 minute), backoff the base restart
// delay, doubled per consecutive failure (default 100ms). logf is
// nil-safe.
func NewSupervisor(budget int, window, backoff time.Duration, logf func(string, ...any)) *Supervisor {
	if budget <= 0 {
		budget = 3
	}
	if window <= 0 {
		window = time.Minute
	}
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	return &Supervisor{budget: budget, window: window, backoff: backoff, logf: logf}
}

// Restarts returns how many times the supervisor restarted the session.
func (sv *Supervisor) Restarts() uint64 { return sv.restarts.Load() }

// Quarantined reports whether the restart budget was exhausted.
func (sv *Supervisor) Quarantined() bool { return sv.quarantined.Load() }

// LastErr returns the most recent session error (nil before any
// failure).
func (sv *Supervisor) LastErr() error {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.lastErr
}

func (sv *Supervisor) log(format string, args ...any) {
	if sv.logf != nil {
		sv.logf(format, args...)
	}
}

// runSession executes one attempt, converting a panic into an error so
// a crashing pipeline component cannot take the daemon down.
func runSession(ctx context.Context, session func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("netstream: session panic: %v\n%s", r, debug.Stack())
		}
	}()
	return session(ctx)
}

// Run drives session until it succeeds, the context is cancelled, or
// the restart budget is exhausted (quarantine). The returned error is
// nil on success, the session's error on cancellation, and a
// quarantine-wrapped error once the budget runs out.
func (sv *Supervisor) Run(ctx context.Context, session func(context.Context) error) error {
	consecutive := 0
	for {
		err := runSession(ctx, session)
		if err == nil {
			return nil
		}
		sv.mu.Lock()
		sv.lastErr = err
		sv.mu.Unlock()
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			return err
		}
		now := time.Now()
		sv.mu.Lock()
		keep := sv.recent[:0]
		for _, t := range sv.recent {
			if now.Sub(t) <= sv.window {
				keep = append(keep, t)
			}
		}
		sv.recent = keep
		over := len(sv.recent) >= sv.budget
		if !over {
			sv.recent = append(sv.recent, now)
		}
		sv.mu.Unlock()
		if over {
			sv.quarantined.Store(true)
			sv.log("session quarantined after %d restarts in %v: %v", sv.budget, sv.window, err)
			return fmt.Errorf("%w after %d restarts in %v: %v", ErrQuarantined, sv.budget, sv.window, err)
		}
		sv.restarts.Add(1)
		delay := sv.backoff << consecutive
		if maxDelay := 30 * sv.backoff; delay > maxDelay {
			delay = maxDelay
		}
		consecutive++
		sv.log("session failed (%v); restart %d in %v", err, sv.restarts.Load(), delay)
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return err
		}
	}
}
