package netstream

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"icewafl/internal/obs"
)

// ErrUnknownSession reports a control-plane operation addressed at a
// session the service does not (or no longer does) run.
var ErrUnknownSession = errors.New("netstream: unknown session")

// ErrSessionExists reports a create for a tenant/name pair already
// running.
var ErrSessionExists = errors.New("netstream: session already exists")

// ErrServiceClosed reports an operation against a service that shut
// down.
var ErrServiceClosed = errors.New("netstream: service closed")

// SessionRequest is the control-plane body of POST /v1/sessions: which
// tenant, what to call the session, and an opaque pipeline spec the
// service compiles through its Build hook (the daemon's Build parses
// schema + pollution config + inline CSV input).
type SessionRequest struct {
	Tenant string          `json:"tenant"`
	Name   string          `json:"name"`
	Spec   json.RawMessage `json:"spec"`
}

// SessionStatus is the control-plane rendering of one session.
type SessionStatus struct {
	Tenant string `json:"tenant"`
	Name   string `json:"name"`
	// State is running, done, failed or quarantined.
	State    string   `json:"state"`
	DirtySeq uint64   `json:"dirty_seq"`
	CleanSeq uint64   `json:"clean_seq"`
	LogSeq   uint64   `json:"log_seq"`
	Subs     int64    `json:"subscribers"`
	Restarts uint64   `json:"restarts"`
	Error    string   `json:"error,omitempty"`
	Channels []string `json:"channels"`
	// Durable reports that the session persists WAL (and possibly
	// checkpoint) state under the service's state dir.
	Durable bool `json:"durable,omitempty"`
	// Resumed reports that this incarnation was resurrected from a
	// persisted spec by Service.Recover rather than created over the
	// control plane.
	Resumed bool `json:"resumed,omitempty"`
	// Recovered counts frames regenerated into the suppressed durable
	// region since the session started (restart recovery progress).
	Recovered uint64 `json:"recovered_frames,omitempty"`
}

// ServiceConfig configures the multi-tenant session service.
type ServiceConfig struct {
	// Build compiles a session's opaque spec into a pipeline Config. The
	// service owns Namespace, Reg, TrackDelivery and Logf — values the
	// hook sets there are overridden.
	Build func(spec json.RawMessage) (Config, error)
	// Quotas are the per-tenant ceilings; tenants not listed fall back
	// to DefaultQuota.
	Quotas map[string]TenantQuota
	// DefaultQuota applies to tenants absent from Quotas (zero value =
	// unlimited).
	DefaultQuota TenantQuota
	// DrainTimeout is the default bounded-drain deadline applied to
	// sessions whose built Config leaves it zero.
	DrainTimeout time.Duration
	// Reg receives service metrics — one registry shared by every
	// session, with per-tenant counter families (nil-safe).
	Reg *obs.Registry
	// Logf, when set, receives service diagnostics.
	Logf func(format string, args ...any)
	// StateDir enables the durable multi-tenant store: every session gets
	// its own WAL (and, for checkpointable shapes, checkpoint) directory
	// under <StateDir>/<tenant>/<session>, its spec is persisted alongside
	// so Recover can resurrect it after a restart, and per-tenant WAL-byte
	// budgets (TenantQuota.MaxWALBytes) are enforced across the tenant's
	// logs. Empty = memory-only sessions (the replay ring).
	StateDir string
	// WAL sets the service-wide durable-log tuning defaults (segment
	// size, retention, fsync cadence); a session's built Config may
	// override field-wise. Only meaningful with StateDir.
	WAL WALOptions
	// ArchiveDeleted moves a deleted session's state directory under
	// <StateDir>/.deleted/<tenant>/<session> instead of removing it.
	ArchiveDeleted bool
}

// Session is one supervised pipeline run inside a Service: a namespaced
// Server whose channels are <tenant>/<name>/dirty|clean|log.
type Session struct {
	tenant string
	name   string
	srv    *Server

	// stateDir is the session's durable state directory (empty for
	// memory-only sessions); resumed marks incarnations resurrected by
	// Service.Recover.
	stateDir string
	resumed  bool

	ctx     context.Context
	cancel  context.CancelFunc
	pipeRes <-chan error

	stopOnce sync.Once
	stopped  chan struct{}
	stopErr  error
}

// Tenant returns the owning tenant.
func (sess *Session) Tenant() string { return sess.tenant }

// Name returns the session name.
func (sess *Session) Name() string { return sess.name }

// ID returns the session's service-unique identifier, tenant/name.
func (sess *Session) ID() string { return sess.tenant + "/" + sess.name }

// Server exposes the session's underlying server (tests and embedders).
func (sess *Session) Server() *Server { return sess.srv }

// stop cancels the pipeline and runs the bounded-drain path (the same
// one Serve uses on SIGTERM): subscribers get DrainTimeout to finish
// reading, then the hub closes — releasing any Publish wedged on a
// stuck block-policy subscriber — and remaining connections are
// force-closed. Idempotent; every caller observes the same result.
func (sess *Session) stop() error {
	sess.stopOnce.Do(func() {
		sess.cancel()
		sess.stopErr = sess.srv.drainAndClose(nil, sess.pipeRes)
		close(sess.stopped)
	})
	<-sess.stopped
	return sess.stopErr
}

// status snapshots the session for the control plane.
func (sess *Session) status() SessionStatus {
	srv := sess.srv
	st := SessionStatus{
		Tenant:   sess.tenant,
		Name:     sess.name,
		State:    "running",
		DirtySeq: srv.hub.Seq(srv.chDirty),
		CleanSeq: srv.hub.Seq(srv.chClean),
		LogSeq:   srv.hub.Seq(srv.chLog),
		Subs:     srv.hub.SubscriberCount(),
	}
	for _, cn := range srv.chans {
		st.Channels = append(st.Channels, cn.full)
	}
	st.Durable = sess.stateDir != ""
	st.Resumed = sess.resumed
	st.Recovered = srv.hub.Recovered()
	select {
	case <-srv.PipelineDone():
		if err := srv.PipelineErr(); err != nil {
			st.State, st.Error = "failed", err.Error()
		} else {
			st.State = "done"
		}
	default:
	}
	if sup := srv.Supervisor(); sup != nil {
		st.Restarts = sup.Restarts()
		if sup.Quarantined() {
			st.State = "quarantined"
		}
	}
	return st
}

// Service turns the one-pipeline daemon into a session service: a REST
// control plane creates and stops named, per-tenant pipeline sessions
// on demand, subscribers address one session's channels through the
// <tenant>/<session>/<channel> namespace, and per-tenant quotas (max
// sessions, max subscribers, bytes/sec token bucket) layer on top of
// the per-subscriber backpressure policies.
type Service struct {
	cfg ServiceConfig
	reg *obs.Registry

	mu       sync.Mutex
	sessions map[string]*Session
	tenants  map[string]*tenantState
	// deleting serializes durable delete → recreate: while a durable
	// session's state directory is being torn down, a create of the same
	// ID waits on its channel instead of racing the removal.
	deleting map[string]chan struct{}
	closed   bool
}

// NewService builds an empty session service.
func NewService(cfg ServiceConfig) (*Service, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("netstream: service config needs a Build hook")
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("netstream: state dir: %w", err)
		}
	}
	s := &Service{
		cfg:      cfg,
		reg:      cfg.Reg,
		sessions: make(map[string]*Session),
		tenants:  make(map[string]*tenantState),
		deleting: make(map[string]chan struct{}),
	}
	s.reg.RegisterFunc("net_sessions", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(len(s.sessions))
	})
	s.reg.RegisterFunc("net_subscribers", func() uint64 {
		var n int64
		for _, sess := range s.snapshotSessions() {
			n += sess.srv.hub.SubscriberCount()
		}
		if n < 0 {
			return 0
		}
		return uint64(n)
	})
	s.reg.RegisterFunc("net_frames_sent_total", func() uint64 {
		var n uint64
		for _, sess := range s.snapshotSessions() {
			n += sess.srv.hub.FramesSent()
		}
		return n
	})
	return s, nil
}

func (s *Service) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// snapshotSessions copies the live session list.
func (s *Service) snapshotSessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// tenant returns (creating on first use) the tenant's accounting state.
func (s *Service) tenant(name string) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts := s.tenants[name]
	if ts == nil {
		q, ok := s.cfg.Quotas[name]
		if !ok {
			q = s.cfg.DefaultQuota
		}
		ts = newTenantState(name, q)
		s.tenants[name] = ts
		if s.cfg.StateDir != "" {
			b := ts.walBudget
			s.reg.RegisterTenantWALBytes(name, func() uint64 {
				if u := b.Used(); u > 0 {
					return uint64(u)
				}
				return 0
			})
		}
	}
	return ts
}

// validName admits DNS-label-ish tenant and session names; the
// separator characters of the channel namespace are excluded by
// construction.
func validName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Create builds, registers and starts a session. Quota violations
// return a typed *QuotaError (counted in the tenant's rejection
// family); duplicate names return ErrSessionExists. With a state dir
// the session is durable: its WAL/checkpoint live under
// <StateDir>/<tenant>/<name> and its spec is persisted for Recover.
func (s *Service) Create(req SessionRequest) (*Session, error) {
	return s.create(req, false)
}

// create is Create plus the resumed flag Recover uses: a resumed
// session reuses its existing state directory (spec already persisted)
// instead of provisioning a fresh one.
func (s *Service) create(req SessionRequest, resumed bool) (*Session, error) {
	if !validName(req.Tenant) || !validName(req.Name) {
		return nil, fmt.Errorf("netstream: tenant and session names must be non-empty [A-Za-z0-9._-], got %q/%q", req.Tenant, req.Name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	s.mu.Unlock()
	s.waitPendingDelete(req.Tenant + "/" + req.Name)
	ts := s.tenant(req.Tenant)
	if err := ts.acquireSession(); err != nil {
		s.reg.AddTenantQuotaRejection(req.Tenant)
		return nil, err
	}
	durable := s.cfg.StateDir != ""
	if durable {
		if err := ts.checkWALBudget(); err != nil {
			ts.releaseSession()
			s.reg.AddTenantQuotaRejection(req.Tenant)
			return nil, err
		}
	}
	cfg, err := s.cfg.Build(req.Spec)
	if err != nil {
		ts.releaseSession()
		return nil, err
	}
	cfg.Namespace = req.Tenant + "/" + req.Name
	cfg.Reg = s.reg
	cfg.TrackDelivery = true
	cfg.Logf = s.cfg.Logf
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = s.cfg.DrainTimeout
	}
	var stateDir string
	if durable {
		stateDir = filepath.Join(s.cfg.StateDir, req.Tenant, req.Name)
		if err := s.wireDurable(&cfg, ts, stateDir); err != nil {
			ts.releaseSession()
			return nil, err
		}
		if !resumed {
			if err := writeSpecFile(filepath.Join(stateDir, "spec.json"), req); err != nil {
				ts.releaseSession()
				return nil, err
			}
		}
	}
	srv, err := NewServer(cfg)
	if err != nil {
		ts.releaseSession()
		if durable && !resumed {
			// A fresh durable create that never produced a server leaves no
			// state behind (the spec file was just written above).
			os.RemoveAll(stateDir)
		}
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	sess := &Session{
		tenant:   req.Tenant,
		name:     req.Name,
		srv:      srv,
		stateDir: stateDir,
		resumed:  resumed,
		ctx:      ctx,
		cancel:   cancel,
		stopped:  make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		s.releaseWALs(sess, false)
		ts.releaseSession()
		return nil, ErrServiceClosed
	}
	if _, dup := s.sessions[sess.ID()]; dup {
		s.mu.Unlock()
		cancel()
		s.releaseWALs(sess, false)
		ts.releaseSession()
		return nil, fmt.Errorf("%w: %s", ErrSessionExists, sess.ID())
	}
	s.sessions[sess.ID()] = sess
	s.mu.Unlock()
	sess.pipeRes = srv.startPipeline(ctx)
	s.logf("session %s created (durable=%t resumed=%t)", sess.ID(), durable, resumed)
	return sess, nil
}

// wireDurable points cfg's WAL (and, for checkpointable shapes, the
// checkpoint) into the session's state directory and attaches the
// tenant's byte budget. Service-wide WAL tuning applies as defaults
// beneath whatever the built config already set field-wise.
func (s *Service) wireDurable(cfg *Config, ts *tenantState, stateDir string) error {
	w := s.cfg.WAL
	if cfg.WAL.SegmentBytes > 0 {
		w.SegmentBytes = cfg.WAL.SegmentBytes
	}
	if cfg.WAL.RetainBytes > 0 {
		w.RetainBytes = cfg.WAL.RetainBytes
	}
	if cfg.WAL.RetainAge > 0 {
		w.RetainAge = cfg.WAL.RetainAge
	}
	if cfg.WAL.FsyncEvery > 0 {
		w.FsyncEvery = cfg.WAL.FsyncEvery
	}
	w.Budget = ts.walBudget
	cfg.WAL = w
	cfg.WALDir = filepath.Join(stateDir, "wal")
	// Checkpointed resume only covers the sequential tuple-wise path;
	// everything else is WAL-only (deterministic re-run + suppression).
	if cfg.Reorder <= 1 && cfg.Shards <= 1 && !cfg.Columnar {
		ckDir := filepath.Join(stateDir, "checkpoint")
		if err := os.MkdirAll(ckDir, 0o755); err != nil {
			return fmt.Errorf("netstream: checkpoint dir: %w", err)
		}
		cfg.CheckpointPath = filepath.Join(ckDir, "ck.json")
	}
	return nil
}

// releaseWALs detaches a session's logs from the tenant byte ledger and
// closes them (close errors only logged when wantLog).
func (s *Service) releaseWALs(sess *Session, wantLog bool) {
	for _, cn := range sess.srv.chans {
		if w := sess.srv.hub.WAL(cn.full); w != nil {
			w.ReleaseBudget()
			if err := w.Close(); err != nil && wantLog {
				s.logf("wal close %s: %v", cn.full, err)
			}
		}
	}
}

// writeSpecFile atomically persists the session request next to its WAL
// so Recover can resurrect the session after a daemon restart.
func writeSpecFile(path string, req SessionRequest) error {
	data, err := json.MarshalIndent(req, "", "  ")
	if err != nil {
		return fmt.Errorf("netstream: marshal session spec: %w", err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("netstream: session state dir: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("netstream: persist session spec: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("netstream: persist session spec: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("netstream: persist session spec: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("netstream: persist session spec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("netstream: persist session spec: %w", err)
	}
	return nil
}

// waitPendingDelete blocks while the identified session's durable state
// is still being torn down by a concurrent Delete.
func (s *Service) waitPendingDelete(id string) {
	for {
		s.mu.Lock()
		ch := s.deleting[id]
		s.mu.Unlock()
		if ch == nil {
			return
		}
		<-ch
	}
}

// Get returns the named session.
func (s *Service) Get(tenant, name string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[tenant+"/"+name]
	return sess, ok
}

// List snapshots every session's status, ordered by ID.
func (s *Service) List() []SessionStatus {
	sessions := s.snapshotSessions()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID() < sessions[j].ID() })
	out := make([]SessionStatus, len(sessions))
	for i, sess := range sessions {
		out[i] = sess.status()
	}
	return out
}

// Delete stops the named session through the bounded-drain path and
// removes it: subscribers get the session's DrainTimeout to finish
// reading, then are force-closed — a subscriber wedged behind a
// block-policy stall therefore delays Delete by at most the drain
// deadline, never indefinitely. A durable session's WAL bytes are
// released from the tenant's budget and its state directory removed
// (or archived under <StateDir>/.deleted when ArchiveDeleted); a
// concurrent create of the same ID waits for the teardown to finish.
// Returns the pipeline's terminal error.
func (s *Service) Delete(tenant, name string) error {
	id := tenant + "/" + name
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	ts := s.tenants[tenant]
	var pending chan struct{}
	if ok && sess.stateDir != "" {
		pending = make(chan struct{})
		s.deleting[id] = pending
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSession, id)
	}
	err := sess.stop()
	if sess.stateDir != "" {
		// stop() already closed the logs through drainAndClose; releasing
		// the budget afterwards detaches their bytes from the tenant ledger
		// before the files go away.
		s.releaseWALs(sess, true)
		if rerr := s.removeState(sess); rerr != nil {
			s.logf("session %s state teardown: %v", id, rerr)
		}
	}
	if ts != nil {
		ts.releaseSession()
	}
	if pending != nil {
		s.mu.Lock()
		delete(s.deleting, id)
		s.mu.Unlock()
		close(pending)
	}
	s.logf("session %s deleted (drain_expired=%t)", id, sess.srv.DrainExpired())
	return err
}

// removeState deletes (or archives) a durable session's state
// directory.
func (s *Service) removeState(sess *Session) error {
	if !s.cfg.ArchiveDeleted {
		return os.RemoveAll(sess.stateDir)
	}
	dst := filepath.Join(s.cfg.StateDir, ".deleted", sess.tenant, sess.name)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	// A session deleted and recreated repeatedly archives under numbered
	// suffixes rather than clobbering the earlier archive.
	candidate := dst
	for i := 1; ; i++ {
		if _, err := os.Stat(candidate); errors.Is(err, os.ErrNotExist) {
			break
		}
		candidate = fmt.Sprintf("%s.%d", dst, i)
	}
	return os.Rename(sess.stateDir, candidate)
}

// Recover scans the state directory and resurrects every persisted
// session: each <StateDir>/<tenant>/<session>/spec.json is re-created
// through the normal create path (quotas enforced, WAL budgets settled
// from the bytes already on disk), where the attached WAL supplies the
// durable high-water mark and the deterministic re-run regenerates the
// suppressed region — restart recovery per session. Individual broken
// sessions are logged and skipped, never fatal; returns the recovered
// session IDs, sorted. No-op without a state dir.
func (s *Service) Recover() ([]string, error) {
	if s.cfg.StateDir == "" {
		return nil, nil
	}
	tenants, err := os.ReadDir(s.cfg.StateDir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("netstream: scan state dir: %w", err)
	}
	var recovered []string
	for _, td := range tenants {
		// Dot-prefixed entries (.deleted archives) are not tenants.
		if !td.IsDir() || strings.HasPrefix(td.Name(), ".") {
			continue
		}
		tenantDir := filepath.Join(s.cfg.StateDir, td.Name())
		names, err := os.ReadDir(tenantDir)
		if err != nil {
			s.logf("recover: tenant %s: %v", td.Name(), err)
			continue
		}
		for _, nd := range names {
			if !nd.IsDir() || strings.HasPrefix(nd.Name(), ".") {
				continue
			}
			id := td.Name() + "/" + nd.Name()
			specPath := filepath.Join(tenantDir, nd.Name(), "spec.json")
			data, err := os.ReadFile(specPath)
			if errors.Is(err, os.ErrNotExist) {
				// A directory without a spec is a half-provisioned create or
				// foreign debris; leave it alone.
				continue
			}
			if err != nil {
				s.logf("recover: session %s: %v", id, err)
				continue
			}
			var req SessionRequest
			if err := json.Unmarshal(data, &req); err != nil {
				s.logf("recover: session %s: bad spec: %v", id, err)
				continue
			}
			if req.Tenant != td.Name() || req.Name != nd.Name() {
				s.logf("recover: session %s: spec names %s/%s; skipping", id, req.Tenant, req.Name)
				continue
			}
			if _, err := s.create(req, true); err != nil {
				s.logf("recover: session %s: %v", id, err)
				continue
			}
			recovered = append(recovered, id)
		}
	}
	sort.Strings(recovered)
	return recovered, nil
}

// Close stops every session (in parallel, each through the bounded
// drain) and rejects further control-plane calls.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()
	var wg sync.WaitGroup
	for _, sess := range sessions {
		wg.Add(1)
		go func(sess *Session) {
			defer wg.Done()
			_ = sess.stop()
		}(sess)
	}
	wg.Wait()
}

// resolve maps a namespaced channel (<tenant>/<session>/<channel>) to
// its session. A missing session — deleted or never created — fails
// promptly with a typed UnknownChannelError.
func (s *Service) resolve(channel string) (*Session, error) {
	parts := strings.Split(channel, "/")
	if len(parts) != 3 {
		return nil, &UnknownChannelError{Channel: channel}
	}
	sess, ok := s.Get(parts[0], parts[1])
	if !ok {
		return nil, &UnknownChannelError{Channel: channel}
	}
	return sess, nil
}

// subscribeGate applies the tenant's subscriber quota and builds the
// per-frame throttle (rate limit + throughput accounting). release must
// be called when the subscription ends.
func (s *Service) subscribeGate(ctx context.Context, tenant string) (throttle func(n int) error, release func(), err error) {
	ts := s.tenant(tenant)
	if err := ts.acquireSub(); err != nil {
		s.reg.AddTenantQuotaRejection(tenant)
		return nil, nil, err
	}
	throttle = func(n int) error {
		if terr := ts.throttle(ctx, n); terr != nil {
			if errors.Is(terr, ErrQuota) {
				s.reg.AddTenantQuotaRejection(tenant)
			}
			return terr
		}
		s.reg.AddTenantDelivery(tenant, 1, uint64(n))
		return nil
	}
	return throttle, ts.releaseSub, nil
}

// Serve accepts raw-TCP subscribers on tcpLn and HTTP (control plane +
// streams) on httpLn until ctx is cancelled, then closes the service:
// every session drains through its bounded deadline. Either listener
// may be nil.
func (s *Service) Serve(ctx context.Context, tcpLn, httpLn net.Listener) error {
	var wg sync.WaitGroup
	if tcpLn != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				conn, err := tcpLn.Accept()
				if err != nil {
					return
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					s.handleConn(conn)
				}()
			}
		}()
	}
	var httpSrv *http.Server
	if httpLn != nil {
		httpSrv = &http.Server{Handler: s.HTTPHandler()}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := httpSrv.Serve(httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				s.logf("http: %v", err)
			}
		}()
	}
	<-ctx.Done()
	if tcpLn != nil {
		tcpLn.Close()
	}
	s.Close()
	if httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}
	wg.Wait()
	return nil
}

// handleConn speaks the TCP protocol at the service level: the
// subscribe request addresses a namespaced channel, the stream then
// runs under the owning session's server with the tenant's throttle.
func (s *Service) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	var req SubscribeRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		writeConnError(conn, fmt.Errorf("netstream: bad subscribe request: %w", err))
		return
	}
	sess, err := s.resolve(req.Channel)
	if err != nil {
		writeConnError(conn, err)
		return
	}
	throttle, release, err := s.subscribeGate(sess.ctx, sess.tenant)
	if err != nil {
		writeConnError(conn, err)
		return
	}
	defer release()
	sess.srv.trackConn(conn)
	defer sess.srv.untrackConn(conn)
	sess.srv.streamTCP(conn, req.Channel, req.FromSeq, throttle)
}

// writeConnError best-effort reports err as a terminal frame (typed
// gap/quota payloads included).
func writeConnError(conn net.Conn, err error) {
	data, merr := EncodeFrame(errorFrame(err))
	if merr != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = WriteFrame(conn, data)
}

// HTTPHandler returns the service's HTTP interface:
//
//	POST   /v1/sessions                      — create a session
//	GET    /v1/sessions                      — list sessions
//	GET    /v1/sessions/{tenant}/{name}      — one session's status
//	DELETE /v1/sessions/{tenant}/{name}      — stop a session (bounded drain)
//	GET    /stream?channel=t/s/dirty&from_seq=N — NDJSON stream
//	GET    /sse?channel=...                  — Server-Sent Events
//	GET    /metrics                          — Prometheus text (per-tenant families)
//	GET    /healthz                          — per-session states
func (s *Service) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"sessions": s.List()})
	})
	mux.HandleFunc("GET /v1/sessions/{tenant}/{name}", func(w http.ResponseWriter, r *http.Request) {
		sess, ok := s.Get(r.PathValue("tenant"), r.PathValue("name"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": ErrUnknownSession.Error()})
			return
		}
		writeJSON(w, http.StatusOK, sess.status())
	})
	mux.HandleFunc("DELETE /v1/sessions/{tenant}/{name}", func(w http.ResponseWriter, r *http.Request) {
		tenant, name := r.PathValue("tenant"), r.PathValue("name")
		sess, ok := s.Get(tenant, name)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": ErrUnknownSession.Error()})
			return
		}
		err := s.Delete(tenant, name)
		resp := map[string]any{"deleted": sess.ID(), "drain_expired": sess.srv.DrainExpired()}
		if err != nil && !errors.Is(err, ErrUnknownSession) && !errors.Is(err, context.Canceled) {
			resp["pipeline_error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		s.serveStream(w, r, false)
	})
	mux.HandleFunc("GET /sse", func(w http.ResponseWriter, r *http.Request) {
		s.serveStream(w, r, true)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.reg.Snapshot()
		if snap == nil {
			http.Error(w, "metrics disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := snap.WritePrometheus(w); err != nil {
			s.logf("metrics: %v", err)
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		statuses := s.List()
		sessions := make(map[string]SessionStatus, len(statuses))
		state := "ok"
		for _, st := range statuses {
			sessions[st.Tenant+"/"+st.Name] = st
			if st.State == "failed" || st.State == "quarantined" {
				state = "degraded"
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"state": state, "sessions": sessions})
	})
	return mux
}

// handleCreate is POST /v1/sessions. Quota violations answer 429 with
// the typed payload in the body; duplicates 409; bad specs 400.
func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": fmt.Sprintf("bad session request: %v", err)})
		return
	}
	sess, err := s.Create(req)
	if err != nil {
		var quota *QuotaError
		switch {
		case errors.As(err, &quota):
			writeJSON(w, http.StatusTooManyRequests, map[string]any{"error": err.Error(), "quota": quota.Info()})
		case errors.Is(err, ErrSessionExists):
			writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
		case errors.Is(err, ErrServiceClosed):
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusCreated, sess.status())
}

// serveStream routes /stream and /sse through the namespaced channel's
// session, with the tenant's quota gate and throttle applied.
func (s *Service) serveStream(w http.ResponseWriter, r *http.Request, sse bool) {
	channel := r.URL.Query().Get("channel")
	sess, err := s.resolve(channel)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fromSeq, ok := parseFromSeq(w, r)
	if !ok {
		return
	}
	throttle, release, err := s.subscribeGate(sess.ctx, sess.tenant)
	if err != nil {
		var quota *QuotaError
		if errors.As(err, &quota) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "quota": quota.Info()})
			return
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer release()
	sess.srv.streamHTTP(w, r, sse, channel, fromSeq, throttle)
}

// writeJSON renders one JSON control-plane response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
