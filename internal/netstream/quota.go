package netstream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuota reports that a tenant exceeded one of its configured quotas
// (max sessions, max subscribers, bytes/sec).
var ErrQuota = errors.New("netstream: tenant quota exceeded")

// QuotaError is the typed form of ErrQuota: which tenant hit which
// ceiling. Like GapError it is permanent — retrying the identical
// request against the same configuration cannot succeed — so retry
// layers surface it instead of hammering the control plane. The wire
// form is Frame.Quota (TCP/stream subscriptions) or the JSON error body
// of a 429 (control plane).
type QuotaError struct {
	// Tenant is the tenant the quota applies to.
	Tenant string
	// Resource names the exhausted resource: "sessions", "subscribers",
	// "bytes_per_sec" or "wal_bytes".
	Resource string
	// Limit is the configured ceiling; Used the consumption at rejection
	// time (for bytes_per_sec, Limit is the rate and Used the write the
	// bucket could never cover).
	Limit uint64
	Used  uint64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("netstream: tenant %q over %s quota (limit %d, used %d)", e.Tenant, e.Resource, e.Limit, e.Used)
}

// Unwrap makes errors.Is(err, ErrQuota) hold.
func (e *QuotaError) Unwrap() error { return ErrQuota }

// Permanent marks the error non-retryable (stream.PermanentError).
func (e *QuotaError) Permanent() bool { return true }

// Info renders the machine-readable wire payload.
func (e *QuotaError) Info() *QuotaInfo {
	return &QuotaInfo{Tenant: e.Tenant, Resource: e.Resource, Limit: e.Limit, Used: e.Used}
}

// QuotaFromInfo rebuilds the typed error from its wire payload.
func QuotaFromInfo(q *QuotaInfo) *QuotaError {
	return &QuotaError{Tenant: q.Tenant, Resource: q.Resource, Limit: q.Limit, Used: q.Used}
}

// TenantQuota is one tenant's configured ceilings. Zero fields are
// unlimited.
type TenantQuota struct {
	// MaxSessions caps concurrently running sessions.
	MaxSessions int
	// MaxSubscribers caps concurrently open subscriptions across the
	// tenant's sessions.
	MaxSubscribers int
	// BytesPerSec rate-limits frame delivery to the tenant's subscribers
	// via a token bucket layered on the backpressure policy: a throttled
	// subscriber simply reads slower, so the policy (block/drop/
	// disconnect) decides what that does to the pipeline.
	BytesPerSec int64
	// Burst is the token-bucket depth in bytes (default: one second of
	// BytesPerSec). A single frame larger than the burst can never be
	// delivered and is rejected with a typed QuotaError.
	Burst int64
	// MaxWALBytes caps the tenant's total durable WAL bytes on disk
	// across all of its sessions (session service with a state dir): the
	// retention sweep drops the tenant's oldest closed segments once the
	// shared total exceeds the cap, and a session create is rejected with
	// a typed QuotaError while the tenant is already at or over budget.
	MaxWALBytes int64
}

// tokenBucket is a monotonic-clock token bucket shared by one tenant's
// subscriber send loops.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst int64) *tokenBucket {
	if burst <= 0 {
		burst = rate
	}
	return &tokenBucket{
		rate:   float64(rate),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   time.Now(),
	}
}

// reserve takes n tokens, going negative if needed, and returns how
// long the caller must wait for the balance to return to zero. ok is
// false when n exceeds the bucket depth entirely (the request can never
// be served).
func (b *tokenBucket) reserve(n int) (wait time.Duration, ok bool) {
	if float64(n) > b.burst {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0, true
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second)), true
}

// wait blocks until the bucket covers n bytes or ctx ends.
func (b *tokenBucket) wait(ctx context.Context, n int) error {
	d, ok := b.reserve(n)
	if !ok {
		return fmt.Errorf("netstream: write of %d bytes exceeds token-bucket burst", n)
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tenantState is the live accounting of one tenant inside a Service.
type tenantState struct {
	name  string
	quota TenantQuota
	// bucket is nil when BytesPerSec is unlimited.
	bucket *tokenBucket
	// walBudget is the shared durable-WAL byte ledger for the tenant's
	// sessions (always non-nil; a zero MaxWALBytes means unlimited but
	// the ledger still tracks usage for the /metrics gauge).
	walBudget *WALBudget

	mu       sync.Mutex
	sessions int
	subs     int
}

func newTenantState(name string, q TenantQuota) *tenantState {
	ts := &tenantState{name: name, quota: q}
	if q.BytesPerSec > 0 {
		ts.bucket = newTokenBucket(q.BytesPerSec, q.Burst)
	}
	ts.walBudget = NewWALBudget(q.MaxWALBytes)
	return ts
}

// checkWALBudget rejects a durable session create while the tenant is
// already at or over its WAL-bytes budget. Existing sessions keep
// running — the retention sweep reclaims space cooperatively — but new
// durable state cannot be provisioned until usage drops below the cap.
func (ts *tenantState) checkWALBudget() error {
	limit := ts.quota.MaxWALBytes
	if limit <= 0 {
		return nil
	}
	if used := ts.walBudget.Used(); used >= limit {
		return &QuotaError{Tenant: ts.name, Resource: "wal_bytes", Limit: uint64(limit), Used: uint64(used)}
	}
	return nil
}

// acquireSession claims one session slot, or fails with a QuotaError.
func (ts *tenantState) acquireSession() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.quota.MaxSessions > 0 && ts.sessions >= ts.quota.MaxSessions {
		return &QuotaError{Tenant: ts.name, Resource: "sessions", Limit: uint64(ts.quota.MaxSessions), Used: uint64(ts.sessions)}
	}
	ts.sessions++
	return nil
}

func (ts *tenantState) releaseSession() {
	ts.mu.Lock()
	if ts.sessions > 0 {
		ts.sessions--
	}
	ts.mu.Unlock()
}

// acquireSub claims one subscriber slot, or fails with a QuotaError.
func (ts *tenantState) acquireSub() error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.quota.MaxSubscribers > 0 && ts.subs >= ts.quota.MaxSubscribers {
		return &QuotaError{Tenant: ts.name, Resource: "subscribers", Limit: uint64(ts.quota.MaxSubscribers), Used: uint64(ts.subs)}
	}
	ts.subs++
	return nil
}

func (ts *tenantState) releaseSub() {
	ts.mu.Lock()
	if ts.subs > 0 {
		ts.subs--
	}
	ts.mu.Unlock()
}

// throttle waits for the rate limiter to cover n bytes (no-op when the
// tenant is unlimited). An oversized write fails with a QuotaError.
func (ts *tenantState) throttle(ctx context.Context, n int) error {
	if ts.bucket == nil {
		return nil
	}
	if err := ts.bucket.wait(ctx, n); err != nil {
		if ctx.Err() != nil {
			return err
		}
		return &QuotaError{Tenant: ts.name, Resource: "bytes_per_sec", Limit: uint64(ts.quota.BytesPerSec), Used: uint64(n)}
	}
	return nil
}
