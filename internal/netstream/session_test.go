package netstream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// testSessionSpec is the opaque spec the test Build hook understands.
type testSessionSpec struct {
	Seed    int64  `json:"seed"`
	N       int    `json:"n"`
	Buffer  int    `json:"buffer,omitempty"`
	Policy  string `json:"policy,omitempty"`
	DrainMS int    `json:"drain_ms,omitempty"`
}

func specJSON(t *testing.T, spec testSessionSpec) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// testServiceBuild compiles testSessionSpec into a testProcess config —
// the in-package analogue of icewafld's schema+config+csv builder.
func testServiceBuild(t *testing.T) func(json.RawMessage) (Config, error) {
	t.Helper()
	schema := wireSchema(t)
	return func(raw json.RawMessage) (Config, error) {
		var ts testSessionSpec
		if err := json.Unmarshal(raw, &ts); err != nil {
			return Config{}, err
		}
		if ts.N == 0 {
			ts.N = 100
		}
		cfg := Config{
			Schema: schema,
			Proc:   testProcess(ts.Seed),
			NewSource: func() (stream.Source, error) {
				return testSource(schema, ts.N), nil
			},
			Reorder: 1,
			Buffer:  64,
			Replay:  1 << 16,
		}
		if ts.Buffer > 0 {
			cfg.Buffer = ts.Buffer
		}
		if ts.Policy != "" {
			p, err := ParsePolicy(ts.Policy)
			if err != nil {
				return Config{}, err
			}
			cfg.Policy = p
		}
		if ts.DrainMS > 0 {
			cfg.DrainTimeout = time.Duration(ts.DrainMS) * time.Millisecond
		}
		return cfg, nil
	}
}

// startService serves a Service over loopback TCP and HTTP.
func startService(t *testing.T, cfg ServiceConfig) (svc *Service, tcpAddr, baseURL string) {
	t.Helper()
	if cfg.Build == nil {
		cfg.Build = testServiceBuild(t)
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 500 * time.Millisecond
	}
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := svc.Serve(ctx, tcpLn, httpLn); err != nil {
			t.Logf("service: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Error("service did not shut down")
		}
	})
	return svc, tcpLn.Addr().String(), "http://" + httpLn.Addr().String()
}

// createSession posts a session over the control plane, returning the
// HTTP status and decoded body.
func createSession(t *testing.T, baseURL, tenant, name string, spec json.RawMessage) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(SessionRequest{Tenant: tenant, Name: name, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("create %s/%s: decode body: %v", tenant, name, err)
	}
	return resp.StatusCode, out
}

// subscribeTCP opens a raw TCP subscription to a namespaced channel and
// returns the connection (caller reads frames).
func subscribeTCP(t *testing.T, addr, channel string, fromSeq uint64) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(SubscribeRequest{Channel: channel, FromSeq: fromSeq})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	return conn
}

// readTCPFrames drains a TCP subscription to its terminal frame,
// returning the decoded tuples and the terminal frame.
func readTCPFrames(t *testing.T, conn net.Conn) (tuples []stream.Tuple, terminal *Frame) {
	t.Helper()
	schema := wireSchema(t)
	deadline := time.Now().Add(20 * time.Second)
	_ = conn.SetReadDeadline(deadline)
	for {
		payload, err := ReadFrame(conn)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case FrameHello, FrameLog:
		case FrameTuple:
			tp, err := DecodeTuple(f.Tuple, schema)
			if err != nil {
				t.Fatal(err)
			}
			tuples = append(tuples, tp)
		case FrameColBatch:
			ts, err := DecodeColumnBatch(f.Batch, schema)
			if err != nil {
				t.Fatal(err)
			}
			tuples = append(tuples, ts...)
		case FrameEOF, FrameError:
			return tuples, f
		}
	}
}

// TestServiceMultiTenantSessions is the tentpole acceptance test: one
// service hosts 2 tenants × 4 concurrent sessions created over REST,
// every session's namespaced dirty channel is byte-identical to the
// in-process reference run, per-tenant counter families appear in
// /metrics, quota violations answer with typed payloads, and deleted
// sessions disappear from the control plane.
func TestServiceMultiTenantSessions(t *testing.T) {
	reg := obs.NewRegistry()
	_, tcpAddr, baseURL := startService(t, ServiceConfig{
		Reg: reg,
		Quotas: map[string]TenantQuota{
			"alpha": {MaxSessions: 4},
			"beta":  {MaxSessions: 4},
		},
	})

	const n = 200
	tenants := []string{"alpha", "beta"}
	for _, tenant := range tenants {
		for i := 0; i < 4; i++ {
			status, body := createSession(t, baseURL, tenant, fmt.Sprintf("s%d", i),
				specJSON(t, testSessionSpec{Seed: 7, N: n}))
			if status != http.StatusCreated {
				t.Fatalf("create %s/s%d: HTTP %d: %v", tenant, i, status, body)
			}
		}
	}

	// The control plane lists all eight, each with namespaced channels.
	resp, err := http.Get(baseURL + "/v1/sessions")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Sessions []SessionStatus `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Sessions) != 8 {
		t.Fatalf("listed %d sessions, want 8", len(list.Sessions))
	}
	if got := list.Sessions[0].Channels; len(got) != 3 || !strings.HasPrefix(got[0], list.Sessions[0].Tenant+"/") {
		t.Fatalf("session channels not namespaced: %v", got)
	}

	// Every session's dirty channel over TCP matches the in-process
	// reference run byte for byte.
	refDirty, _, _ := referenceRun(t, 7, n, 1)
	for _, tenant := range tenants {
		for i := 0; i < 4; i++ {
			ch := fmt.Sprintf("%s/s%d/%s", tenant, i, ChannelDirty)
			conn := subscribeTCP(t, tcpAddr, ch, 0)
			tuples, terminal := readTCPFrames(t, conn)
			conn.Close()
			if terminal.Type != FrameEOF {
				t.Fatalf("%s: terminal %q: %s", ch, terminal.Type, terminal.Error)
			}
			sameTuples(t, ch, tuples, refDirty)
		}
	}

	// A ninth session for alpha exceeds its quota: typed 429.
	status, body := createSession(t, baseURL, "alpha", "overflow",
		specJSON(t, testSessionSpec{Seed: 7, N: n}))
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: HTTP %d: %v", status, body)
	}
	quotaRaw, err := json.Marshal(body["quota"])
	if err != nil {
		t.Fatal(err)
	}
	var qi QuotaInfo
	if err := json.Unmarshal(quotaRaw, &qi); err != nil {
		t.Fatalf("429 body carries no quota payload: %v", body)
	}
	qerr := QuotaFromInfo(&qi)
	if !errors.Is(qerr, ErrQuota) || qerr.Resource != "sessions" || qerr.Tenant != "alpha" || qerr.Limit != 4 {
		t.Fatalf("quota payload = %+v", qerr)
	}

	// /metrics carries the per-tenant families round-trippably.
	resp, err = http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := obs.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range tenants {
		if snap.TenantFrames[tenant] == 0 || snap.TenantBytes[tenant] == 0 {
			t.Fatalf("tenant %s missing from delivery families: frames=%v bytes=%v",
				tenant, snap.TenantFrames, snap.TenantBytes)
		}
	}
	if snap.TenantQuotaRejections["alpha"] == 0 {
		t.Fatalf("alpha's quota rejection not counted: %v", snap.TenantQuotaRejections)
	}
	if h, ok := snap.Histograms["deliver"]; !ok || h.Count == 0 {
		t.Fatalf("deliver histogram missing or empty: %+v", snap.Histograms)
	}

	// healthz reports every session individually.
	resp, err = http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		State    string                   `json:"state"`
		Sessions map[string]SessionStatus `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.State != "ok" || len(health.Sessions) != 8 {
		t.Fatalf("healthz: state=%s sessions=%d", health.State, len(health.Sessions))
	}

	// DELETE removes the session; the freed slot admits a new one.
	req, _ := http.NewRequest(http.MethodDelete, baseURL+"/v1/sessions/alpha/s0", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	resp, err = http.Get(baseURL + "/v1/sessions/alpha/s0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get deleted session: HTTP %d, want 404", resp.StatusCode)
	}
	if status, body := createSession(t, baseURL, "alpha", "replacement",
		specJSON(t, testSessionSpec{Seed: 7, N: 10})); status != http.StatusCreated {
		t.Fatalf("create after delete: HTTP %d: %v", status, body)
	}
}

// TestServiceSubscribeDeletedSessionTypedError pins the multi-session
// subscribe contract: a subscription addressed at a deleted (or never
// created) session fails promptly with a typed unknown-channel error
// frame, not a hang.
func TestServiceSubscribeDeletedSessionTypedError(t *testing.T) {
	svc, tcpAddr, baseURL := startService(t, ServiceConfig{})
	if status, body := createSession(t, baseURL, "t1", "gone",
		specJSON(t, testSessionSpec{Seed: 3, N: 20})); status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %v", status, body)
	}
	if err := svc.Delete("t1", "gone"); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("delete: %v", err)
	}

	// In-process resolution returns the typed error.
	if _, err := svc.resolve("t1/gone/dirty"); err == nil {
		t.Fatal("resolve after delete succeeded")
	} else {
		var uce *UnknownChannelError
		if !errors.As(err, &uce) || !errors.Is(err, ErrUnknownChannel) {
			t.Fatalf("resolve after delete: %v (want UnknownChannelError)", err)
		}
	}

	// And over the wire: a terminal error frame, promptly.
	conn := subscribeTCP(t, tcpAddr, "t1/gone/dirty", 0)
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := ReadFrame(conn)
	if err != nil {
		t.Fatalf("read error frame: %v", err)
	}
	f, err := DecodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameError || !strings.Contains(f.Error, "unknown channel") {
		t.Fatalf("terminal frame = %+v, want unknown-channel error", f)
	}

	// Second deletion reports the typed unknown-session error.
	if err := svc.Delete("t1", "gone"); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("double delete: %v, want ErrUnknownSession", err)
	}
}

// TestServiceSubscriberQuotaTypedOnWire pins that a subscriber over the
// tenant's MaxSubscribers ceiling is rejected with a typed quota error
// frame that round-trips to a permanent QuotaError.
func TestServiceSubscriberQuotaTypedOnWire(t *testing.T) {
	_, tcpAddr, baseURL := startService(t, ServiceConfig{
		Quotas: map[string]TenantQuota{"gamma": {MaxSubscribers: 1}},
	})
	if status, body := createSession(t, baseURL, "gamma", "s",
		specJSON(t, testSessionSpec{Seed: 5, N: 60000, Policy: "block", Buffer: 1})); status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %v", status, body)
	}

	// First subscriber holds the only slot. It reads only the hello: the
	// input is large enough (60k frames ≫ the kernel socket buffers)
	// that its stream cannot complete — and release the slot — before
	// the second subscriber is rejected.
	first := subscribeTCP(t, tcpAddr, "gamma/s/dirty", 0)
	defer first.Close()
	// The slot is taken once the hello frame arrives.
	_ = first.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(first); err != nil {
		t.Fatalf("first subscriber hello: %v", err)
	}

	second := subscribeTCP(t, tcpAddr, "gamma/s/dirty", 0)
	defer second.Close()
	_ = second.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, err := ReadFrame(second)
	if err != nil {
		t.Fatalf("second subscriber: %v", err)
	}
	f, err := DecodeFrame(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != FrameError || f.Quota == nil {
		t.Fatalf("second subscriber got %+v, want typed quota error frame", f)
	}
	qerr := QuotaFromInfo(f.Quota)
	if !errors.Is(qerr, ErrQuota) || qerr.Resource != "subscribers" || !qerr.Permanent() {
		t.Fatalf("wire quota error = %+v", qerr)
	}

	// HTTP subscribers get the typed payload as a 429 body.
	resp, err := http.Get(baseURL + "/stream?channel=gamma/s/dirty")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("http subscriber: HTTP %d, want 429", resp.StatusCode)
	}
	var body struct {
		Quota *QuotaInfo `json:"quota"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Quota == nil {
		t.Fatalf("429 body lacks quota payload: %v", err)
	}
}

// TestServiceDeleteBoundedWithWedgedSubscriber is the satellite-3
// regression: DELETE on a session whose block-policy pipeline is wedged
// behind a subscriber that never reads must return within the session's
// drain timeout (the PR6 bounded-drain path), force-closing the stalled
// subscriber, and report drain_expired.
func TestServiceDeleteBoundedWithWedgedSubscriber(t *testing.T) {
	svc, tcpAddr, baseURL := startService(t, ServiceConfig{})
	// Block policy + a subscriber that never reads wedges the publisher
	// once the socket buffers fill. DrainMS bounds the delete.
	if status, body := createSession(t, baseURL, "t", "wedged",
		specJSON(t, testSessionSpec{Seed: 11, N: 60000, Policy: "block", Buffer: 16, DrainMS: 300})); status != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %v", status, body)
	}
	sess, ok := svc.Get("t", "wedged")
	if !ok {
		t.Fatal("session not found after create")
	}

	conn := subscribeTCP(t, tcpAddr, "t/wedged/dirty", 0)
	defer conn.Close()
	// Read only the hello, then stall without consuming tuples.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := ReadFrame(conn); err != nil {
		t.Fatalf("hello: %v", err)
	}
	// Wait until the publish cursor genuinely stalls, so DELETE runs
	// against a wedged pipeline rather than one still making progress.
	var last uint64
	stable := 0
	wedgeDeadline := time.Now().Add(30 * time.Second)
	for stable < 3 {
		if time.Now().After(wedgeDeadline) {
			t.Fatalf("pipeline never wedged (seq %d)", last)
		}
		time.Sleep(100 * time.Millisecond)
		cur := sess.Server().Hub().Seq("t/wedged/" + ChannelDirty)
		if cur > 0 && cur == last {
			stable++
		} else {
			stable, last = 0, cur
		}
	}
	if last >= 60000 {
		t.Fatal("pipeline finished instead of wedging on the stuck subscriber")
	}

	start := time.Now()
	req, _ := http.NewRequest(http.MethodDelete, baseURL+"/v1/sessions/t/wedged", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d: %v", resp.StatusCode, out)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("delete of wedged session took %v; bounded drain did not bound", elapsed)
	}
	if expired, _ := out["drain_expired"].(bool); !expired {
		t.Fatalf("delete response = %v, want drain_expired=true", out)
	}
}

// TestHubSubscribeCloseRace is the satellite-2 -race regression:
// Subscribe hammered concurrently with Hub.Close must never hang, leak
// a subscriber, or return an untyped error — each call either succeeds
// (and its subscription terminates with ErrHubClosed) or fails with
// ErrHubClosed immediately.
func TestHubSubscribeCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		reg := obs.NewRegistry()
		hub := NewHubNamed(Channels(), 4, 16, PolicyBlock, reg)
		if err := hub.SetHello(ChannelDirty, &Frame{Type: FrameHello, Channel: ChannelDirty}); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 50; j++ {
					sub, err := hub.Subscribe(ChannelDirty, 0)
					if err != nil {
						if !errors.Is(err, ErrHubClosed) {
							t.Errorf("subscribe: %v (want ErrHubClosed)", err)
						}
						return
					}
					// Drain until terminal so queued frames don't pin the
					// subscriber, then detach.
					for {
						_, _, rerr := sub.Recv()
						if rerr != nil {
							if !errors.Is(rerr, ErrHubClosed) {
								t.Errorf("recv: %v", rerr)
							}
							break
						}
					}
					sub.Close()
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_ = hub.Publish(ChannelDirty, &Frame{Type: FrameTuple, Channel: ChannelDirty})
			hub.Close()
		}()
		close(start)
		wg.Wait()
		if n := hub.SubscriberCount(); n != 0 {
			t.Fatalf("round %d: %d subscribers leaked", round, n)
		}
	}
}

// TestHubSubscribeTypedErrors pins the typed error contract of
// Subscribe: closed hub → ErrHubClosed, unknown channel →
// UnknownChannelError (errors.As-able, permanent).
func TestHubSubscribeTypedErrors(t *testing.T) {
	hub := NewHubNamed(Channels(), 4, 16, PolicyBlock, nil)
	if _, err := hub.Subscribe("t/missing/dirty", 0); err == nil {
		t.Fatal("subscribe to unknown channel succeeded")
	} else {
		var uce *UnknownChannelError
		if !errors.As(err, &uce) || uce.Channel != "t/missing/dirty" || !uce.Permanent() {
			t.Fatalf("unknown channel error = %v", err)
		}
	}
	hub.Close()
	done := make(chan error, 1)
	go func() {
		_, err := hub.Subscribe(ChannelDirty, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHubClosed) {
			t.Fatalf("subscribe after close: %v, want ErrHubClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe after close hung")
	}
}

// TestSubscriberGaugesUnregisteredOnClose is the gauge-leak regression:
// per-subscriber queue gauges must vanish from the registry when the
// subscription closes, or a long-lived daemon accumulates dead gauges.
func TestSubscriberGaugesUnregisteredOnClose(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub(4, 16, PolicyBlock, reg)
	defer hub.Close()
	base := len(reg.Snapshot().Gauges)
	for i := 0; i < 10; i++ {
		sub, err := hub.Subscribe(ChannelDirty, 0)
		if err != nil {
			t.Fatal(err)
		}
		if grown := len(reg.Snapshot().Gauges); grown != base+2 {
			t.Fatalf("iteration %d: %d gauges while subscribed, want %d", i, grown, base+2)
		}
		sub.Close()
		if after := len(reg.Snapshot().Gauges); after != base {
			t.Fatalf("iteration %d: %d gauges after close, want %d (leak)", i, after, base)
		}
	}
}
