package netstream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"icewafl/internal/obs"
)

// Policy selects how the hub reacts when a subscriber's bounded send
// buffer is full — the backpressure contract of the service.
type Policy int

const (
	// PolicyBlock stalls the publisher until the slow subscriber drains
	// (lossless; one slow client throttles the pipeline and therefore
	// every other client).
	PolicyBlock Policy = iota
	// PolicyDropOldest evicts the subscriber's oldest queued frame to
	// make room (lossy for the slow client only; the pipeline and fast
	// clients are unaffected; drops are counted per client).
	PolicyDropOldest
	// PolicyDisconnectSlow closes the slow subscriber's subscription
	// (the client may reconnect and resume from its last sequence
	// number via the replay ring).
	PolicyDisconnectSlow
)

// ParsePolicy parses the configuration spelling of a policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "block":
		return PolicyBlock, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	case "disconnect-slow":
		return PolicyDisconnectSlow, nil
	}
	return 0, fmt.Errorf("netstream: unknown backpressure policy %q (want block, drop-oldest or disconnect-slow)", s)
}

// String returns the configuration spelling.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyDisconnectSlow:
		return "disconnect-slow"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ErrSlowClient terminates a subscription under PolicyDisconnectSlow.
var ErrSlowClient = errors.New("netstream: subscriber too slow, disconnected by backpressure policy")

// ErrGap reports that a subscription's from_seq is no longer retained in
// the replay ring — the client reconnected too late to resume without
// loss.
var ErrGap = errors.New("netstream: requested sequence no longer retained (replay gap)")

// ErrHubClosed reports that the hub shut down (graceful drain finished).
var ErrHubClosed = errors.New("netstream: hub closed")

// savedFrame is one published, already-encoded frame.
type savedFrame struct {
	seq      uint64
	data     []byte
	terminal bool
}

// channel is one named broadcast stream inside the hub.
type channel struct {
	name string
	seq  uint64
	// ring retains the most recent frames for replay, oldest first.
	ring []savedFrame
	// hello is the channel's opening frame, replayed to every new
	// subscriber (it is not part of the sequence space).
	hello []byte
	subs  map[*Subscriber]struct{}
	// done is set once a terminal frame was published.
	done bool
}

// Hub fans published frames out to per-channel subscribers with bounded
// buffers and a configurable backpressure policy. Publishing is safe
// from one goroutine per channel; subscribing and unsubscribing are safe
// from any goroutine.
type Hub struct {
	mu       sync.Mutex
	channels map[string]*channel
	buffer   int
	replay   int
	policy   Policy
	closed   bool

	nextSubID atomic.Uint64

	// Aggregate counters, exported as obs gauges.
	framesSent      atomic.Uint64
	framesDropped   atomic.Uint64
	slowDisconnects atomic.Uint64
	subscribers     atomic.Int64

	reg *obs.Registry
}

// NewHub builds a hub for the standard channels. buffer is the
// per-subscriber queue capacity (minimum 1), replay the number of frames
// retained per channel for late subscribers and reconnects (minimum
// buffer).
func NewHub(buffer, replay int, policy Policy, reg *obs.Registry) *Hub {
	if buffer < 1 {
		buffer = 64
	}
	if replay < buffer {
		replay = buffer
	}
	h := &Hub{
		channels: make(map[string]*channel),
		buffer:   buffer,
		replay:   replay,
		policy:   policy,
		reg:      reg,
	}
	for _, name := range Channels() {
		h.channels[name] = &channel{name: name, subs: make(map[*Subscriber]struct{})}
	}
	reg.RegisterFunc("net_subscribers", func() uint64 {
		n := h.subscribers.Load()
		if n < 0 {
			return 0
		}
		return uint64(n)
	})
	reg.RegisterFunc("net_frames_sent_total", h.framesSent.Load)
	reg.RegisterFunc("net_frames_dropped_total", h.framesDropped.Load)
	reg.RegisterFunc("net_slow_disconnects_total", h.slowDisconnects.Load)
	return h
}

// Policy returns the hub's backpressure policy.
func (h *Hub) Policy() Policy { return h.policy }

// SetHello stores the channel's opening frame, delivered to every new
// subscriber before any data frame.
func (h *Hub) SetHello(channelName string, f *Frame) error {
	data, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.channels[channelName]
	if !ok {
		return fmt.Errorf("netstream: unknown channel %q", channelName)
	}
	ch.hello = data
	return nil
}

// Publish broadcasts f on the named channel, assigning the next sequence
// number. Terminal frames (eof/error) are retained like data frames, so
// late subscribers observe the stream's end. The call applies the hub's
// backpressure policy per subscriber.
func (h *Hub) Publish(channelName string, f *Frame) error {
	terminal := f.Type == FrameEOF || f.Type == FrameError
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHubClosed
	}
	ch, ok := h.channels[channelName]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("netstream: unknown channel %q", channelName)
	}
	if ch.done {
		h.mu.Unlock()
		return fmt.Errorf("netstream: channel %q already terminated", channelName)
	}
	ch.seq++
	f.Seq = ch.seq
	f.Channel = channelName
	data, err := EncodeFrame(f)
	if err != nil {
		ch.seq--
		h.mu.Unlock()
		return err
	}
	sf := savedFrame{seq: ch.seq, data: data, terminal: terminal}
	ch.ring = append(ch.ring, sf)
	if len(ch.ring) > h.replay {
		// Never evict the hello-equivalent head beyond capacity; plain
		// sliding eviction, oldest first.
		ch.ring = ch.ring[len(ch.ring)-h.replay:]
	}
	if terminal {
		ch.done = true
	}
	subs := make([]*Subscriber, 0, len(ch.subs))
	for s := range ch.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()

	for _, s := range subs {
		h.deliver(s, sf)
	}
	return nil
}

// deliver hands one frame to one subscriber under the backpressure
// policy.
func (h *Hub) deliver(s *Subscriber, sf savedFrame) {
	switch h.policy {
	case PolicyBlock:
		select {
		case s.ch <- sf:
			h.framesSent.Add(1)
		case <-s.closed:
		}
	case PolicyDropOldest:
		for {
			select {
			case s.ch <- sf:
				h.framesSent.Add(1)
				return
			case <-s.closed:
				return
			default:
			}
			select {
			case <-s.ch:
				s.droppedN.Add(1)
				h.framesDropped.Add(1)
			default:
			}
		}
	case PolicyDisconnectSlow:
		select {
		case s.ch <- sf:
			h.framesSent.Add(1)
		case <-s.closed:
		default:
			h.slowDisconnects.Add(1)
			s.fail(ErrSlowClient)
			h.unsubscribe(s)
		}
	}
}

// Subscriber is one client's bounded subscription to a channel.
type Subscriber struct {
	id        uint64
	hub       *Hub
	channel   string
	ch        chan savedFrame
	closed    chan struct{}
	once      sync.Once
	closeOnce sync.Once
	err       atomic.Value // error

	// replay frames delivered before any live frame.
	replay []savedFrame

	droppedN atomic.Uint64
}

// Subscribe registers a subscriber on the named channel, resuming at
// fromSeq (0 = from the beginning). The returned subscriber already
// holds every retained frame with seq >= fromSeq; frames published after
// the call are queued into its bounded buffer under the hub's policy.
// Subscribe fails with ErrGap when fromSeq (or the beginning) is no
// longer retained.
func (h *Hub) Subscribe(channelName string, fromSeq uint64) (*Subscriber, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	ch, ok := h.channels[channelName]
	if !ok {
		return nil, fmt.Errorf("netstream: unknown channel %q", channelName)
	}
	start := fromSeq
	if start == 0 {
		start = 1
	}
	if len(ch.ring) > 0 && ch.ring[0].seq > start {
		return nil, fmt.Errorf("%w: channel %q retains from seq %d, requested %d", ErrGap, channelName, ch.ring[0].seq, start)
	}
	if len(ch.ring) == 0 && ch.seq >= start {
		return nil, fmt.Errorf("%w: channel %q retains nothing, requested %d", ErrGap, channelName, start)
	}
	s := &Subscriber{
		id:      h.nextSubID.Add(1),
		hub:     h,
		channel: channelName,
		ch:      make(chan savedFrame, h.buffer),
		closed:  make(chan struct{}),
	}
	if ch.hello != nil {
		s.replay = append(s.replay, savedFrame{data: ch.hello})
	}
	for _, sf := range ch.ring {
		if sf.seq >= start {
			s.replay = append(s.replay, sf)
		}
	}
	if !ch.done {
		ch.subs[s] = struct{}{}
	}
	h.subscribers.Add(1)
	h.reg.RegisterFunc(fmt.Sprintf("net_queue_depth_client_%d", s.id), func() uint64 {
		return uint64(len(s.ch)) + uint64(len(s.replay))
	})
	h.reg.RegisterFunc(fmt.Sprintf("net_dropped_client_%d", s.id), s.droppedN.Load)
	return s, nil
}

// unsubscribe removes s from its channel's live set.
func (h *Hub) unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.channels[s.channel]; ok {
		if _, live := ch.subs[s]; live {
			delete(ch.subs, s)
		}
	}
}

// ID returns the subscriber's hub-unique identifier.
func (s *Subscriber) ID() uint64 { return s.id }

// Dropped returns how many frames the backpressure policy evicted from
// this subscriber's queue.
func (s *Subscriber) Dropped() uint64 { return s.droppedN.Load() }

// fail records the terminal error and stops deliveries.
func (s *Subscriber) fail(err error) {
	s.once.Do(func() {
		s.err.Store(err)
		close(s.closed)
	})
}

// Close detaches the subscriber (idempotent). Queued frames already
// buffered remain readable via Recv until drained.
func (s *Subscriber) Close() {
	s.fail(ErrHubClosed)
	s.closeOnce.Do(func() {
		s.hub.unsubscribe(s)
		s.hub.subscribers.Add(-1)
	})
}

// termErr returns the subscription's terminal error.
func (s *Subscriber) termErr() error {
	if e, ok := s.err.Load().(error); ok && e != nil {
		return e
	}
	return ErrHubClosed
}

// Recv returns the next frame's encoded bytes and whether it is
// terminal (eof/error). After the subscription ends, Recv drains any
// still-buffered frames and then returns the terminal cause
// (ErrSlowClient under disconnect-slow, ErrHubClosed after Close or hub
// shutdown).
func (s *Subscriber) Recv() (data []byte, terminal bool, err error) {
	if len(s.replay) > 0 {
		sf := s.replay[0]
		s.replay = s.replay[1:]
		return sf.data, sf.terminal, nil
	}
	select {
	case sf := <-s.ch:
		return sf.data, sf.terminal, nil
	case <-s.closed:
		// Drain whatever was queued before the close.
		select {
		case sf := <-s.ch:
			return sf.data, sf.terminal, nil
		default:
			return nil, false, s.termErr()
		}
	}
}

// RecvContext is Recv with cancellation: it additionally returns
// ctx.Err() once ctx is done (used by HTTP handlers tied to the request
// context).
func (s *Subscriber) RecvContext(ctx context.Context) (data []byte, terminal bool, err error) {
	if len(s.replay) > 0 {
		sf := s.replay[0]
		s.replay = s.replay[1:]
		return sf.data, sf.terminal, nil
	}
	select {
	case sf := <-s.ch:
		return sf.data, sf.terminal, nil
	case <-s.closed:
		select {
		case sf := <-s.ch:
			return sf.data, sf.terminal, nil
		default:
			return nil, false, s.termErr()
		}
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Close shuts the hub down: every subscriber's subscription terminates
// (after draining its buffered frames) and future Publish/Subscribe
// calls fail with ErrHubClosed.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	var all []*Subscriber
	for _, ch := range h.channels {
		for s := range ch.subs {
			all = append(all, s)
		}
		ch.subs = make(map[*Subscriber]struct{})
	}
	h.mu.Unlock()
	for _, s := range all {
		s.fail(ErrHubClosed)
	}
}

// Seq returns the channel's current sequence number (frames published so
// far).
func (h *Hub) Seq(channelName string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.channels[channelName]; ok {
		return ch.seq
	}
	return 0
}
