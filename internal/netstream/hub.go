package netstream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"icewafl/internal/obs"
)

// Policy selects how the hub reacts when a subscriber's bounded send
// buffer is full — the backpressure contract of the service.
type Policy int

const (
	// PolicyBlock stalls the publisher until the slow subscriber drains
	// (lossless; one slow client throttles the pipeline and therefore
	// every other client).
	PolicyBlock Policy = iota
	// PolicyDropOldest evicts the subscriber's oldest queued frame to
	// make room (lossy for the slow client only; the pipeline and fast
	// clients are unaffected; drops are counted per client).
	PolicyDropOldest
	// PolicyDisconnectSlow closes the slow subscriber's subscription
	// (the client may reconnect and resume from its last sequence
	// number via the replay ring).
	PolicyDisconnectSlow
)

// ParsePolicy parses the configuration spelling of a policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "block":
		return PolicyBlock, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	case "disconnect-slow":
		return PolicyDisconnectSlow, nil
	}
	return 0, fmt.Errorf("netstream: unknown backpressure policy %q (want block, drop-oldest or disconnect-slow)", s)
}

// String returns the configuration spelling.
func (p Policy) String() string {
	switch p {
	case PolicyBlock:
		return "block"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyDisconnectSlow:
		return "disconnect-slow"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ErrSlowClient terminates a subscription under PolicyDisconnectSlow.
var ErrSlowClient = errors.New("netstream: subscriber too slow, disconnected by backpressure policy")

// ErrGap reports that a subscription's from_seq is no longer retained in
// the replay ring — the client reconnected too late to resume without
// loss.
var ErrGap = errors.New("netstream: requested sequence no longer retained (replay gap)")

// GapError is the typed form of ErrGap: the requested resume point fell
// behind the server's retention. It is permanent — retrying the same
// from_seq can never succeed — so retry layers (stream.RetrySource)
// must surface it instead of looping.
type GapError struct {
	// Channel is the subscribed channel.
	Channel string
	// Requested is the from_seq the subscriber asked for.
	Requested uint64
	// LastAcked is the last sequence the subscriber had received
	// (Requested-1; 0 when it had received nothing).
	LastAcked uint64
	// ServerMin is the oldest sequence the server still retains (0 when
	// it retains nothing).
	ServerMin uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("netstream: channel %q retains from seq %d, requested %d (replay gap)", e.Channel, e.ServerMin, e.Requested)
}

// Unwrap makes errors.Is(err, ErrGap) hold.
func (e *GapError) Unwrap() error { return ErrGap }

// Permanent marks the error non-retryable (stream.PermanentError).
func (e *GapError) Permanent() bool { return true }

// ErrHubClosed reports that the hub shut down (graceful drain finished).
var ErrHubClosed = errors.New("netstream: hub closed")

// ErrUnknownChannel reports an operation on a channel the hub does not
// carry — in the session service this is also the prompt answer for a
// subscribe addressed at a deleted or never-created session.
var ErrUnknownChannel = errors.New("netstream: unknown channel")

// UnknownChannelError is the typed form of ErrUnknownChannel. It is
// permanent — the hub's channel set is fixed at construction, so
// retrying the same name can never succeed.
type UnknownChannelError struct {
	// Channel is the requested channel name.
	Channel string
}

func (e *UnknownChannelError) Error() string {
	return fmt.Sprintf("netstream: unknown channel %q", e.Channel)
}

// Unwrap makes errors.Is(err, ErrUnknownChannel) hold.
func (e *UnknownChannelError) Unwrap() error { return ErrUnknownChannel }

// Permanent marks the error non-retryable (stream.PermanentError).
func (e *UnknownChannelError) Permanent() bool { return true }

// savedFrame is one published, already-encoded frame.
type savedFrame struct {
	seq      uint64
	data     []byte
	terminal bool
	// at is the publish time, stamped only when the hub tracks delivery
	// latency (the session service); zero otherwise so deterministic
	// single-pipeline runs never read the clock per frame.
	at time.Time
}

// channel is one named broadcast stream inside the hub.
type channel struct {
	name string
	seq  uint64
	// ring retains the most recent frames for replay, oldest first.
	ring []savedFrame
	// hello is the channel's opening frame, replayed to every new
	// subscriber (it is not part of the sequence space).
	hello []byte
	subs  map[*Subscriber]struct{}
	// done is set once a terminal frame was published.
	done bool
	// wal, when attached, durably persists every published frame (except
	// error frames, which are live-delivery only so a crashed run can
	// resume after restart) and serves replay past the in-memory ring.
	wal *WAL
	// recoverMax is the recovery suppression boundary: while seq <=
	// recoverMax, the deterministic re-run is regenerating frames that
	// were already durably published before a restart, so Publish assigns
	// the sequence number but neither persists nor delivers the frame.
	recoverMax uint64
}

// Hub fans published frames out to per-channel subscribers with bounded
// buffers and a configurable backpressure policy. Publishing is safe
// from one goroutine per channel; subscribing and unsubscribing are safe
// from any goroutine.
type Hub struct {
	mu       sync.Mutex
	channels map[string]*channel
	buffer   int
	replay   int
	policy   Policy
	closed   bool
	// resumable marks the hub as backing a restartable session (durable
	// or supervised): error frames are then live-delivery only — they
	// consume no sequence number and never mark a channel done, so a
	// restarted session continues the sequence with no gap.
	resumable bool
	// trackDelivery stamps published frames with the publish time and
	// observes publish→Recv pickup into StageDeliver (the session
	// service's p50/p99 source). Off by default so deterministic runs
	// never read the clock per frame.
	trackDelivery bool
	// perSubGauges registers per-subscriber queue-depth/dropped gauges
	// on the registry (the single-pipeline daemon). Session hubs leave
	// it off: thousands of subscribers would swamp /metrics.
	perSubGauges bool

	nextSubID atomic.Uint64

	// Aggregate counters, exported as obs gauges.
	framesSent      atomic.Uint64
	framesDropped   atomic.Uint64
	slowDisconnects atomic.Uint64
	subscribers     atomic.Int64
	recovered       atomic.Uint64

	reg *obs.Registry
}

// NewHub builds a hub for the standard channels. buffer is the
// per-subscriber queue capacity (minimum 1), replay the number of frames
// retained per channel for late subscribers and reconnects (minimum
// buffer).
func NewHub(buffer, replay int, policy Policy, reg *obs.Registry) *Hub {
	h := NewHubNamed(Channels(), buffer, replay, policy, reg)
	h.perSubGauges = true
	reg.RegisterFunc("net_subscribers", func() uint64 {
		n := h.subscribers.Load()
		if n < 0 {
			return 0
		}
		return uint64(n)
	})
	reg.RegisterFunc("net_frames_sent_total", h.framesSent.Load)
	reg.RegisterFunc("net_frames_dropped_total", h.framesDropped.Load)
	reg.RegisterFunc("net_slow_disconnects_total", h.slowDisconnects.Load)
	reg.RegisterFunc("net_recovery_frames_replayed_total", h.recovered.Load)
	reg.RegisterFunc("net_wal_fsyncs_total", h.walFsyncs)
	reg.RegisterFunc("net_wal_appends_total", h.walAppends)
	return h
}

// NewHubNamed builds a hub carrying exactly the given channels (the
// session service namespaces them as <tenant>/<session>/<channel>).
// Unlike NewHub it registers no gauges on reg: session hubs share one
// registry per daemon process, so a second hub would clobber the
// first's registrations — the service layer aggregates across hubs
// under per-tenant families instead.
func NewHubNamed(channelNames []string, buffer, replay int, policy Policy, reg *obs.Registry) *Hub {
	if buffer < 1 {
		buffer = 64
	}
	if replay < buffer {
		replay = buffer
	}
	h := &Hub{
		channels: make(map[string]*channel),
		buffer:   buffer,
		replay:   replay,
		policy:   policy,
		reg:      reg,
	}
	for _, name := range channelNames {
		h.channels[name] = &channel{name: name, subs: make(map[*Subscriber]struct{})}
	}
	return h
}

// SetDeliveryTracking stamps published frames with the publish time and
// observes publish→Recv pickup latency into StageDeliver. Set before
// serving traffic; off by default so deterministic single-pipeline runs
// never read the clock per frame.
func (h *Hub) SetDeliveryTracking(v bool) {
	h.mu.Lock()
	h.trackDelivery = v
	h.mu.Unlock()
}

// FramesSent returns how many frames the hub queued to subscribers.
func (h *Hub) FramesSent() uint64 { return h.framesSent.Load() }

// SubscriberCount returns the number of open subscriptions.
func (h *Hub) SubscriberCount() int64 { return h.subscribers.Load() }

// walFsyncs sums fsync counts across the attached channel WALs.
func (h *Hub) walFsyncs() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, ch := range h.channels {
		if ch.wal != nil {
			n += ch.wal.Fsyncs()
		}
	}
	return n
}

// walAppends sums append counts across the attached channel WALs.
func (h *Hub) walAppends() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var n uint64
	for _, ch := range h.channels {
		if ch.wal != nil {
			n += ch.wal.Appends()
		}
	}
	return n
}

// Recovered returns how many regenerated frames the recovery suppression
// boundary absorbed (frames already durable before a restart).
func (h *Hub) Recovered() uint64 { return h.recovered.Load() }

// AttachWAL backs the named channel with a durable log. The channel's
// sequence cursor advances to the log's newest record, the replay ring
// is warmed from the log's tail, and a durably-terminal log marks the
// channel done. Attach before serving traffic (it does not retrofit
// already-published frames).
func (h *Hub) AttachWAL(channelName string, w *WAL) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.channels[channelName]
	if !ok {
		return &UnknownChannelError{Channel: channelName}
	}
	if ch.seq != 0 || ch.wal != nil {
		return fmt.Errorf("netstream: channel %q already has frames or a wal", channelName)
	}
	ch.wal = w
	ch.seq = w.MaxSeq()
	ch.done = w.Terminal()
	// Warm the in-memory ring from the log tail so ring-level consumers
	// (and the common resume window) stay memory-served.
	if maxSeq := w.MaxSeq(); maxSeq > 0 {
		start := w.MinSeq()
		if maxSeq-start+1 > uint64(h.replay) {
			start = maxSeq - uint64(h.replay) + 1
		}
		r, err := w.ReadFrom(start)
		if err != nil {
			return err
		}
		defer r.Close()
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return fmt.Errorf("netstream: warm ring for %q: %w", channelName, err)
			}
			data := append([]byte(nil), rec.Payload...)
			ch.ring = append(ch.ring, savedFrame{seq: rec.Seq, data: data, terminal: rec.Terminal})
		}
	}
	return nil
}

// WAL returns the channel's attached log (nil when memory-only).
func (h *Hub) WAL(channelName string) *WAL {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.channels[channelName]; ok {
		return ch.wal
	}
	return nil
}

// BeginRecovery rewinds the named channel's publish cursor to a
// checkpoint's frame count and arms the suppression boundary at the
// current maximum: the deterministic re-run between cursor and the
// boundary regenerates frames that are already durable (or already in
// the ring), so Publish consumes their sequence numbers silently —
// subscribers never see a duplicate, and the first genuinely new frame
// continues the sequence with no gap.
func (h *Hub) BeginRecovery(channelName string, cursor uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.channels[channelName]
	if !ok {
		return &UnknownChannelError{Channel: channelName}
	}
	if cursor > ch.seq {
		return fmt.Errorf("netstream: channel %q recovery cursor %d ahead of durable seq %d", channelName, cursor, ch.seq)
	}
	ch.recoverMax = ch.seq
	ch.seq = cursor
	return nil
}

// Policy returns the hub's backpressure policy.
func (h *Hub) Policy() Policy { return h.policy }

// SetResumable marks the hub as backing a restartable session: error
// frames become live-delivery only (no sequence number, no retention,
// no terminal marking), so a restarted session continues each channel's
// sequence with no duplicates or gaps. Set before serving traffic.
func (h *Hub) SetResumable(v bool) {
	h.mu.Lock()
	h.resumable = v
	h.mu.Unlock()
}

// SetHello stores the channel's opening frame, delivered to every new
// subscriber before any data frame.
func (h *Hub) SetHello(channelName string, f *Frame) error {
	data, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ch, ok := h.channels[channelName]
	if !ok {
		return &UnknownChannelError{Channel: channelName}
	}
	ch.hello = data
	return nil
}

// Publish broadcasts f on the named channel, assigning the next sequence
// number. Terminal frames (eof/error) are retained like data frames, so
// late subscribers observe the stream's end. The call applies the hub's
// backpressure policy per subscriber.
func (h *Hub) Publish(channelName string, f *Frame) error {
	terminal := f.Type == FrameEOF || f.Type == FrameError
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHubClosed
	}
	ch, ok := h.channels[channelName]
	if !ok {
		h.mu.Unlock()
		return &UnknownChannelError{Channel: channelName}
	}
	if f.Type == FrameError && (h.resumable || ch.seq < ch.recoverMax) {
		// A restartable session failed (or the re-run died inside the
		// recovery window). The error is not part of the durable stream, so
		// it takes no sequence number, is never persisted, and does not
		// mark the channel done — connected subscribers learn the session
		// failed, while the sequence stays resumable for the next restart.
		f.Channel = channelName
		data, err := EncodeFrame(f)
		if err != nil {
			h.mu.Unlock()
			return err
		}
		subs := make([]*Subscriber, 0, len(ch.subs))
		for s := range ch.subs {
			subs = append(subs, s)
		}
		h.mu.Unlock()
		for _, s := range subs {
			h.deliver(s, savedFrame{data: data, terminal: true})
		}
		return nil
	}
	if ch.seq < ch.recoverMax {
		// Recovery suppression: this frame was durably published before a
		// restart; the deterministic re-run regenerates it byte-identically,
		// so consume its sequence number without persisting or delivering.
		// Checked before the done guard so a channel whose terminal frame
		// was already durable replays cleanly.
		ch.seq++
		h.recovered.Add(1)
		h.mu.Unlock()
		return nil
	}
	if ch.done {
		h.mu.Unlock()
		return fmt.Errorf("netstream: channel %q already terminated", channelName)
	}
	ch.seq++
	f.Seq = ch.seq
	f.Channel = channelName
	data, err := EncodeFrame(f)
	if err != nil {
		ch.seq--
		h.mu.Unlock()
		return err
	}
	if ch.wal != nil && f.Type != FrameError {
		// Error frames are live-delivery only: keeping them out of the log
		// lets a restarted daemon resume a crashed run instead of replaying
		// its failure. Only eof is durably terminal.
		t0 := time.Now()
		werr := ch.wal.Append(ch.seq, f.Type == FrameEOF, data)
		h.reg.ObserveStage(obs.StageWALAppend, time.Since(t0))
		if werr != nil {
			ch.seq--
			h.mu.Unlock()
			return fmt.Errorf("netstream: durable publish on %q: %w", channelName, werr)
		}
	}
	sf := savedFrame{seq: ch.seq, data: data, terminal: terminal}
	if h.trackDelivery {
		sf.at = time.Now()
	}
	ch.ring = append(ch.ring, sf)
	if len(ch.ring) > h.replay {
		// Never evict the hello-equivalent head beyond capacity; plain
		// sliding eviction, oldest first.
		ch.ring = ch.ring[len(ch.ring)-h.replay:]
	}
	if terminal {
		ch.done = true
	}
	subs := make([]*Subscriber, 0, len(ch.subs))
	for s := range ch.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()

	for _, s := range subs {
		h.deliver(s, sf)
	}
	return nil
}

// deliver hands one frame to one subscriber under the backpressure
// policy.
func (h *Hub) deliver(s *Subscriber, sf savedFrame) {
	switch h.policy {
	case PolicyBlock:
		select {
		case s.ch <- sf:
			h.framesSent.Add(1)
		case <-s.closed:
		}
	case PolicyDropOldest:
		for {
			select {
			case s.ch <- sf:
				h.framesSent.Add(1)
				return
			case <-s.closed:
				return
			default:
			}
			select {
			case <-s.ch:
				s.droppedN.Add(1)
				h.framesDropped.Add(1)
			default:
			}
		}
	case PolicyDisconnectSlow:
		select {
		case s.ch <- sf:
			h.framesSent.Add(1)
		case <-s.closed:
		default:
			h.slowDisconnects.Add(1)
			s.fail(ErrSlowClient)
			h.unsubscribe(s)
		}
	}
}

// Subscriber is one client's bounded subscription to a channel.
type Subscriber struct {
	id        uint64
	hub       *Hub
	channel   string
	ch        chan savedFrame
	closed    chan struct{}
	once      sync.Once
	closeOnce sync.Once
	err       atomic.Value // error

	// Locally-buffered frames, delivered in order before any live frame:
	// the hello, then the durable log from the resume point, then ring
	// frames past the log. All are consumed by the single Recv goroutine.
	hello   []byte
	walIter *WALReader
	replay  []savedFrame
	// replayN mirrors len(replay) for the queue-depth gauge, which runs
	// on the snapshot goroutine while the Recv goroutine pops replay.
	replayN atomic.Int64

	droppedN atomic.Uint64
}

// Subscribe registers a subscriber on the named channel, resuming at
// fromSeq (0 = from the beginning). The returned subscriber already
// holds every retained frame with seq >= fromSeq; frames published after
// the call are queued into its bounded buffer under the hub's policy.
// Subscribe fails with ErrGap when fromSeq (or the beginning) is no
// longer retained.
func (h *Hub) Subscribe(channelName string, fromSeq uint64) (*Subscriber, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrHubClosed
	}
	ch, ok := h.channels[channelName]
	if !ok {
		return nil, &UnknownChannelError{Channel: channelName}
	}
	start := fromSeq
	if start == 0 {
		start = 1
	}
	lastAcked := uint64(0)
	if fromSeq > 0 {
		lastAcked = fromSeq - 1
	}
	var walIter *WALReader
	var walUntil uint64
	if ch.wal != nil {
		// Durable replay: the log is authoritative for everything it
		// retains; the ring only adds frames past the log (error frames).
		walMin, walMax := ch.wal.MinSeq(), ch.wal.MaxSeq()
		if walMax >= start {
			if walMin > start {
				return nil, &GapError{Channel: channelName, Requested: start, LastAcked: lastAcked, ServerMin: walMin}
			}
			iter, err := ch.wal.ReadFrom(start)
			if err != nil {
				return nil, err
			}
			walIter, walUntil = iter, walMax
		}
	} else {
		if len(ch.ring) > 0 && ch.ring[0].seq > start {
			return nil, &GapError{Channel: channelName, Requested: start, LastAcked: lastAcked, ServerMin: ch.ring[0].seq}
		}
		if len(ch.ring) == 0 && ch.seq >= start {
			return nil, &GapError{Channel: channelName, Requested: start, LastAcked: lastAcked}
		}
	}
	s := &Subscriber{
		id:      h.nextSubID.Add(1),
		hub:     h,
		channel: channelName,
		ch:      make(chan savedFrame, h.buffer),
		closed:  make(chan struct{}),
		hello:   ch.hello,
		walIter: walIter,
	}
	for _, sf := range ch.ring {
		if sf.seq >= start && sf.seq > walUntil {
			s.replay = append(s.replay, sf)
		}
	}
	s.replayN.Store(int64(len(s.replay)))
	if !ch.done {
		ch.subs[s] = struct{}{}
	}
	h.subscribers.Add(1)
	if h.perSubGauges {
		// The gauge closure runs on the snapshot goroutine while the Recv
		// goroutine consumes the replay backlog, so it reads the atomic
		// replayN mirror, never the replay slice header itself.
		h.reg.RegisterFunc(s.queueGaugeName(), func() uint64 {
			return uint64(len(s.ch)) + uint64(s.replayN.Load())
		})
		h.reg.RegisterFunc(s.droppedGaugeName(), s.droppedN.Load)
	}
	return s, nil
}

// unsubscribe removes s from its channel's live set.
func (h *Hub) unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.channels[s.channel]; ok {
		if _, live := ch.subs[s]; live {
			delete(ch.subs, s)
		}
	}
}

// ID returns the subscriber's hub-unique identifier.
func (s *Subscriber) ID() uint64 { return s.id }

func (s *Subscriber) queueGaugeName() string {
	return fmt.Sprintf("net_queue_depth_client_%d", s.id)
}

func (s *Subscriber) droppedGaugeName() string {
	return fmt.Sprintf("net_dropped_client_%d", s.id)
}

// Dropped returns how many frames the backpressure policy evicted from
// this subscriber's queue.
func (s *Subscriber) Dropped() uint64 { return s.droppedN.Load() }

// fail records the terminal error and stops deliveries.
func (s *Subscriber) fail(err error) {
	s.once.Do(func() {
		s.err.Store(err)
		close(s.closed)
	})
}

// Close detaches the subscriber (idempotent). Queued frames already
// buffered remain readable via Recv until drained.
func (s *Subscriber) Close() {
	s.fail(ErrHubClosed)
	s.closeOnce.Do(func() {
		// Close is issued by the Recv goroutine (the subscription owner),
		// so releasing the log iterator here does not race with pending.
		if s.walIter != nil {
			s.walIter.Close()
			s.walIter = nil
		}
		if s.hub.perSubGauges {
			// Long-lived registries must not accumulate dead per-client
			// gauges across subscriber lifetimes.
			s.hub.reg.Unregister(s.queueGaugeName())
			s.hub.reg.Unregister(s.droppedGaugeName())
		}
		s.hub.unsubscribe(s)
		s.hub.subscribers.Add(-1)
	})
}

// termErr returns the subscription's terminal error.
func (s *Subscriber) termErr() error {
	if e, ok := s.err.Load().(error); ok && e != nil {
		return e
	}
	return ErrHubClosed
}

// pending pops the next locally-buffered frame: the hello, then the
// durable log replay, then ring frames past the log. ok is false once
// only live frames remain. Data served from the log replay is valid
// until the next Recv call.
func (s *Subscriber) pending() (data []byte, terminal bool, ok bool, err error) {
	if s.hello != nil {
		data, s.hello = s.hello, nil
		return data, false, true, nil
	}
	for s.walIter != nil {
		rec, rerr := s.walIter.Next()
		if rerr == io.EOF {
			s.walIter.Close()
			s.walIter = nil
			break
		}
		if rerr != nil {
			s.walIter.Close()
			s.walIter = nil
			return nil, false, true, rerr
		}
		return rec.Payload, rec.Terminal, true, nil
	}
	if len(s.replay) > 0 {
		sf := s.replay[0]
		s.replay = s.replay[1:]
		s.replayN.Add(-1)
		s.observeDeliver(sf)
		return sf.data, sf.terminal, true, nil
	}
	return nil, false, false, nil
}

// Recv returns the next frame's encoded bytes and whether it is
// terminal (eof/error). After the subscription ends, Recv drains any
// still-buffered frames and then returns the terminal cause
// (ErrSlowClient under disconnect-slow, ErrHubClosed after Close or hub
// shutdown).
func (s *Subscriber) Recv() (data []byte, terminal bool, err error) {
	if data, terminal, ok, err := s.pending(); ok {
		return data, terminal, err
	}
	select {
	case sf := <-s.ch:
		s.observeDeliver(sf)
		return sf.data, sf.terminal, nil
	case <-s.closed:
		// Drain whatever was queued before the close.
		select {
		case sf := <-s.ch:
			s.observeDeliver(sf)
			return sf.data, sf.terminal, nil
		default:
			return nil, false, s.termErr()
		}
	}
}

// observeDeliver records the publish→pickup latency of a frame when
// the hub tracks delivery. Replayed frames count too: publish→pickup
// is the end-to-end delivery latency a subscriber experienced,
// whichever path the frame took (WAL-recovered frames carry no
// publish stamp and are skipped).
func (s *Subscriber) observeDeliver(sf savedFrame) {
	if !sf.at.IsZero() {
		s.hub.reg.ObserveStage(obs.StageDeliver, time.Since(sf.at))
	}
}

// RecvContext is Recv with cancellation: it additionally returns
// ctx.Err() once ctx is done (used by HTTP handlers tied to the request
// context).
func (s *Subscriber) RecvContext(ctx context.Context) (data []byte, terminal bool, err error) {
	if data, terminal, ok, err := s.pending(); ok {
		return data, terminal, err
	}
	select {
	case sf := <-s.ch:
		s.observeDeliver(sf)
		return sf.data, sf.terminal, nil
	case <-s.closed:
		select {
		case sf := <-s.ch:
			s.observeDeliver(sf)
			return sf.data, sf.terminal, nil
		default:
			return nil, false, s.termErr()
		}
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// Close shuts the hub down: every subscriber's subscription terminates
// (after draining its buffered frames) and future Publish/Subscribe
// calls fail with ErrHubClosed.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	var all []*Subscriber
	for _, ch := range h.channels {
		for s := range ch.subs {
			all = append(all, s)
		}
		ch.subs = make(map[*Subscriber]struct{})
	}
	h.mu.Unlock()
	for _, s := range all {
		s.fail(ErrHubClosed)
	}
}

// Seq returns the channel's current sequence number (frames published so
// far).
func (h *Hub) Seq(channelName string) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ch, ok := h.channels[channelName]; ok {
		return ch.seq
	}
	return 0
}
