package netstream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendN appends frames [from, to] with deterministic payloads.
func appendN(t *testing.T, w *WAL, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := w.Append(seq, false, walPayload(seq)); err != nil {
			t.Fatalf("append %d: %v", seq, err)
		}
	}
}

func walPayload(seq uint64) []byte {
	return []byte(fmt.Sprintf(`{"type":"tuple","seq":%d,"values":["v%d"]}`, seq, seq))
}

// drainReader reads every record from start.
func drainReader(t *testing.T, w *WAL, start uint64) []WALRecord {
	t.Helper()
	r, err := w.ReadFrom(start)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []WALRecord
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		rec.Payload = append([]byte(nil), rec.Payload...)
		out = append(out, rec)
	}
}

func TestWALAppendReadRoundTrip(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 100)
	if err := w.Append(101, true, []byte(`{"type":"eof"}`)); err != nil {
		t.Fatal(err)
	}
	if got, want := w.MinSeq(), uint64(1); got != want {
		t.Errorf("MinSeq = %d, want %d", got, want)
	}
	if got, want := w.MaxSeq(), uint64(101); got != want {
		t.Errorf("MaxSeq = %d, want %d", got, want)
	}
	if !w.Terminal() {
		t.Error("Terminal = false after terminal append")
	}
	recs := drainReader(t, w, 1)
	if len(recs) != 101 {
		t.Fatalf("read %d records, want 101", len(recs))
	}
	for i, rec := range recs[:100] {
		if rec.Seq != uint64(i+1) || rec.Terminal {
			t.Fatalf("record %d: seq %d terminal %v", i, rec.Seq, rec.Terminal)
		}
		if !bytes.Equal(rec.Payload, walPayload(rec.Seq)) {
			t.Fatalf("record %d payload mismatch", i)
		}
	}
	if !recs[100].Terminal {
		t.Error("last record not terminal")
	}
	// Mid-stream resume.
	tail := drainReader(t, w, 60)
	if len(tail) != 42 || tail[0].Seq != 60 {
		t.Fatalf("ReadFrom(60): %d records starting at %d", len(tail), tail[0].Seq)
	}
}

func TestWALSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 512, FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 512, FsyncEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.MaxSeq(); got != 50 {
		t.Fatalf("reopened MaxSeq = %d, want 50", got)
	}
	if w2.Segments() < 2 {
		t.Errorf("expected rotation with 512-byte segments, got %d segment(s)", w2.Segments())
	}
	// Appends continue seamlessly across the reopen.
	appendN(t, w2, 51, 80)
	recs := drainReader(t, w2, 1)
	if len(recs) != 80 {
		t.Fatalf("read %d records after reopen, want 80", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, rec.Seq)
		}
	}
}

// TestWALTornTailTruncation: a crash mid-append leaves a partial record;
// reopening drops exactly the torn tail and keeps every whole record.
func TestWALTornTailTruncation(t *testing.T) {
	for _, tear := range []int{1, 5, recHeaderLen, recHeaderLen + 3} {
		t.Run(fmt.Sprintf("tear=%d", tear), func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, w, 1, 10)
			w.Close()

			// Simulate the torn append: a prefix of record 11.
			full := AppendRecord(nil, 11, false, walPayload(11))
			seg := filepath.Join(dir, fmt.Sprintf("%020d.wal", 1))
			f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(full[:tear]); err != nil {
				t.Fatal(err)
			}
			f.Close()

			w2, err := OpenWAL(dir, WALOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if got := w2.MaxSeq(); got != 10 {
				t.Fatalf("MaxSeq after torn tail = %d, want 10", got)
			}
			if w2.TruncatedBytes() == 0 {
				t.Error("expected truncated bytes to be recorded")
			}
			// The same sequence can now be re-appended (recovery replays it).
			if err := w2.Append(11, false, walPayload(11)); err != nil {
				t.Fatalf("re-append after truncation: %v", err)
			}
			recs := drainReader(t, w2, 1)
			if len(recs) != 11 {
				t.Fatalf("read %d records, want 11", len(recs))
			}
		})
	}
}

// TestWALCorruptMiddleSegmentFails: corruption outside the torn tail of
// the last segment is an error, not a silent truncation.
func TestWALCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 40) // forces several segments
	if w.Segments() < 3 {
		t.Fatalf("need >=3 segments, got %d", w.Segments())
	}
	w.Close()

	// Flip a payload byte in the first segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenWAL(dir, WALOptions{SegmentBytes: 256}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("OpenWAL on corrupt middle segment = %v, want ErrWALCorrupt", err)
	}
}

func TestWALRetentionByBytes(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: 512, RetainBytes: 1500})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 200)
	if got := w.MinSeq(); got == 1 {
		t.Error("retention never dropped the oldest segment")
	}
	if got := w.SizeBytes(); got > 1500+512 {
		t.Errorf("retained %d bytes, budget 1500 (+1 active segment)", got)
	}
	// The retained range still reads back contiguously.
	min, max := w.MinSeq(), w.MaxSeq()
	recs := drainReader(t, w, min)
	if uint64(len(recs)) != max-min+1 {
		t.Fatalf("read %d records, want %d", len(recs), max-min+1)
	}
	// Reading past retention reports the gap.
	r, err := w.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); !errors.Is(err, ErrGap) {
		t.Fatalf("reading evicted seq 1 = %v, want ErrGap", err)
	}
}

func TestWALRetentionByAge(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: 512, RetainAge: time.Hour, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 40)
	before := w.Segments()
	now = now.Add(2 * time.Hour) // everything ages out
	appendN(t, w, 41, 80)        // rotations apply retention
	if w.Segments() >= before+3 {
		t.Errorf("age retention kept %d segments (was %d)", w.Segments(), before)
	}
	if w.MinSeq() == 1 {
		t.Error("age retention never dropped the oldest segment")
	}
}

// TestWALRetentionAgeClockStartsAtOpen is the restart-retention
// regression: segments recovered at OpenWAL must age out RetainAge
// after the reopen, not RetainAge after their file mtime. A long-idle
// session's first post-restart rotation previously mass-dropped the
// whole recovered log — exactly the replay window a resuming
// subscriber was about to ask for.
func TestWALRetentionAgeClockStartsAtOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 512, RetainAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 1, 50)
	if w.Segments() < 3 {
		t.Fatalf("need >=3 segments to make the drop observable, got %d", w.Segments())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The daemon was down for two days: every segment file's mtime is
	// far past RetainAge by the time it restarts.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-48 * time.Hour)
	for _, e := range entries {
		if err := os.Chtimes(filepath.Join(dir, e.Name()), old, old); err != nil {
			t.Fatal(err)
		}
	}

	w2, err := OpenWAL(dir, WALOptions{SegmentBytes: 512, RetainAge: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	// Enough appends to force rotations (and thus retention sweeps).
	appendN(t, w2, 51, 90)
	if got := w2.MinSeq(); got != 1 {
		t.Fatalf("first post-restart rotation dropped recovered segments: MinSeq = %d, want 1", got)
	}
	recs := drainReader(t, w2, 1)
	if len(recs) != 90 {
		t.Fatalf("read %d records after restart, want 90", len(recs))
	}
}

// TestWALBudgetSharedAcrossLogs: one tenant budget tracks the combined
// on-disk size of several logs, recovers its accounting across reopen,
// and releases a log's bytes when it detaches.
func TestWALBudgetSharedAcrossLogs(t *testing.T) {
	budget := NewWALBudget(0) // unlimited: track without enforcing
	dirA, dirB := t.TempDir(), t.TempDir()
	wa, err := OpenWAL(dirA, WALOptions{SegmentBytes: 512, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	wb, err := OpenWAL(dirB, WALOptions{SegmentBytes: 512, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, wa, 1, 40)
	appendN(t, wb, 1, 25)
	if got, want := budget.Used(), wa.SizeBytes()+wb.SizeBytes(); got != want {
		t.Fatalf("budget.Used = %d, want %d (sum of both logs)", got, want)
	}

	// Detach-then-reopen (the durable delete/recreate protocol): the
	// ledger must return to exactly the reopened on-disk size, not
	// double-count the recovered segments.
	wa.ReleaseBudget()
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	if got := budget.Used(); got != wb.SizeBytes() {
		t.Fatalf("after release: budget.Used = %d, want %d (only log B)", got, wb.SizeBytes())
	}
	wa2, err := OpenWAL(dirA, WALOptions{SegmentBytes: 512, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer wa2.Close()
	if got, want := budget.Used(), wa2.SizeBytes()+wb.SizeBytes(); got != want {
		t.Fatalf("after reopen: budget.Used = %d, want %d", got, want)
	}
	wb.ReleaseBudget()
	wb.Close()
	if got := budget.Used(); got != wa2.SizeBytes() {
		t.Fatalf("after releasing B: budget.Used = %d, want %d", got, wa2.SizeBytes())
	}
}

// TestWALBudgetEnforcedByRetention: when the shared total exceeds the
// budget's limit, the retention sweep drops a log's oldest closed
// segments even though its own RetainBytes is nowhere near exceeded.
func TestWALBudgetEnforcedByRetention(t *testing.T) {
	budget := NewWALBudget(1500)
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: 512, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 200)
	if got := w.MinSeq(); got == 1 {
		t.Error("budget retention never dropped the oldest segment")
	}
	// The sweep runs at rotation, so the ledger may briefly carry the
	// freshly rotated segment on top of the limit.
	if got := budget.Used(); got > 1500+512 {
		t.Errorf("budget.Used = %d, limit 1500 (+1 segment slack)", got)
	}
	// The retained range still reads back contiguously.
	min, max := w.MinSeq(), w.MaxSeq()
	recs := drainReader(t, w, min)
	if uint64(len(recs)) != max-min+1 {
		t.Fatalf("read %d records, want %d", len(recs), max-min+1)
	}
}

func TestWALFsyncBatching(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{FsyncEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 25)
	if got := w.Fsyncs(); got != 2 {
		t.Errorf("25 appends at FsyncEvery=10: %d fsyncs, want 2", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.Fsyncs(); got != 3 {
		t.Errorf("explicit Sync: %d fsyncs, want 3", got)
	}
	if err := w.Sync(); err != nil { // nothing dirty: no extra fsync
		t.Fatal(err)
	}
	if got := w.Fsyncs(); got != 3 {
		t.Errorf("redundant Sync issued an fsync (%d)", got)
	}
	// Terminal records force a sync.
	if err := w.Append(26, true, []byte("eof")); err != nil {
		t.Fatal(err)
	}
	if got := w.Fsyncs(); got != 4 {
		t.Errorf("terminal append: %d fsyncs, want 4", got)
	}
}

// TestWALResumeAtLaterSeq: a fresh WAL whose first append is not seq 1
// (hub resuming a crashed run whose retention already dropped the head).
func TestWALResumeAtLaterSeq(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(500, false, walPayload(500)); err != nil {
		t.Fatal(err)
	}
	if w.MinSeq() != 500 || w.MaxSeq() != 500 {
		t.Fatalf("min/max = %d/%d, want 500/500", w.MinSeq(), w.MaxSeq())
	}
	appendN(t, w, 501, 510)
	recs := drainReader(t, w, 500)
	if len(recs) != 11 {
		t.Fatalf("read %d records, want 11", len(recs))
	}
}

func TestWALRejectsOutOfOrderAppend(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 5)
	if err := w.Append(7, false, walPayload(7)); err == nil {
		t.Error("gap append accepted")
	}
	if err := w.Append(5, false, walPayload(5)); err == nil {
		t.Error("duplicate append accepted")
	}
}

// TestWALConcurrentReadDuringAppend: a reader created mid-run sees a
// consistent prefix while the writer keeps appending.
func TestWALConcurrentReadDuringAppend(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	appendN(t, w, 1, 100)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for seq := uint64(101); seq <= 300; seq++ {
			if err := w.Append(seq, false, walPayload(seq)); err != nil {
				t.Errorf("append %d: %v", seq, err)
				return
			}
		}
	}()
	recs := drainReader(t, w, 1)
	<-done
	if len(recs) < 100 {
		t.Fatalf("reader saw %d records, want >= 100", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, rec.Seq)
		}
	}
}
