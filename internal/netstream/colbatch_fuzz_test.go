package netstream

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"icewafl/internal/stream"
)

// fuzzSchema is the fixed schema both columnar fuzzers decode against.
func fuzzSchema() *stream.Schema {
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "sensor", Kind: stream.KindString},
	)
}

// fuzzBatchFrame builds one valid colbatch frame payload with n rows.
func fuzzBatchFrame(tb testing.TB, n int, seq uint64) []byte {
	tb.Helper()
	schema := fuzzSchema()
	base := time.Date(2021, 6, 1, 0, 0, 0, 123456789, time.UTC)
	wb := NewWireColumnBatch(schema.Len())
	for i := 0; i < n; i++ {
		vals := []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Second)),
			stream.Float(float64(i) + 0.5),
			stream.Str("s"),
		}
		if i%3 == 1 {
			vals[1] = stream.Null()
		}
		tu := stream.NewTuple(schema, vals)
		tu.ID = uint64(i + 1)
		tu.SubStream = i % 2
		tu.EventTime = base.Add(time.Duration(i) * time.Second)
		tu.Arrival = tu.EventTime.Add(time.Millisecond)
		wb.AppendTuple(tu)
	}
	payload, err := EncodeFrame(&Frame{Type: FrameColBatch, Channel: ChannelDirty, Seq: seq, Batch: wb})
	if err != nil {
		tb.Fatal(err)
	}
	return payload
}

// FuzzColumnarFrame checks the decode→encode→decode fixed point of the
// colbatch codec: any frame payload DecodeColumnBatch accepts must
// survive re-encoding through AppendTuple with byte-identical wire
// form and identical decoded tuples — i.e. one decode/encode round
// normalises, after which the codec is a fixed point.
func FuzzColumnarFrame(f *testing.F) {
	f.Add(fuzzBatchFrame(f, 0, 1))
	f.Add(fuzzBatchFrame(f, 1, 2))
	f.Add(fuzzBatchFrame(f, 7, 3))
	f.Add([]byte(`{"type":"colbatch","batch":{"count":0,"columns":[[],[],[]]}}`))
	f.Add([]byte(`{"type":"colbatch"}`))
	f.Add([]byte(`{"type":"tuple","tuple":{"id":1}}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		schema := fuzzSchema()
		fr, err := DecodeFrame(data)
		if err != nil || fr.Type != FrameColBatch {
			return
		}
		tuples, err := DecodeColumnBatch(fr.Batch, schema)
		if err != nil {
			return // malformed batches are rejected, that is the contract
		}
		if len(tuples) != fr.Batch.Count {
			t.Fatalf("decoded %d tuples from a batch of count %d", len(tuples), fr.Batch.Count)
		}
		// Re-encode the decoded rows and decode again: the tuples must be
		// identical.
		wb := NewWireColumnBatch(schema.Len())
		for _, tu := range tuples {
			wb.AppendTuple(tu)
		}
		again, err := DecodeColumnBatch(wb, schema)
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v", err)
		}
		if len(again) != len(tuples) {
			t.Fatalf("re-decode yielded %d tuples, want %d", len(again), len(tuples))
		}
		for i := range tuples {
			if !reflect.DeepEqual(EncodeTuple(again[i]), EncodeTuple(tuples[i])) {
				t.Fatalf("tuple %d changed across re-encode:\ngot  %+v\nwant %+v", i, EncodeTuple(again[i]), EncodeTuple(tuples[i]))
			}
		}
		// And the wire form itself is now a fixed point.
		wb2 := NewWireColumnBatch(schema.Len())
		for _, tu := range again {
			wb2.AppendTuple(tu)
		}
		if !reflect.DeepEqual(wb, wb2) {
			t.Fatalf("wire form not a fixed point:\nfirst  %+v\nsecond %+v", wb, wb2)
		}
	})
}

// FuzzColumnarTornFrame cuts a valid colbatch frame stream anywhere and
// appends arbitrary bytes: every frame fully contained in the intact
// prefix must decode exactly as the original, and whatever the reader
// makes of the torn tail must be a clean error or a structurally valid
// batch — never a panic, never a silently truncated one.
func FuzzColumnarTornFrame(f *testing.F) {
	f.Add(0, []byte{})
	f.Add(3, []byte{})
	f.Add(17, []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(64, []byte(`{"type":"colbatch","batch":{"count":2}}`))
	f.Add(1<<20, []byte("trailing garbage"))
	f.Fuzz(func(t *testing.T, cut int, tail []byte) {
		schema := fuzzSchema()
		var wire bytes.Buffer
		var framePayloads [][]byte
		hello, err := EncodeFrame(&Frame{Type: FrameHello, Channel: ChannelDirty, Schema: SchemaDocument(schema)})
		if err != nil {
			t.Fatal(err)
		}
		for i, payload := range [][]byte{hello, fuzzBatchFrame(t, 5, 1), fuzzBatchFrame(t, 3, 2)} {
			framePayloads = append(framePayloads, payload)
			if err := WriteFrame(&wire, payload); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
		}
		full := wire.Bytes()
		if cut < 0 {
			cut = -cut
		}
		cut %= len(full) + 1
		torn := append(append([]byte{}, full[:cut]...), tail...)

		// Count how many whole frames survive in the intact prefix.
		intact := 0
		for off := 0; intact < len(framePayloads); intact++ {
			end := off + 4 + len(framePayloads[intact])
			if end > cut {
				break
			}
			off = end
		}

		r := bytes.NewReader(torn)
		for i := 0; ; i++ {
			payload, err := ReadFrame(r)
			if err != nil {
				if i < intact {
					t.Fatalf("frame %d lost: intact prefix held %d frames, read error %v", i, intact, err)
				}
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return
				}
				// Any other error must come from the length guard, not a
				// panic or a short read gone unnoticed.
				return
			}
			if i < intact && !bytes.Equal(payload, framePayloads[i]) {
				t.Fatalf("frame %d corrupted by the cut:\ngot  %q\nwant %q", i, payload, framePayloads[i])
			}
			fr, err := DecodeFrame(payload)
			if err != nil {
				if i < intact {
					t.Fatalf("intact frame %d no longer decodes: %v", i, err)
				}
				continue
			}
			if fr.Type != FrameColBatch {
				continue
			}
			tuples, err := DecodeColumnBatch(fr.Batch, schema)
			if err != nil {
				if i < intact {
					t.Fatalf("intact batch frame %d rejected: %v", i, err)
				}
				continue
			}
			if len(tuples) != fr.Batch.Count {
				t.Fatalf("frame %d: decoded %d tuples from count %d", i, len(tuples), fr.Batch.Count)
			}
		}
	})
}
