package netstream

// Regression coverage for HTTP streaming out of a WAL-attached hub.
// Frames replayed from the durable log alias the WAL reader's internal
// buffer; the NDJSON writer must not mutate them in place (an append of
// the line terminator once clobbered the next record's length prefix,
// truncating every HTTP replay to a single frame).

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// walBackedServer publishes n tuple frames plus a terminal EOF through
// a WAL-attached hub and returns the server.
func walBackedServer(t *testing.T, n int) *Server {
	t.Helper()
	w, err := OpenWAL(t.TempDir(), WALOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(serverConfig(t, 1, 8))
	if err != nil {
		t.Fatal(err)
	}
	hub := srv.Hub()
	if err := hub.AttachWAL(ChannelDirty, w); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := hub.Publish(ChannelDirty, &Frame{Type: FrameTuple, Tuple: &WireTuple{ID: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Publish(ChannelDirty, &Frame{Type: FrameEOF}); err != nil {
		t.Fatal(err)
	}
	return srv
}

// streamLines drains one HTTP streaming response into its NDJSON lines
// (or SSE data lines).
func streamLines(t *testing.T, url string) []string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if line := sc.Text(); line != "" {
			lines = append(lines, line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestHTTPStreamReplaysWholeWAL: an NDJSON subscriber resuming inside
// the durable log must receive every retained frame through the
// terminal EOF, not just the first.
func TestHTTPStreamReplaysWholeWAL(t *testing.T) {
	const n = 500
	srv := walBackedServer(t, n)
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	lines := streamLines(t, ts.URL+"/stream?channel=dirty&from_seq=2")
	// hello + tuples 2..n + eof
	if want := 1 + (n - 1) + 1; len(lines) != want {
		t.Fatalf("got %d NDJSON lines, want %d (replay truncated?)", len(lines), want)
	}
	if !strings.Contains(lines[0], `"hello"`) {
		t.Errorf("first line is not the hello: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"seq":2`) {
		t.Errorf("replay does not start at from_seq: %s", lines[1])
	}
	if last := lines[len(lines)-1]; !strings.Contains(last, `"eof"`) {
		t.Errorf("replay does not end with the terminal frame: %s", last)
	}
}

// TestSSEStreamReplaysWholeWAL: the SSE encoding shares the replay path
// and must also deliver the full durable log.
func TestSSEStreamReplaysWholeWAL(t *testing.T) {
	const n = 200
	srv := walBackedServer(t, n)
	ts := httptest.NewServer(srv.HTTPHandler())
	defer ts.Close()

	lines := streamLines(t, ts.URL+"/sse?channel=dirty&from_seq=1")
	var frames int
	for _, l := range lines {
		if strings.HasPrefix(l, "data: ") {
			frames++
		}
	}
	// hello + tuples 1..n + eof
	if want := 1 + n + 1; frames != want {
		t.Fatalf("got %d SSE frames, want %d", frames, want)
	}
}
