package netstream

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"icewafl/internal/stream"
)

// TestColumnBatchRoundTrip: a batch survives the wire encoding exactly
// — IDs, substreams, nanosecond timestamps and every cell including
// NULL — and the two encoders (row-wise AppendTuple, column-major
// EncodeColumnBatch) produce the identical wire payload.
func TestColumnBatchRoundTrip(t *testing.T) {
	schema := wireSchema(t)
	base := time.Date(2021, 6, 1, 12, 0, 0, 987654321, time.UTC)
	batch := stream.NewColumnBatch(schema, 4)
	var rows []stream.Tuple
	for i := 0; i < 4; i++ {
		vals := []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Float(float64(i) + 0.25),
			stream.Str("s"),
		}
		if i == 2 {
			vals[1] = stream.Null()
			vals[2] = stream.Null()
		}
		tu := stream.NewTuple(schema, vals)
		tu.ID = uint64(i + 1)
		tu.SubStream = i % 2
		tu.EventTime = base.Add(time.Duration(i) * time.Minute)
		tu.Arrival = tu.EventTime.Add(17 * time.Millisecond)
		rows = append(rows, tu)
		if err := batch.AppendTuple(tu); err != nil {
			t.Fatal(err)
		}
	}

	colMajor := EncodeColumnBatch(batch)
	rowWise := NewWireColumnBatch(schema.Len())
	for _, tu := range rows {
		rowWise.AppendTuple(tu)
	}
	if !reflect.DeepEqual(colMajor, rowWise) {
		t.Fatalf("encoders disagree:\ncolumn-major %+v\nrow-wise     %+v", colMajor, rowWise)
	}

	decoded, err := DecodeColumnBatch(colMajor, schema)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "batch round trip", decoded, rows)

	// All-zero substreams omit the subs array entirely.
	zero := NewWireColumnBatch(schema.Len())
	flat := rows[0]
	flat.SubStream = 0
	zero.AppendTuple(flat)
	if zero.Subs != nil {
		t.Errorf("all-zero substreams encoded as %v, want omitted", zero.Subs)
	}
	payload, err := EncodeFrame(&Frame{Type: FrameColBatch, Batch: zero})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(payload, &raw); err != nil {
		t.Fatal(err)
	}
	if batchRaw, ok := raw["batch"].(map[string]any); !ok {
		t.Fatal("frame lost its batch payload")
	} else if _, present := batchRaw["subs"]; present {
		t.Error("subs array serialised despite being all zero")
	}
}

// TestDecodeColumnBatchValidation rejects structurally inconsistent
// batches instead of panicking or silently truncating.
func TestDecodeColumnBatchValidation(t *testing.T) {
	schema := wireSchema(t)
	ts := "2021-06-01T00:00:00Z"
	valid := func() *WireColumnBatch {
		return &WireColumnBatch{
			Count:    1,
			IDs:      []uint64{1},
			Events:   []string{ts},
			Arrivals: []string{ts},
			Columns:  [][]string{{ts}, {"1.5"}, {"x"}},
		}
	}
	if _, err := DecodeColumnBatch(valid(), schema); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	for name, mutate := range map[string]func(*WireColumnBatch){
		"nil":            func(wb *WireColumnBatch) { *wb = WireColumnBatch{Count: -1} },
		"short ids":      func(wb *WireColumnBatch) { wb.IDs = nil },
		"short events":   func(wb *WireColumnBatch) { wb.Events = nil },
		"short arrivals": func(wb *WireColumnBatch) { wb.Arrivals = nil },
		"bad subs":       func(wb *WireColumnBatch) { wb.Subs = []int{1, 2} },
		"missing column": func(wb *WireColumnBatch) { wb.Columns = wb.Columns[:2] },
		"ragged column":  func(wb *WireColumnBatch) { wb.Columns[1] = nil },
		"bad cell":       func(wb *WireColumnBatch) { wb.Columns[1][0] = "not-a-float" },
		"bad event time": func(wb *WireColumnBatch) { wb.Events[0] = "yesterday" },
		"bad arrival":    func(wb *WireColumnBatch) { wb.Arrivals[0] = "later" },
	} {
		wb := valid()
		mutate(wb)
		if _, err := DecodeColumnBatch(wb, schema); err == nil {
			t.Errorf("%s: malformed batch accepted", name)
		}
	}
	if _, err := DecodeColumnBatch(nil, schema); err == nil {
		t.Error("nil batch accepted")
	}
}

// columnarConfig is serverConfig with columnar serving enabled.
func columnarConfig(t *testing.T, seed int64, n, batch int) Config {
	t.Helper()
	cfg := serverConfig(t, seed, n)
	cfg.Columnar = true
	cfg.ColumnarBatch = batch
	return cfg
}

// rawDirtyFrameTypes subscribes raw and returns the type of every frame
// after the hello, so tests can assert the wire actually carries
// colbatch frames.
func rawDirtyFrameTypes(t *testing.T, addr string) []string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req, _ := json.Marshal(SubscribeRequest{Channel: ChannelDirty})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var types []string
	for {
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		payload, err := ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		if f.Type == FrameHello {
			continue
		}
		types = append(types, f.Type)
		if f.Type == FrameEOF || f.Type == FrameError {
			return types
		}
	}
}

// TestServerColumnarEquivalence: a columnar-serving daemon is
// indistinguishable from tuple-wise serving at the ClientSource level —
// byte-identical dirty tuples, clean tuples and log entries — while the
// wire itself carries colbatch frames (one per batch, not per tuple).
func TestServerColumnarEquivalence(t *testing.T) {
	const seed, n, batch = 4242, 500, 64
	refDirty, refClean, refLog := referenceRun(t, seed, n, 1)

	srv, tcpAddr, _ := startServer(t, columnarConfig(t, seed, n, batch))

	dirtyC, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer dirtyC.Stop()
	sameTuples(t, "columnar dirty", drainClient(t, dirtyC), refDirty)

	cleanC, err := Dial(tcpAddr, ChannelClean)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanC.Stop()
	sameTuples(t, "columnar clean", drainClient(t, cleanC), refClean)

	entries := readLogChannel(t, tcpAddr)
	if len(entries) != len(refLog.Entries) {
		t.Fatalf("log: got %d entries, want %d", len(entries), len(refLog.Entries))
	}
	for i := range entries {
		g, _ := json.Marshal(entries[i])
		w, _ := json.Marshal(refLog.Entries[i])
		if string(g) != string(w) {
			t.Fatalf("log entry %d differs:\ngot  %s\nwant %s", i, g, w)
		}
	}

	// The wire carries batches: every data frame on dirty is a colbatch,
	// and there are far fewer frames than tuples.
	types := rawDirtyFrameTypes(t, tcpAddr)
	batches := 0
	for i, ft := range types {
		switch ft {
		case FrameColBatch:
			batches++
		case FrameEOF:
			if i != len(types)-1 {
				t.Fatalf("eof frame mid-stream at %d", i)
			}
		default:
			t.Fatalf("frame %d on columnar dirty channel has type %q", i, ft)
		}
	}
	maxBatches := (len(refDirty) + batch - 1) / batch
	if batches == 0 || batches > maxBatches+1 {
		t.Errorf("dirty channel published %d colbatch frames for %d tuples (batch %d)", batches, len(refDirty), batch)
	}
	if got, want := srv.Hub().Seq(ChannelDirty), uint64(batches+1); got != want {
		t.Errorf("dirty channel seq = %d, want %d frames", got, want)
	}
}

// TestServerColumnarReorderFallback: with a reorder window the runner's
// batch face is hidden behind the reorder wrapper, so the server
// re-accumulates tuples into colbatch frames — the stream stays
// byte-identical to tuple-wise serving at the same window.
func TestServerColumnarReorderFallback(t *testing.T) {
	const seed, n, batch = 77, 300, 32
	refDirty, _, _ := referenceRun(t, seed, n, 8)

	cfg := columnarConfig(t, seed, n, batch)
	cfg.Reorder = 8
	_, tcpAddr, _ := startServer(t, cfg)

	dirtyC, err := Dial(tcpAddr, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer dirtyC.Stop()
	sameTuples(t, "columnar dirty (reorder)", drainClient(t, dirtyC), refDirty)

	for i, ft := range rawDirtyFrameTypes(t, tcpAddr) {
		if ft != FrameColBatch && ft != FrameEOF {
			t.Fatalf("frame %d has type %q, want colbatch frames under reorder too", i, ft)
		}
	}
}

// TestServerColumnarValidation: columnar serving composes with neither
// sharded nor checkpointed sessions.
func TestServerColumnarValidation(t *testing.T) {
	base := columnarConfig(t, 1, 10, 0)

	cfg := base
	cfg.Shards = 4
	cfg.ShardKey = "sensor"
	if _, err := NewServer(cfg); err == nil {
		t.Error("columnar + sharded accepted")
	}

	cfg = base
	cfg.WALDir = t.TempDir()
	cfg.CheckpointPath = cfg.WALDir + "/ck"
	if _, err := NewServer(cfg); err == nil {
		t.Error("columnar + checkpointed accepted")
	}

	// The default batch size is applied.
	srv, err := NewServer(base)
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.ColumnarBatch <= 0 {
		t.Errorf("default columnar batch not applied: %d", srv.cfg.ColumnarBatch)
	}
}

// TestServerColumnarWALReplayByteIdentical is the durable regression
// test: a columnar-served dirty channel persisted to the WAL and
// replayed by a restarted daemon (whose pipeline must not re-run) is
// byte-identical to tuple-wise serving of the same process.
func TestServerColumnarWALReplayByteIdentical(t *testing.T) {
	const seed, n, batch = 41, 200, 16
	walDir := t.TempDir()
	refDirty, _, _ := referenceRun(t, seed, n, 1)

	cfg := columnarConfig(t, seed, n, batch)
	cfg.WALDir = walDir
	srv1, addr1, _, stop1 := startStoppableServer(t, cfg)
	waitPipelineDone(t, srv1)
	if err := srv1.PipelineErr(); err != nil {
		t.Fatalf("columnar run failed: %v", err)
	}
	c1, err := Dial(addr1, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "columnar dirty before restart", drainClient(t, c1), refDirty)
	stop1()

	cfg2 := columnarConfig(t, seed, n, batch)
	cfg2.WALDir = walDir
	cfg2.NewSource = func() (stream.Source, error) {
		return nil, errors.New("pipeline must not re-run over a terminal wal")
	}
	srv2, addr2, _, _ := startStoppableServer(t, cfg2)
	waitPipelineDone(t, srv2)
	if err := srv2.PipelineErr(); err != nil {
		t.Fatalf("restart over terminal wal re-ran the pipeline: %v", err)
	}

	c2, err := Dial(addr2, ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	sameTuples(t, "columnar dirty replayed from wal", drainClient(t, c2), refDirty)

	// The replayed wire still carries colbatch frames, and a mid-stream
	// from_seq resume starts at a batch boundary.
	types := rawDirtyFrameTypes(t, addr2)
	for i, ft := range types {
		if ft != FrameColBatch && ft != FrameEOF {
			t.Fatalf("replayed frame %d has type %q", i, ft)
		}
	}
	mid := uint64(len(types) / 2)
	seqs := frameSeqs(t, addr2, ChannelDirty, mid)
	for i, s := range seqs {
		if s != mid+uint64(i) {
			t.Fatalf("resume out of order at %d: seq %d, want %d", i, s, mid+uint64(i))
		}
	}
}

// TestClientSourceColumnarReconnect: from_seq resume works at batch
// granularity — a ClientSource reading colbatch frames through a
// flapping proxy still observes the complete stream exactly once.
func TestClientSourceColumnarReconnect(t *testing.T) {
	const seed, n, batch = 99, 600, 16
	_, tcpAddr, _ := startServer(t, columnarConfig(t, seed, n, batch))
	proxy := newFlappingProxy(t, tcpAddr, 8<<10)

	client, err := Dial(proxy.ln.Addr().String(), ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Stop()
	retry := stream.NewRetrySource(client, stream.RetryPolicy{
		MaxRetries: 1000,
		Sleep:      func(time.Duration) {},
	})

	got, err := stream.Drain(retry)
	if err != nil {
		t.Fatalf("drain through flapping proxy: %v", err)
	}
	refDirty, _, _ := referenceRun(t, seed, n, 1)
	sameTuples(t, "reconnected columnar dirty", got, refDirty)
	if client.Reconnects() == 0 {
		t.Error("expected at least one reconnect through the flapping proxy")
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID <= got[i-1].ID {
			t.Fatalf("tuple IDs not strictly increasing at %d: %d after %d", i, got[i].ID, got[i-1].ID)
		}
	}
}
