// Package netstream turns a compiled pollution process into a networked
// service: cmd/icewafld runs the pipeline once and streams its three
// outputs — the dirty stream D^p, the clean stream D, and the pollution
// log — to any number of subscribed clients, over raw TCP
// (length-prefixed JSON frames) or HTTP (NDJSON chunks or SSE). A
// ClientSource implements stream.Source over the wire, so pipelines can
// chain across processes and compose with stream.RetrySource for
// reconnect-with-backoff.
//
// The wire format is deliberately simple and debuggable: every frame is
// one JSON object. On TCP each frame is preceded by a 4-byte big-endian
// payload length; on HTTP each frame is one newline-terminated line
// (NDJSON) or one SSE data event. The first frame of every subscription
// is a hello carrying the stream schema (the schemafile document); tuple
// and log frames follow in sequence order; an eof or error frame is
// terminal. Frames carry a per-channel sequence number so a reconnecting
// client can resume exactly where it left off (subscribe with from_seq),
// as long as the server still retains that frame in its replay ring.
package netstream

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// The three published channels.
const (
	// ChannelDirty carries the polluted stream D^p.
	ChannelDirty = "dirty"
	// ChannelClean carries the prepared clean stream D.
	ChannelClean = "clean"
	// ChannelLog carries the pollution log (ground truth).
	ChannelLog = "log"
)

// Channels lists every published channel.
func Channels() []string { return []string{ChannelDirty, ChannelClean, ChannelLog} }

// Frame types.
const (
	// FrameHello opens a subscription: it carries the stream schema.
	FrameHello = "hello"
	// FrameTuple carries one tuple (dirty or clean channel).
	FrameTuple = "tuple"
	// FrameLog carries one pollution-log entry (log channel).
	FrameLog = "log"
	// FrameColBatch carries a columnar micro-batch of tuples (dirty
	// channel in columnar serving mode). One frame consumes one sequence
	// number regardless of its row count; clients explode it back into
	// tuples locally.
	FrameColBatch = "colbatch"
	// FrameEOF is terminal: the pipeline completed normally.
	FrameEOF = "eof"
	// FrameError is terminal: the pipeline failed or the subscription
	// cannot be served (e.g. a replay gap after reconnecting too late).
	FrameError = "error"
)

// Frame is one wire message. Exactly one payload field is set, selected
// by Type.
type Frame struct {
	Type    string `json:"type"`
	Channel string `json:"channel,omitempty"`
	// Seq is the 1-based per-channel sequence number of data frames
	// (tuple/log). Hello and terminal frames carry the channel's current
	// sequence so clients can detect replay gaps.
	Seq    uint64               `json:"seq,omitempty"`
	Schema *schemafile.Document `json:"schema,omitempty"`
	Tuple  *WireTuple           `json:"tuple,omitempty"`
	Batch  *WireColumnBatch     `json:"batch,omitempty"`
	Entry  *core.Entry          `json:"entry,omitempty"`
	Error  string               `json:"error,omitempty"`
	// Gap is set on error frames rejecting a subscription whose from_seq
	// fell behind retention, so clients can map the rejection to a typed,
	// non-retryable GapError.
	Gap *GapInfo `json:"gap,omitempty"`
	// Quota is set on error frames rejecting a request that exceeded a
	// tenant quota or rate limit, so clients can map the rejection to a
	// typed QuotaError.
	Quota *QuotaInfo `json:"quota,omitempty"`
}

// GapInfo is the machine-readable payload of a replay-gap rejection.
type GapInfo struct {
	// Requested is the from_seq the client asked for.
	Requested uint64 `json:"requested"`
	// ServerMin is the oldest sequence the server still retains (0 when
	// it retains nothing).
	ServerMin uint64 `json:"server_min"`
}

// QuotaInfo is the machine-readable payload of a quota rejection.
type QuotaInfo struct {
	// Tenant is the tenant the quota applies to.
	Tenant string `json:"tenant"`
	// Resource names the exhausted resource: "sessions", "subscribers"
	// or "bytes_per_sec".
	Resource string `json:"resource"`
	// Limit is the configured ceiling; Used the consumption at rejection
	// time (for bytes_per_sec, Limit is the rate and Used the burst the
	// bucket could not cover).
	Limit uint64 `json:"limit"`
	Used  uint64 `json:"used"`
}

// WireTuple is the network rendering of a stream.Tuple. Values use the
// same textual encoding as CSV output (Value.String), so NULL and the
// empty string collapse — exactly as they do in the CLI's CSV files.
type WireTuple struct {
	ID      uint64   `json:"id"`
	Sub     int      `json:"sub,omitempty"`
	Event   string   `json:"event"`
	Arrival string   `json:"arrival"`
	Values  []string `json:"values"`
}

// wireTime is the tuple timestamp encoding: RFC3339 with nanoseconds, so
// delayed arrivals survive the round trip exactly.
const wireTime = time.RFC3339Nano

// EncodeTuple renders t for the wire.
func EncodeTuple(t stream.Tuple) *WireTuple {
	wt := &WireTuple{
		ID:      t.ID,
		Sub:     t.SubStream,
		Event:   t.EventTime.UTC().Format(wireTime),
		Arrival: t.Arrival.UTC().Format(wireTime),
		Values:  make([]string, t.Len()),
	}
	for i := 0; i < t.Len(); i++ {
		wt.Values[i] = t.At(i).String()
	}
	return wt
}

// DecodeTuple rebuilds a tuple from its wire rendering against schema.
func DecodeTuple(wt *WireTuple, schema *stream.Schema) (stream.Tuple, error) {
	if wt == nil {
		return stream.Tuple{}, fmt.Errorf("netstream: nil tuple payload")
	}
	if len(wt.Values) != schema.Len() {
		return stream.Tuple{}, fmt.Errorf("netstream: tuple %d has %d values, schema has %d", wt.ID, len(wt.Values), schema.Len())
	}
	values := make([]stream.Value, schema.Len())
	for i := range wt.Values {
		v, err := stream.ParseValue(wt.Values[i], schema.Field(i).Kind)
		if err != nil {
			return stream.Tuple{}, fmt.Errorf("netstream: tuple %d attr %q: %w", wt.ID, schema.Field(i).Name, err)
		}
		values[i] = v
	}
	t := stream.NewTuple(schema, values)
	t.ID = wt.ID
	t.SubStream = wt.Sub
	var err error
	if t.EventTime, err = time.Parse(wireTime, wt.Event); err != nil {
		return stream.Tuple{}, fmt.Errorf("netstream: tuple %d event time: %w", wt.ID, err)
	}
	if t.Arrival, err = time.Parse(wireTime, wt.Arrival); err != nil {
		return stream.Tuple{}, fmt.Errorf("netstream: tuple %d arrival: %w", wt.ID, err)
	}
	return t, nil
}

// WireColumnBatch is the network rendering of a columnar micro-batch:
// the payload of a colbatch frame. It is column-major — Columns[c][r]
// is attribute c of row r — with per-row metadata in parallel arrays,
// all using the same textual encodings as WireTuple (Value.String for
// cells, RFC3339Nano UTC for timestamps). Subs is omitted entirely when
// every row is on sub-stream 0, mirroring WireTuple's omitempty Sub.
type WireColumnBatch struct {
	Count    int        `json:"count"`
	IDs      []uint64   `json:"ids"`
	Subs     []int      `json:"subs,omitempty"`
	Events   []string   `json:"events"`
	Arrivals []string   `json:"arrivals"`
	Columns  [][]string `json:"columns"`
}

// NewWireColumnBatch returns an empty batch for a schema of the given
// width, ready for AppendTuple.
func NewWireColumnBatch(width int) *WireColumnBatch {
	return &WireColumnBatch{Columns: make([][]string, width)}
}

// AppendTuple appends t as one row. The tuple's width must match the
// batch width the caller constructed it with.
func (wb *WireColumnBatch) AppendTuple(t stream.Tuple) {
	wb.IDs = append(wb.IDs, t.ID)
	if wb.Subs != nil || t.SubStream != 0 {
		// Backfill zeros for rows appended before the first non-zero sub.
		for len(wb.Subs) < wb.Count {
			wb.Subs = append(wb.Subs, 0)
		}
		wb.Subs = append(wb.Subs, t.SubStream)
	}
	wb.Events = append(wb.Events, t.EventTime.UTC().Format(wireTime))
	wb.Arrivals = append(wb.Arrivals, t.Arrival.UTC().Format(wireTime))
	for c := 0; c < t.Len(); c++ {
		wb.Columns[c] = append(wb.Columns[c], t.At(c).String())
	}
	wb.Count++
}

// Reset empties the batch for reuse, keeping its backing arrays.
func (wb *WireColumnBatch) Reset() {
	wb.Count = 0
	wb.IDs = wb.IDs[:0]
	wb.Subs = nil
	wb.Events = wb.Events[:0]
	wb.Arrivals = wb.Arrivals[:0]
	for c := range wb.Columns {
		wb.Columns[c] = wb.Columns[c][:0]
	}
}

// EncodeColumnBatch renders every row of b for the wire without
// materialising per-row tuples: metadata copies straight off the
// batch's parallel arrays and cells render column-major. The metadata
// slices are copied, not aliased, so the caller may Reset and reuse b
// after the frame is published.
func EncodeColumnBatch(b *stream.ColumnBatch) *WireColumnBatch {
	n := b.Len()
	wb := &WireColumnBatch{
		Count:    n,
		IDs:      append([]uint64(nil), b.IDs()...),
		Events:   make([]string, n),
		Arrivals: make([]string, n),
		Columns:  make([][]string, b.Schema().Len()),
	}
	for _, sub := range b.SubStreams() {
		if sub != 0 {
			wb.Subs = make([]int, n)
			for r, s := range b.SubStreams() {
				wb.Subs[r] = int(s)
			}
			break
		}
	}
	events, arrivals := b.EventTimes(), b.Arrivals()
	for r := 0; r < n; r++ {
		wb.Events[r] = events[r].UTC().Format(wireTime)
		wb.Arrivals[r] = arrivals[r].UTC().Format(wireTime)
	}
	for c := range wb.Columns {
		col := make([]string, n)
		for r := 0; r < n; r++ {
			col[r] = b.Value(r, c).String()
		}
		wb.Columns[c] = col
	}
	return wb
}

// DecodeColumnBatch rebuilds the batch's rows as tuples against schema,
// in row order. Each row decodes through the same parsers as
// DecodeTuple, so a colbatch frame and the equivalent run of tuple
// frames produce byte-identical tuples.
func DecodeColumnBatch(wb *WireColumnBatch, schema *stream.Schema) ([]stream.Tuple, error) {
	if wb == nil {
		return nil, fmt.Errorf("netstream: nil column batch payload")
	}
	if wb.Count < 0 {
		return nil, fmt.Errorf("netstream: column batch has negative count %d", wb.Count)
	}
	if len(wb.IDs) != wb.Count || len(wb.Events) != wb.Count || len(wb.Arrivals) != wb.Count {
		return nil, fmt.Errorf("netstream: column batch metadata arrays disagree with count %d", wb.Count)
	}
	if wb.Subs != nil && len(wb.Subs) != wb.Count {
		return nil, fmt.Errorf("netstream: column batch has %d subs for %d rows", len(wb.Subs), wb.Count)
	}
	if len(wb.Columns) != schema.Len() {
		return nil, fmt.Errorf("netstream: column batch has %d columns, schema has %d", len(wb.Columns), schema.Len())
	}
	for c := range wb.Columns {
		if len(wb.Columns[c]) != wb.Count {
			return nil, fmt.Errorf("netstream: column batch column %q has %d rows, count is %d", schema.Field(c).Name, len(wb.Columns[c]), wb.Count)
		}
	}
	tuples := make([]stream.Tuple, 0, wb.Count)
	wt := WireTuple{Values: make([]string, schema.Len())}
	for r := 0; r < wb.Count; r++ {
		wt.ID = wb.IDs[r]
		wt.Sub = 0
		if wb.Subs != nil {
			wt.Sub = wb.Subs[r]
		}
		wt.Event = wb.Events[r]
		wt.Arrival = wb.Arrivals[r]
		for c := range wb.Columns {
			wt.Values[c] = wb.Columns[c][r]
		}
		t, err := DecodeTuple(&wt, schema)
		if err != nil {
			return nil, fmt.Errorf("netstream: column batch row %d: %w", r, err)
		}
		tuples = append(tuples, t)
	}
	return tuples, nil
}

// SchemaDocument renders schema as the wire schemafile document carried
// by hello frames.
func SchemaDocument(schema *stream.Schema) *schemafile.Document {
	doc := &schemafile.Document{Timestamp: schema.Timestamp()}
	for _, f := range schema.Fields() {
		doc.Fields = append(doc.Fields, schemafile.Field{Name: f.Name, Kind: f.Kind.String()})
	}
	return doc
}

// SchemaFromDocument rebuilds the stream schema from a hello payload.
func SchemaFromDocument(doc *schemafile.Document) (*stream.Schema, error) {
	if doc == nil {
		return nil, fmt.Errorf("netstream: hello frame carries no schema")
	}
	fields := make([]stream.Field, 0, len(doc.Fields))
	for _, fd := range doc.Fields {
		kind, err := stream.ParseKind(fd.Kind)
		if err != nil {
			return nil, fmt.Errorf("netstream: schema field %q: %w", fd.Name, err)
		}
		fields = append(fields, stream.Field{Name: fd.Name, Kind: kind})
	}
	return stream.NewSchema(doc.Timestamp, fields...)
}

// SubscribeRequest is the client's opening message on a TCP connection
// (one length-prefixed JSON frame). FromSeq selects where delivery
// starts: 0 means from the beginning of the channel, n > 0 resumes with
// the frame whose sequence number is n.
type SubscribeRequest struct {
	Channel string `json:"channel"`
	FromSeq uint64 `json:"from_seq,omitempty"`
}

// MaxFrameBytes bounds a single frame (tuples are small; this is a
// defence against corrupt or hostile length prefixes).
const MaxFrameBytes = 16 << 20

// WriteFrame writes one length-prefixed payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("netstream: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("netstream: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// EncodeFrame marshals f.
func EncodeFrame(f *Frame) ([]byte, error) { return json.Marshal(f) }

// DecodeFrame unmarshals one frame payload.
func DecodeFrame(payload []byte) (*Frame, error) {
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("netstream: decode frame: %w", err)
	}
	return &f, nil
}
