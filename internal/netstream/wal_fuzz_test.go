package netstream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord checks the decode→encode→decode fixed point of the WAL
// record codec: any buffer DecodeRecord accepts must re-encode to the
// identical bytes and decode back to the identical record.
func FuzzWALRecord(f *testing.F) {
	f.Add(AppendRecord(nil, 1, false, []byte(`{"type":"tuple","seq":1}`)))
	f.Add(AppendRecord(nil, 42, true, []byte(`{"type":"eof"}`)))
	f.Add(AppendRecord(nil, 1<<40, false, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrWALCorrupt", err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		enc := AppendRecord(nil, rec.Seq, rec.Terminal, rec.Payload)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", enc, data[:n])
		}
		rec2, n2, err := DecodeRecord(enc)
		if err != nil || n2 != n {
			t.Fatalf("re-decode: n=%d err=%v", n2, err)
		}
		if rec2.Seq != rec.Seq || rec2.Terminal != rec.Terminal || !bytes.Equal(rec2.Payload, rec.Payload) {
			t.Fatal("re-decode record mismatch")
		}
	})
}

// FuzzWALTornTail appends an arbitrary tail to a valid segment and
// checks OpenWAL always recovers: the valid prefix survives intact and
// the log accepts the next contiguous append.
func FuzzWALTornTail(f *testing.F) {
	full := AppendRecord(nil, 4, false, []byte("next"))
	f.Add([]byte{})
	f.Add(full[:1])
	f.Add(full[:len(full)-1])
	f.Add(full)
	f.Add([]byte("garbage that is not a record"))
	f.Fuzz(func(t *testing.T, tail []byte) {
		dir := t.TempDir()
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for seq := uint64(1); seq <= 3; seq++ {
			if err := w.Append(seq, false, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
				t.Fatal(err)
			}
		}
		w.Close()

		seg := filepath.Join(dir, fmt.Sprintf("%020d.wal", 1))
		fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fh.Write(tail); err != nil {
			t.Fatal(err)
		}
		fh.Close()

		w2, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("OpenWAL after torn tail %x: %v", tail, err)
		}
		defer w2.Close()
		maxSeq := w2.MaxSeq()
		// The tail may itself contain valid contiguous records (the fuzzer
		// can synthesize record 4, 5, ...); anything else must be dropped
		// down to the last valid record.
		if maxSeq < 3 {
			t.Fatalf("valid prefix lost: MaxSeq=%d", maxSeq)
		}
		// The surviving prefix reads back intact.
		r, err := w2.ReadFrom(1)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for {
			rec, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("read after recovery: %v", err)
			}
			got++
			if rec.Seq != got {
				t.Fatalf("seq %d at position %d", rec.Seq, got)
			}
			if rec.Seq <= 3 && !bytes.Equal(rec.Payload, []byte(fmt.Sprintf("payload-%d", rec.Seq))) {
				t.Fatalf("payload %d corrupted", rec.Seq)
			}
		}
		if got != maxSeq {
			t.Fatalf("read %d records, MaxSeq says %d", got, maxSeq)
		}
		// And the log accepts the next contiguous append.
		if err := w2.Append(maxSeq+1, false, []byte("resume")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	})
}
