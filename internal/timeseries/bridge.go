package timeseries

import (
	"fmt"
	"math"

	"icewafl/internal/stream"
)

// FromTuples extracts one numeric attribute of a tuple stream as a
// Series, mapping NULL (and non-numeric) values to NaN so that FFill can
// impute them — the bridge the forecasting experiment uses to pull NO2
// out of the air-quality stream.
func FromTuples(tuples []stream.Tuple, attr string) (*Series, error) {
	if len(tuples) == 0 {
		return &Series{}, nil
	}
	if !tuples[0].Schema().Has(attr) {
		return nil, fmt.Errorf("timeseries: attribute %q not in schema", attr)
	}
	s := &Series{}
	for _, t := range tuples {
		ts, ok := t.Timestamp()
		if !ok {
			ts = t.EventTime
		}
		v, _ := t.Get(attr)
		f, isNum := v.AsFloat()
		if !isNum {
			f = math.NaN()
		}
		s.Times = append(s.Times, ts)
		s.Values = append(s.Values, f)
	}
	return s, nil
}

// ApplyToTuples writes the series values back into the named attribute of
// the tuples (positionally; len(s) must equal len(tuples)). NaN becomes
// NULL.
func ApplyToTuples(tuples []stream.Tuple, attr string, s *Series) error {
	if len(tuples) != s.Len() {
		return fmt.Errorf("timeseries: %d tuples vs %d series points", len(tuples), s.Len())
	}
	if len(tuples) == 0 {
		return nil
	}
	if !tuples[0].Schema().Has(attr) {
		return fmt.Errorf("timeseries: attribute %q not in schema", attr)
	}
	for i := range tuples {
		if math.IsNaN(s.Values[i]) {
			tuples[i].Set(attr, stream.Null())
			continue
		}
		tuples[i].Set(attr, stream.Float(s.Values[i]))
	}
	return nil
}
