package timeseries

import (
	"math"
	"testing"
	"time"
)

func hourly(start time.Time, values []float64) *Series {
	times := make([]time.Time, len(values))
	for i := range values {
		times[i] = start.Add(time.Duration(i) * time.Hour)
	}
	return New(times, values)
}

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	New([]time.Time{t0}, []float64{1, 2})
}

func TestCloneAndSlice(t *testing.T) {
	s := hourly(t0, []float64{1, 2, 3, 4})
	c := s.Clone()
	c.Values[0] = 99
	if s.Values[0] != 1 {
		t.Fatal("clone shares storage")
	}
	sl := s.Slice(1, 3)
	if sl.Len() != 2 || sl.Values[0] != 2 || sl.Values[1] != 3 {
		t.Fatalf("slice %v", sl.Values)
	}
	sl.Values[0] = -1
	if s.Values[1] != 2 {
		t.Fatal("slice shares storage")
	}
}

func TestFFill(t *testing.T) {
	nan := math.NaN()
	s := hourly(t0, []float64{nan, nan, 3, nan, 5, nan})
	if s.MissingCount() != 4 {
		t.Fatalf("missing %d", s.MissingCount())
	}
	filled := s.FFill()
	if filled != 4 {
		t.Fatalf("filled %d", filled)
	}
	want := []float64{3, 3, 3, 3, 5, 5}
	for i, v := range want {
		if s.Values[i] != v {
			t.Fatalf("ffill: %v, want %v", s.Values, want)
		}
	}
	if s.MissingCount() != 0 {
		t.Fatal("missing values remain")
	}
}

func TestFFillAllMissing(t *testing.T) {
	s := hourly(t0, []float64{math.NaN(), math.NaN()})
	if filled := s.FFill(); filled != 0 {
		t.Fatalf("all-NaN series filled %d values", filled)
	}
	if s.MissingCount() != 2 {
		t.Fatal("all-NaN series should stay missing")
	}
}

func TestFFillNoMissing(t *testing.T) {
	s := hourly(t0, []float64{1, 2, 3})
	if filled := s.FFill(); filled != 0 {
		t.Fatalf("filled %d in complete series", filled)
	}
}

func TestIndexAtOrAfter(t *testing.T) {
	s := hourly(t0, []float64{1, 2, 3, 4})
	if i := s.IndexAtOrAfter(t0); i != 0 {
		t.Fatalf("at start: %d", i)
	}
	if i := s.IndexAtOrAfter(t0.Add(90 * time.Minute)); i != 2 {
		t.Fatalf("between: %d", i)
	}
	if i := s.IndexAtOrAfter(t0.Add(100 * time.Hour)); i != 4 {
		t.Fatalf("past end: %d", i)
	}
}

func TestResample(t *testing.T) {
	// 15-minute data resampled to the hour.
	times := make([]time.Time, 8)
	values := make([]float64, 8)
	for i := range times {
		times[i] = t0.Add(time.Duration(i) * 15 * time.Minute)
		values[i] = float64(i)
	}
	s := New(times, values)
	r := s.Resample(time.Hour)
	if r.Len() != 2 {
		t.Fatalf("resample length %d", r.Len())
	}
	if r.Values[0] != 1.5 || r.Values[1] != 5.5 {
		t.Fatalf("resampled values %v", r.Values)
	}
	if !r.Times[0].Equal(t0) || !r.Times[1].Equal(t0.Add(time.Hour)) {
		t.Fatalf("resampled times %v", r.Times)
	}
}

func TestResampleSkipsNaN(t *testing.T) {
	s := New(
		[]time.Time{t0, t0.Add(15 * time.Minute)},
		[]float64{math.NaN(), 4},
	)
	r := s.Resample(time.Hour)
	if r.Len() != 1 || r.Values[0] != 4 {
		t.Fatalf("NaN handling: %v", r.Values)
	}
}

func TestResampleDegenerate(t *testing.T) {
	s := hourly(t0, []float64{1, 2})
	if r := s.Resample(0); r.Len() != 2 {
		t.Fatal("non-positive width should clone")
	}
	empty := &Series{}
	if r := empty.Resample(time.Hour); r.Len() != 0 {
		t.Fatal("empty resample")
	}
}

func TestSinCosEncodings(t *testing.T) {
	sin, cos := HourSinCos(time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	if math.Abs(sin) > 1e-9 || math.Abs(cos-1) > 1e-9 {
		t.Fatalf("midnight encoding %g %g", sin, cos)
	}
	sin, cos = HourSinCos(time.Date(2020, 1, 1, 6, 0, 0, 0, time.UTC))
	if math.Abs(sin-1) > 1e-9 || math.Abs(cos) > 1e-9 {
		t.Fatalf("6am encoding %g %g", sin, cos)
	}
	sin, cos = MonthSinCos(time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC))
	if math.Abs(sin) > 1e-9 || math.Abs(cos-1) > 1e-9 {
		t.Fatalf("january encoding %g %g", sin, cos)
	}
	sin, cos = MonthSinCos(time.Date(2020, 4, 15, 0, 0, 0, 0, time.UTC))
	if math.Abs(sin-1) > 1e-9 || math.Abs(cos) > 1e-9 {
		t.Fatalf("april encoding %g %g", sin, cos)
	}
}

func TestSplitTable2(t *testing.T) {
	// Two full non-leap years of hourly data (2021, 2022).
	start := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 2 * 365 * 24
	values := make([]float64, n)
	s := New(nil, nil)
	for i := 0; i < n; i++ {
		s.Times = append(s.Times, start.Add(time.Duration(i)*time.Hour))
	}
	s.Values = values
	splits, err := Split(s, 12*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// D_train: first year minus 12 h; D_valid: those 12 h; D_eval: the
	// last year (the boundary sample at end-1y is included, hence +1).
	if splits.Train.Len() != 365*24-12 {
		t.Fatalf("train len %d", splits.Train.Len())
	}
	if splits.Valid.Len() != 12 {
		t.Fatalf("valid len %d", splits.Valid.Len())
	}
	if splits.Eval.Len() != 365*24+1 {
		t.Fatalf("eval len %d", splits.Eval.Len())
	}
	// Boundaries align.
	if !splits.Valid.Times[0].Equal(splits.TrainEnd) {
		t.Fatal("valid does not start at train end")
	}
	if !splits.Eval.Times[0].Equal(splits.EvalStart) {
		t.Fatal("eval does not start at eval start")
	}
}

func TestSplitTooShort(t *testing.T) {
	s := hourly(t0, make([]float64, 100))
	if _, err := Split(s, 12*time.Hour); err == nil {
		t.Fatal("sub-year series split accepted")
	}
	if _, err := Split(&Series{}, time.Hour); err == nil {
		t.Fatal("empty series split accepted")
	}
}

func TestTimeSeriesCV(t *testing.T) {
	folds, err := TimeSeriesCV(120, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	testSize := 120 / 6
	for i, f := range folds {
		if f.TestEnd-f.TestStart != testSize {
			t.Fatalf("fold %d test size %d", i, f.TestEnd-f.TestStart)
		}
		if f.TrainEnd != f.TestStart {
			t.Fatalf("fold %d gap between train and test", i)
		}
		if i > 0 && folds[i-1].TestEnd != f.TestStart {
			t.Fatalf("folds %d/%d not contiguous", i-1, i)
		}
	}
	if folds[4].TestEnd != 120 {
		t.Fatalf("last fold ends at %d", folds[4].TestEnd)
	}
	// Training sets expand.
	for i := 1; i < len(folds); i++ {
		if folds[i].TrainEnd <= folds[i-1].TrainEnd {
			t.Fatal("training windows do not expand")
		}
	}
}

func TestTimeSeriesCVErrors(t *testing.T) {
	if _, err := TimeSeriesCV(100, 1); err == nil {
		t.Error("1 split accepted")
	}
	if _, err := TimeSeriesCV(3, 5); err == nil {
		t.Error("tiny series accepted")
	}
}
