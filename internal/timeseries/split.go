package timeseries

import (
	"fmt"
	"time"
)

// Splits holds the Table 2 data splits for one region's stream D_r:
//
//	D_train — 1st year of D_r minus the last 12 h
//	D_valid — last 12 h of the 1st year of D_r
//	D_eval  — last year of D_r
//
// D_scale and D_noise are polluted variants of D_eval and are produced by
// the pollution pipelines, not by this package.
type Splits struct {
	Train *Series
	Valid *Series
	Eval  *Series
	// TrainEnd, ValidEnd and EvalStart record the split boundaries.
	TrainEnd, ValidEnd, EvalStart time.Time
}

// Split cuts the Table 2 splits out of a series that spans several years
// of data, hourly or finer. horizon is the forecast horizon (the paper's
// 12 h) that separates D_train from D_valid.
func Split(s *Series, horizon time.Duration) (*Splits, error) {
	if s.Len() < 3 {
		return nil, fmt.Errorf("timeseries: series too short to split (%d points)", s.Len())
	}
	start := s.Times[0]
	end := s.Times[s.Len()-1]
	yearOne := start.AddDate(1, 0, 0)
	if !end.After(yearOne) {
		return nil, fmt.Errorf("timeseries: series spans less than a year (%s .. %s)", start, end)
	}
	validStart := yearOne.Add(-horizon)
	evalStart := end.AddDate(-1, 0, 0)

	iValid := s.IndexAtOrAfter(validStart)
	iYear := s.IndexAtOrAfter(yearOne)
	iEval := s.IndexAtOrAfter(evalStart)
	if iValid == 0 || iValid >= iYear || iEval >= s.Len() {
		return nil, fmt.Errorf("timeseries: degenerate split (train end %d, valid end %d, eval start %d)", iValid, iYear, iEval)
	}
	return &Splits{
		Train:     s.Slice(0, iValid),
		Valid:     s.Slice(iValid, iYear),
		Eval:      s.Slice(iEval, s.Len()),
		TrainEnd:  validStart,
		ValidEnd:  yearOne,
		EvalStart: evalStart,
	}, nil
}

// CVFold is one fold of a time-series cross validation: train on an
// expanding prefix, test on the window right after it.
type CVFold struct {
	TrainEnd  int // exclusive
	TestStart int // == TrainEnd
	TestEnd   int // exclusive
}

// TimeSeriesCV reproduces scikit-learn's TimeSeriesSplit with nSplits
// folds over n observations: fold k trains on the first
// testSize·(k+1)+remainder observations and tests on the next testSize.
func TimeSeriesCV(n, nSplits int) ([]CVFold, error) {
	if nSplits < 2 {
		return nil, fmt.Errorf("timeseries: need at least 2 splits, got %d", nSplits)
	}
	testSize := n / (nSplits + 1)
	if testSize < 1 {
		return nil, fmt.Errorf("timeseries: %d observations cannot support %d splits", n, nSplits)
	}
	folds := make([]CVFold, 0, nSplits)
	for k := 0; k < nSplits; k++ {
		testEnd := n - (nSplits-1-k)*testSize
		testStart := testEnd - testSize
		folds = append(folds, CVFold{TrainEnd: testStart, TestStart: testStart, TestEnd: testEnd})
	}
	return folds, nil
}
