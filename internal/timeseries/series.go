// Package timeseries provides the time-series utilities the forecasting
// experiment relies on: a series container, forward/backward fill
// imputation (the pandas ffill step of §3.2.1), resampling to a coarser
// granularity (the wearable HRTable re-sampling of §3), cyclical
// sine/cosine time encodings (ARIMAX inputs), and the Table 2 data
// splits.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Series is a univariate time series: parallel slices of timestamps and
// values, ordered by time. NaN marks missing values.
type Series struct {
	Times  []time.Time
	Values []float64
}

// New returns a series over the given parallel slices. It panics on
// length mismatch (a programming error in the caller).
func New(times []time.Time, values []float64) *Series {
	if len(times) != len(values) {
		panic(fmt.Sprintf("timeseries: %d times vs %d values", len(times), len(values)))
	}
	return &Series{Times: times, Values: values}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Values) }

// Clone deep-copies the series.
func (s *Series) Clone() *Series {
	return &Series{
		Times:  append([]time.Time(nil), s.Times...),
		Values: append([]float64(nil), s.Values...),
	}
}

// Slice returns the sub-series [i, j) sharing no storage with s.
func (s *Series) Slice(i, j int) *Series {
	return &Series{
		Times:  append([]time.Time(nil), s.Times[i:j]...),
		Values: append([]float64(nil), s.Values[i:j]...),
	}
}

// MissingCount returns the number of NaN values.
func (s *Series) MissingCount() int {
	n := 0
	for _, v := range s.Values {
		if math.IsNaN(v) {
			n++
		}
	}
	return n
}

// FFill forward-fills missing values in place and then backward-fills any
// leading NaNs, mirroring the paper's pandas ffill imputation. It reports
// how many values were filled.
func (s *Series) FFill() int {
	filled := 0
	last := math.NaN()
	for i, v := range s.Values {
		if math.IsNaN(v) {
			if !math.IsNaN(last) {
				s.Values[i] = last
				filled++
			}
			continue
		}
		last = v
	}
	// Backward fill the leading gap, if any.
	next := math.NaN()
	for i := len(s.Values) - 1; i >= 0; i-- {
		v := s.Values[i]
		if math.IsNaN(v) {
			if !math.IsNaN(next) {
				s.Values[i] = next
				filled++
			}
			continue
		}
		next = v
	}
	return filled
}

// IndexAtOrAfter returns the first index whose timestamp is not before t,
// or Len() if every observation precedes t. The series must be sorted.
func (s *Series) IndexAtOrAfter(t time.Time) int {
	return sort.Search(len(s.Times), func(i int) bool {
		return !s.Times[i].Before(t)
	})
}

// Resample aggregates the series into buckets of the given width using
// the mean of each bucket, dropping empty buckets. Bucket boundaries are
// aligned to the first timestamp. This reproduces the re-sampling of the
// wearable HRTable onto the MainTable granularity.
func (s *Series) Resample(width time.Duration) *Series {
	if s.Len() == 0 || width <= 0 {
		return s.Clone()
	}
	start := s.Times[0]
	out := &Series{}
	var bucket []float64
	bucketIdx := int64(0)
	flush := func() {
		if len(bucket) == 0 {
			return
		}
		sum := 0.0
		n := 0
		for _, v := range bucket {
			if math.IsNaN(v) {
				continue
			}
			sum += v
			n++
		}
		t := start.Add(time.Duration(bucketIdx) * width)
		if n == 0 {
			out.Times = append(out.Times, t)
			out.Values = append(out.Values, math.NaN())
			return
		}
		out.Times = append(out.Times, t)
		out.Values = append(out.Values, sum/float64(n))
	}
	for i := range s.Times {
		idx := int64(s.Times[i].Sub(start) / width)
		if idx != bucketIdx {
			flush()
			bucket = bucket[:0]
			bucketIdx = idx
		}
		bucket = append(bucket, s.Values[i])
	}
	flush()
	return out
}

// HourSinCos returns the cyclical encoding of the hour of day:
// sin(2π·h/24), cos(2π·h/24).
func HourSinCos(t time.Time) (float64, float64) {
	h := float64(t.Hour()) + float64(t.Minute())/60
	angle := 2 * math.Pi * h / 24
	return math.Sin(angle), math.Cos(angle)
}

// MonthSinCos returns the cyclical encoding of the month:
// sin(2π·(m-1)/12), cos(2π·(m-1)/12).
func MonthSinCos(t time.Time) (float64, float64) {
	m := float64(int(t.Month()) - 1)
	angle := 2 * math.Pi * m / 12
	return math.Sin(angle), math.Cos(angle)
}
