package timeseries

import (
	"math"
	"testing"
	"time"

	"icewafl/internal/stream"
)

var bridgeSchema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "v", Kind: stream.KindFloat},
	stream.Field{Name: "label", Kind: stream.KindString},
)

func bridgeTuples(values []stream.Value) []stream.Tuple {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, len(values))
	for i, v := range values {
		out[i] = stream.NewTuple(bridgeSchema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Hour)), v, stream.Str("x"),
		})
	}
	return out
}

func TestFromTuplesExtractsSeries(t *testing.T) {
	tuples := bridgeTuples([]stream.Value{
		stream.Float(1), stream.Null(), stream.Float(3),
	})
	s, err := FromTuples(tuples, "v")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	if s.Values[0] != 1 || !math.IsNaN(s.Values[1]) || s.Values[2] != 3 {
		t.Fatalf("values %v", s.Values)
	}
	ts0, _ := tuples[0].Timestamp()
	if !s.Times[0].Equal(ts0) {
		t.Fatal("timestamps not carried over")
	}
	// String attribute maps to NaN (non-numeric).
	s2, err := FromTuples(tuples, "label")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s2.Values {
		if !math.IsNaN(v) {
			t.Fatal("string values should become NaN")
		}
	}
}

func TestFromTuplesErrors(t *testing.T) {
	if _, err := FromTuples(bridgeTuples([]stream.Value{stream.Float(1)}), "zzz"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	s, err := FromTuples(nil, "anything")
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty input: %v, %v", s, err)
	}
}

func TestApplyToTuplesWritesBack(t *testing.T) {
	tuples := bridgeTuples([]stream.Value{
		stream.Float(1), stream.Null(), stream.Float(3),
	})
	s, _ := FromTuples(tuples, "v")
	s.FFill()
	if err := ApplyToTuples(tuples, "v", s); err != nil {
		t.Fatal(err)
	}
	if v, _ := tuples[1].GetFloat("v"); v != 1 {
		t.Fatalf("imputed value %g", v)
	}
	// NaN in the series becomes NULL in the tuple.
	s.Values[2] = math.NaN()
	if err := ApplyToTuples(tuples, "v", s); err != nil {
		t.Fatal(err)
	}
	if v, _ := tuples[2].Get("v"); !v.IsNull() {
		t.Fatal("NaN not written as NULL")
	}
}

func TestApplyToTuplesErrors(t *testing.T) {
	tuples := bridgeTuples([]stream.Value{stream.Float(1)})
	if err := ApplyToTuples(tuples, "v", New(nil, nil)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	s, _ := FromTuples(tuples, "v")
	if err := ApplyToTuples(tuples, "zzz", s); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if err := ApplyToTuples(nil, "v", New(nil, nil)); err != nil {
		t.Fatalf("empty apply: %v", err)
	}
}

func TestRoundTripThroughBridge(t *testing.T) {
	tuples := bridgeTuples([]stream.Value{
		stream.Float(1.5), stream.Float(2.5), stream.Float(3.5),
	})
	s, _ := FromTuples(tuples, "v")
	if err := ApplyToTuples(tuples, "v", s); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1.5, 2.5, 3.5} {
		if v, _ := tuples[i].GetFloat("v"); v != want {
			t.Fatalf("round trip changed value %d: %g", i, v)
		}
	}
}
