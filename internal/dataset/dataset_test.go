package dataset

import (
	"math"
	"strings"
	"testing"
	"time"

	"icewafl/internal/stats"
)

func TestAirQualityDeterminism(t *testing.T) {
	opts := AirQualityOptions{Tuples: 500}
	a := AirQuality(RegionGucheng, 1, opts)
	b := AirQuality(RegionGucheng, 1, opts)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at tuple %d", i)
		}
	}
	c := AirQuality(RegionGucheng, 2, opts)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical tuples", same, len(a))
	}
}

func TestAirQualityRegionsDiffer(t *testing.T) {
	opts := AirQualityOptions{Tuples: 200}
	a := AirQuality(RegionGucheng, 1, opts)
	b := AirQuality(RegionWanliu, 1, opts)
	same := 0
	for i := range a {
		if a[i].Equal(b[i]) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical tuples across regions", same)
	}
}

func TestAirQualityShape(t *testing.T) {
	tuples := AirQuality(RegionWanshouxigong, 1, AirQualityOptions{})
	if len(tuples) != AirQualityTuples {
		t.Fatalf("got %d tuples, want %d", len(tuples), AirQualityTuples)
	}
	if AirQualitySchema().Len() != 18 {
		t.Fatalf("schema has %d attributes, want 18", AirQualitySchema().Len())
	}
	// Hourly, contiguous, spanning the documented period.
	first, _ := tuples[0].Timestamp()
	if !first.Equal(AirQualityStart) {
		t.Fatalf("start %v", first)
	}
	last, _ := tuples[len(tuples)-1].Timestamp()
	if !last.Add(time.Hour).Equal(AirQualityEnd) {
		t.Fatalf("end %v", last)
	}
	prev := first
	for i, tp := range tuples[1:] {
		ts, ok := tp.Timestamp()
		if !ok || !ts.Equal(prev.Add(time.Hour)) {
			t.Fatalf("gap at tuple %d: %v after %v", i+1, ts, prev)
		}
		prev = ts
	}
}

func TestAirQualityMissingNO2(t *testing.T) {
	tuples := AirQuality(RegionGucheng, 1, AirQualityOptions{Tuples: 10000})
	missing := 0
	for _, tp := range tuples {
		if tp.MustGet("NO2").IsNull() {
			missing++
		}
	}
	frac := float64(missing) / float64(len(tuples))
	if frac < 0.008 || frac > 0.025 {
		t.Fatalf("missing NO2 fraction %.4f outside [0.008, 0.025]", frac)
	}
}

func TestAirQualityValueRanges(t *testing.T) {
	tuples := AirQuality(RegionWanliu, 3, AirQualityOptions{Tuples: 5000})
	for i, tp := range tuples {
		if no2 := tp.MustGet("NO2"); !no2.IsNull() {
			if v, _ := no2.AsFloat(); v < 0 {
				t.Fatalf("tuple %d: negative NO2 %g", i, v)
			}
		}
		if v, _ := tp.MustGet("WSPM").AsFloat(); v < 0 {
			t.Fatalf("tuple %d: negative wind speed %g", i, v)
		}
		if v, _ := tp.MustGet("RAIN").AsFloat(); v < 0 {
			t.Fatalf("tuple %d: negative rain %g", i, v)
		}
		pm25, _ := tp.MustGet("PM2.5").AsFloat()
		pm10, _ := tp.MustGet("PM10").AsFloat()
		if pm10 < pm25 {
			t.Fatalf("tuple %d: PM10 %g < PM2.5 %g", i, pm10, pm25)
		}
		wd, _ := tp.MustGet("wd").AsString()
		if wd == "" {
			t.Fatalf("tuple %d: empty wind direction", i)
		}
	}
}

func TestAirQualityHasDailySeasonality(t *testing.T) {
	tuples := AirQuality(RegionGucheng, 5, AirQualityOptions{Tuples: 24 * 60, MissingRate: -1})
	var byHour [24][]float64
	for _, tp := range tuples {
		ts, _ := tp.Timestamp()
		v, ok := tp.MustGet("NO2").AsFloat()
		if ok {
			byHour[ts.Hour()] = append(byHour[ts.Hour()], v)
		}
	}
	// The daily cycle peaks near 19:00 and dips near 07:00.
	evening := stats.Mean(byHour[19])
	morning := stats.Mean(byHour[7])
	if evening-morning < 10 {
		t.Fatalf("daily NO2 cycle too weak: evening %g vs morning %g", evening, morning)
	}
}

func TestAirQualityNO2WeatherCorrelation(t *testing.T) {
	tuples := AirQuality(RegionGucheng, 6, AirQualityOptions{Tuples: 5000, MissingRate: -1})
	var no2, wspm []float64
	for _, tp := range tuples {
		n, ok := tp.MustGet("NO2").AsFloat()
		if !ok {
			continue
		}
		w, _ := tp.MustGet("WSPM").AsFloat()
		no2 = append(no2, n)
		wspm = append(wspm, w)
	}
	// Wind disperses NO2: correlation must be clearly negative.
	if corr(no2, wspm) > -0.2 {
		t.Fatalf("NO2/WSPM correlation %g not negative enough", corr(no2, wspm))
	}
}

func corr(a, b []float64) float64 {
	ma, mb := stats.Mean(a), stats.Mean(b)
	var num, da, db float64
	for i := range a {
		num += (a[i] - ma) * (b[i] - mb)
		da += (a[i] - ma) * (a[i] - ma)
		db += (b[i] - mb) * (b[i] - mb)
	}
	return num / math.Sqrt(da*db)
}

func TestWearableDeterminism(t *testing.T) {
	a := Wearable(1)
	b := Wearable(1)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("same seed diverged at tuple %d", i)
		}
	}
}

func TestWearableShape(t *testing.T) {
	tuples := Wearable(1)
	if len(tuples) != WearableTuples {
		t.Fatalf("got %d tuples, want %d", len(tuples), WearableTuples)
	}
	first, _ := tuples[0].Timestamp()
	if !first.Equal(WearableStart) {
		t.Fatalf("start %v", first)
	}
	prev := first
	for i, tp := range tuples[1:] {
		ts, _ := tp.Timestamp()
		if !ts.Equal(prev.Add(WearableInterval)) {
			t.Fatalf("cadence broken at %d", i+1)
		}
		prev = ts
	}
	span := prev.Sub(first).Hours()
	if math.Abs(span-WearableHours) > 0.3 {
		t.Fatalf("span %.2f h, want ≈ %.2f h", span, WearableHours)
	}
}

func TestWearableExactlyTwoGlitches(t *testing.T) {
	tuples := Wearable(DefaultSeedForTest)
	glitches := 0
	for _, tp := range tuples {
		bpm, _ := tp.MustGet("BPM").AsFloat()
		if bpm != 0 {
			continue
		}
		sum := 0.0
		for _, c := range []string{"ActiveMinutes", "Distance", "Steps"} {
			f, _ := tp.MustGet(c).AsFloat()
			sum += f
		}
		if sum != 0 {
			glitches++
		}
	}
	if glitches != 2 {
		t.Fatalf("found %d pre-existing violations, want exactly 2", glitches)
	}
}

// DefaultSeedForTest mirrors the experiments package's dataset seed.
const DefaultSeedForTest = 20160226

func TestWearableActivityConsistency(t *testing.T) {
	for i, tp := range Wearable(2) {
		steps, _ := tp.MustGet("Steps").AsFloat()
		dist, _ := tp.MustGet("Distance").AsFloat()
		bpm, _ := tp.MustGet("BPM").AsFloat()
		cal, _ := tp.MustGet("CaloriesBurned").AsFloat()
		active, _ := tp.MustGet("ActiveMinutes").AsFloat()
		if steps < 0 || dist < 0 || cal < 0 || active < 0 || active > 15 {
			t.Fatalf("tuple %d out of range: %v", i, tp)
		}
		// Steps dominate distance in clean data (steps count vs km).
		if steps < dist {
			t.Fatalf("tuple %d: steps %g < distance %g", i, steps, dist)
		}
		// Calories only burn while the tracker is worn.
		if bpm == 0 && steps == 0 && cal != 0 {
			t.Fatalf("tuple %d: calories without wear", i)
		}
		if bpm > 0 && cal <= 0 {
			t.Fatalf("tuple %d: worn but no calories", i)
		}
	}
}

func TestWearableCaloriesPrecision(t *testing.T) {
	for i, tp := range Wearable(3) {
		v := tp.MustGet("CaloriesBurned")
		f, _ := v.AsFloat()
		if f == 0 {
			continue
		}
		s := v.String()
		dot := strings.IndexByte(s, '.')
		if dot < 0 {
			t.Fatalf("tuple %d: calories %q lost fraction", i, s)
		}
		frac := s[dot+1:]
		if len(frac) != 3 || frac[2] == '0' {
			t.Fatalf("tuple %d: calories %q not at precision exactly 3", i, s)
		}
	}
}

func TestWearableExerciseRate(t *testing.T) {
	tuples := Wearable(DefaultSeedForTest)
	high := 0
	for _, tp := range tuples {
		if bpm, _ := tp.MustGet("BPM").AsFloat(); bpm > 100 {
			high++
		}
	}
	// The paper's stream has 33 of 1056 post-update tuples above 100 BPM
	// (≈ 3%); the generator should land in the same regime.
	frac := float64(high) / float64(len(tuples))
	if frac < 0.01 || frac > 0.07 {
		t.Fatalf("BPM>100 fraction %.4f outside [0.01, 0.07]", frac)
	}
}

func TestWearableHasIdlePeriods(t *testing.T) {
	idle := 0
	for _, tp := range Wearable(4) {
		bpm, _ := tp.MustGet("BPM").AsFloat()
		steps, _ := tp.MustGet("Steps").AsFloat()
		if bpm == 0 && steps == 0 {
			idle++
		}
	}
	if idle == 0 {
		t.Fatal("no tracker-not-worn periods generated")
	}
}

func TestRegions(t *testing.T) {
	rs := Regions()
	if len(rs) != 3 || rs[0] != RegionGucheng || rs[1] != RegionWanshouxigong || rs[2] != RegionWanliu {
		t.Fatalf("regions %v", rs)
	}
}

func TestQuantize3(t *testing.T) {
	if quantize3(0) != 0 {
		t.Fatal("zero must stay zero")
	}
	for _, x := range []float64{1.2345, 18.0, 7.1, 99.9999, 0.0004} {
		q := quantize3(x)
		milli := int64(math.Round(q * 1000))
		if milli%10 == 0 {
			t.Fatalf("quantize3(%g) = %g has zero third decimal", x, q)
		}
		if math.Abs(q-x) > 0.0015 {
			t.Fatalf("quantize3(%g) = %g drifted too far", x, q)
		}
	}
}
