// Package dataset generates the two benchmark streams of the paper's
// evaluation as deterministic synthetic equivalents:
//
//   - a Beijing-multi-site-air-quality-like stream (hourly, 4 years,
//     35,064 tuples per region, 18 attributes) for the forecasting
//     experiment, and
//   - a wearable-device-like activity-tracker stream (11 days, 15-minute
//     granularity) for the data-quality experiment.
//
// Both generators are seeded, so experiments are reproducible, and both
// expose realistic structure: daily and annual seasonality, autocorrelated
// innovations, covariate dependence, idle periods and a pair of
// pre-existing constraint violations mirroring the quirks the paper
// reports in the real data.
package dataset

import (
	"math"
	"sync"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Regions of the air-quality dataset used in the forecasting experiment.
const (
	RegionGucheng       = "Gucheng"
	RegionWanshouxigong = "Wanshouxigong"
	RegionWanliu        = "Wanliu"
)

// Regions lists the three evaluation regions in paper order.
func Regions() []string {
	return []string{RegionGucheng, RegionWanshouxigong, RegionWanliu}
}

// AirQualityStart and AirQualityEnd delimit the generated period,
// matching the real dataset's span (hourly, 2013-03-01 .. 2017-02-28).
var (
	AirQualityStart = time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	AirQualityEnd   = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
)

// AirQualityTuples is the number of hourly observations per region
// (35,064 = 4 years x 8,760 + 24 leap-day hours).
const AirQualityTuples = 35064

// NewAirQualitySchema builds the air-quality schema through the
// error-returning constructor path — the public, non-panicking way to
// obtain it.
func NewAirQualitySchema() (*stream.Schema, error) {
	return stream.NewSchema("ts",
		stream.Field{Name: "No", Kind: stream.KindInt},
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "year", Kind: stream.KindInt},
		stream.Field{Name: "month", Kind: stream.KindInt},
		stream.Field{Name: "day", Kind: stream.KindInt},
		stream.Field{Name: "hour", Kind: stream.KindInt},
		stream.Field{Name: "PM2.5", Kind: stream.KindFloat},
		stream.Field{Name: "PM10", Kind: stream.KindFloat},
		stream.Field{Name: "SO2", Kind: stream.KindFloat},
		stream.Field{Name: "NO2", Kind: stream.KindFloat},
		stream.Field{Name: "CO", Kind: stream.KindFloat},
		stream.Field{Name: "O3", Kind: stream.KindFloat},
		stream.Field{Name: "TEMP", Kind: stream.KindFloat},
		stream.Field{Name: "PRES", Kind: stream.KindFloat},
		stream.Field{Name: "DEWP", Kind: stream.KindFloat},
		stream.Field{Name: "RAIN", Kind: stream.KindFloat},
		stream.Field{Name: "wd", Kind: stream.KindString},
		stream.Field{Name: "WSPM", Kind: stream.KindFloat},
	)
}

// airQualitySchemaCached validates the schema once, on first use,
// instead of at package init.
var airQualitySchemaCached = sync.OnceValue(func() *stream.Schema {
	s, err := NewAirQualitySchema()
	if err != nil {
		panic(err) // unreachable: the field list is a compile-time constant
	}
	return s
})

func airQualitySchema() *stream.Schema { return airQualitySchemaCached() }

// AirQualitySchema returns the 18-attribute schema of the air-quality
// stream (timestamp attribute "ts").
func AirQualitySchema() *stream.Schema { return airQualitySchema() }

var windDirections = []string{"N", "NNE", "NE", "ENE", "E", "ESE", "SE", "SSE",
	"S", "SSW", "SW", "WSW", "W", "WNW", "NW", "NNW"}

// AirQualityOptions tunes the generator; the zero value reproduces the
// defaults used by the experiments.
type AirQualityOptions struct {
	// MissingRate is the fraction of NO2 values replaced by NULL, to be
	// imputed with forward fill as in the paper (default 0.015).
	MissingRate float64
	// Tuples overrides the stream length (default AirQualityTuples).
	Tuples int
}

// AirQuality generates the hourly multivariate stream for one region.
// The same (region, seed) pair always produces the same stream.
//
// The target pollutant NO2 carries daily and annual cycles, an AR(1)
// innovation process, and a dependence on the weather covariates TEMP,
// PRES and WSPM — the attributes ARIMAX receives (§3.2.2) — so the
// forecasting methods have genuine structure to learn.
func AirQuality(region string, seed int64, opts AirQualityOptions) []stream.Tuple {
	if opts.MissingRate == 0 {
		opts.MissingRate = 0.015
	}
	if opts.Tuples == 0 {
		opts.Tuples = AirQualityTuples
	}
	r := rng.Derive(seed, "airquality/"+region)
	missR := rng.Derive(seed, "airquality-missing/"+region)

	// Region-specific base levels keep the three streams distinct.
	base := 38 + 8*r.Float64() // NO2 base μg/m³
	tempBase := 12 + 3*r.Float64()
	presBase := 1012 + 3*r.Float64()

	// AR(1) states.
	arNO2, arTemp, arPres, arWind := 0.0, 0.0, 0.0, 0.0

	tuples := make([]stream.Tuple, 0, opts.Tuples)
	for i := 0; i < opts.Tuples; i++ {
		ts := AirQualityStart.Add(time.Duration(i) * time.Hour)
		hour := float64(ts.Hour())
		yearFrac := float64(ts.YearDay()-1) / 365.0

		arTemp = 0.97*arTemp + r.Normal(0, 0.8)
		arPres = 0.95*arPres + r.Normal(0, 0.6)
		arWind = 0.8*arWind + r.Normal(0, 0.5)
		arNO2 = 0.85*arNO2 + r.Normal(0, 4)

		temp := tempBase +
			12*math.Sin(2*math.Pi*(yearFrac-0.25)) + // annual cycle, peak in summer
			4*math.Sin(2*math.Pi*(hour-9)/24) + // daily cycle, peak afternoon
			arTemp
		pres := presBase - 6*math.Sin(2*math.Pi*(yearFrac-0.25)) + arPres
		wspm := math.Abs(1.8 + arWind)
		dewp := temp - 4 - 3*r.Float64()
		rain := 0.0
		if r.Bernoulli(0.04) {
			rain = r.Uniform(0.1, 8)
		}

		no2 := base +
			14*math.Cos(2*math.Pi*(hour-19)/24) + // daily cycle, rush-hour peak
			9*math.Sin(2*math.Pi*(yearFrac+0.25)) + // annual cycle, winter peak
			-0.45*(temp-tempBase) + // cold → more NO2
			-3.5*wspm + // wind disperses
			0.25*(pres-presBase) +
			arNO2
		if no2 < 1 {
			no2 = 1
		}

		// Correlated companion pollutants.
		pm25 := math.Max(2, 0.9*no2+r.Normal(20, 10))
		pm10 := math.Max(pm25, pm25+r.Uniform(5, 40))
		so2 := math.Max(1, 0.3*no2+r.Normal(5, 3))
		co := math.Max(100, 18*no2+r.Normal(300, 150))
		o3 := math.Max(1, 80-0.6*no2+8*math.Sin(2*math.Pi*(hour-14)/24)+r.Normal(0, 8))

		no2Val := stream.Float(round1(no2))
		if missR.Bernoulli(opts.MissingRate) {
			no2Val = stream.Null()
		}

		tuples = append(tuples, stream.NewTuple(airQualitySchema(), []stream.Value{
			stream.Int(int64(i + 1)),
			stream.Time(ts),
			stream.Int(int64(ts.Year())),
			stream.Int(int64(ts.Month())),
			stream.Int(int64(ts.Day())),
			stream.Int(int64(ts.Hour())),
			stream.Float(round1(pm25)),
			stream.Float(round1(pm10)),
			stream.Float(round1(so2)),
			no2Val,
			stream.Float(round1(co)),
			stream.Float(round1(o3)),
			stream.Float(round1(temp)),
			stream.Float(round1(pres)),
			stream.Float(round1(dewp)),
			stream.Float(round1(rain)),
			stream.Str(windDirections[r.Intn(len(windDirections))]),
			stream.Float(round1(wspm)),
		}))
	}
	return tuples
}

func round1(x float64) float64 { return math.Round(x*10) / 10 }
