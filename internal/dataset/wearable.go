package dataset

import (
	"math"
	"sync"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// WearableStart is the first timestamp of the wearable stream. The paper's
// combined HRTable/MainTable stream spans 264.75 hours from 2016-02-26 to
// 2016-03-07 (volunteer 0216-0051-NHC); we reproduce the same span at a
// 15-minute granularity (the MainTable granularity is not published), so
// absolute tuple counts differ slightly from the paper while every
// per-scenario proportion is preserved. EXPERIMENTS.md reports both.
var WearableStart = time.Date(2016, 2, 26, 0, 0, 0, 0, time.UTC)

// WearableInterval is the sampling granularity of the generated stream.
const WearableInterval = 15 * time.Minute

// WearableHours is the stream's span in hours (264.75 h as in the paper).
const WearableHours = 264.75

// WearableTuples is the number of generated observations
// (264.75 h x 4 per hour + 1 = 1060).
const WearableTuples = int(WearableHours*4) + 1

// NewWearableSchema builds the activity-tracker schema through the
// error-returning constructor path — the public, non-panicking way to
// obtain it.
func NewWearableSchema() (*stream.Schema, error) {
	return stream.NewSchema("Time",
		stream.Field{Name: "Time", Kind: stream.KindTime},
		stream.Field{Name: "BPM", Kind: stream.KindFloat},
		stream.Field{Name: "Steps", Kind: stream.KindInt},
		stream.Field{Name: "Distance", Kind: stream.KindFloat},
		stream.Field{Name: "CaloriesBurned", Kind: stream.KindFloat},
		stream.Field{Name: "ActiveMinutes", Kind: stream.KindInt},
	)
}

// wearableSchemaCached validates the schema once, on first use, instead
// of at package init — an invalid schema no longer takes down every
// importer before main runs.
var wearableSchemaCached = sync.OnceValue(func() *stream.Schema {
	s, err := NewWearableSchema()
	if err != nil {
		panic(err) // unreachable: the field list is a compile-time constant
	}
	return s
})

func wearableSchema() *stream.Schema { return wearableSchemaCached() }

// WearableSchema returns the schema of the activity-tracker stream
// (timestamp attribute "Time").
func WearableSchema() *stream.Schema { return wearableSchema() }

// Wearable generates the activity-tracker stream. The same seed always
// yields the same stream. Properties mirrored from the paper's data:
//
//   - idle "tracker not worn" periods where BPM, Steps, Distance,
//     CaloriesBurned and ActiveMinutes are all zero;
//   - exercise bouts pushing BPM above 100 in roughly 3-4%% of tuples;
//   - CaloriesBurned recorded at a precision of exactly three decimals
//     (or the integer 0 when idle), so the round-to-2 pollution of the
//     software-update scenario is detectable by a precision regex;
//   - exactly two anomalous tuples with BPM == 0 but non-zero activity —
//     the two pre-existing constraint violations GX surfaced on the real
//     stream (Table 1's "+2").
func Wearable(seed int64) []stream.Tuple {
	r := rng.Derive(seed, "wearable")
	tuples := make([]stream.Tuple, 0, WearableTuples)

	// State machine over 15-minute slots: sleeping, idle (worn, resting),
	// active (walking), exercising (BPM > 100), or not worn.
	exerciseLeft := 0
	notWornLeft := 0

	for i := 0; i < WearableTuples; i++ {
		ts := WearableStart.Add(time.Duration(i) * WearableInterval)
		h := ts.Hour()

		var bpm float64
		var steps int64
		var activeMin int64

		switch {
		case notWornLeft > 0:
			notWornLeft--
			// Everything zero: tracker on the nightstand.
		case h < 6 || h >= 23: // sleep
			bpm = r.Uniform(52, 64)
		default:
			if exerciseLeft == 0 && r.Bernoulli(0.011) {
				exerciseLeft = 2 + r.Intn(3) // 30-60 minutes of exercise
			}
			if exerciseLeft == 0 && (h == 9 || h == 21) && r.Bernoulli(0.08) {
				notWornLeft = 1 + r.Intn(4) // shower / charging
				continueIdle(&bpm, &steps, &activeMin)
			} else if exerciseLeft > 0 {
				exerciseLeft--
				bpm = r.Uniform(105, 150)
				steps = int64(r.Uniform(1200, 2200))
				activeMin = int64(r.Uniform(10, 15))
			} else if r.Bernoulli(0.52) { // walking around
				bpm = r.Uniform(72, 98)
				steps = int64(r.Uniform(120, 900))
				activeMin = int64(r.Uniform(1, 9))
			} else { // sitting
				bpm = r.Uniform(62, 80)
			}
		}

		distance := float64(steps) * 0.00072 // km, ~0.72 m stride
		calories := 0.0
		if bpm > 0 {
			calories = 18 + 0.055*float64(steps) + 0.1*(bpm-60) + r.Uniform(0, 2)
		}

		tuples = append(tuples, makeWearableTuple(ts, bpm, steps, distance, calories, activeMin))
	}

	// Plant the two pre-existing violations: BPM == 0 with activity > 0.
	// Deterministic positions in the pre-update day keep runs comparable.
	plantGlitch(tuples, 30, r)
	plantGlitch(tuples, 61, r)
	return tuples
}

func continueIdle(bpm *float64, steps *int64, activeMin *int64) {
	*bpm, *steps, *activeMin = 0, 0, 0
}

func makeWearableTuple(ts time.Time, bpm float64, steps int64, distance, calories float64, activeMin int64) stream.Tuple {
	return stream.NewTuple(wearableSchema(), []stream.Value{
		stream.Time(ts),
		stream.Float(math.Round(bpm)),
		stream.Int(steps),
		stream.Float(math.Round(distance*1000) / 1000),
		stream.Float(quantize3(calories)),
		stream.Int(activeMin),
	})
}

// quantize3 rounds to exactly three decimals and nudges the third decimal
// to be non-zero for positive values, so clean CaloriesBurned values
// always render with three decimal digits.
func quantize3(x float64) float64 {
	if x == 0 {
		return 0
	}
	q := math.Round(x*1000) / 1000
	milli := int64(math.Round(q * 1000))
	if milli%10 == 0 {
		milli++ // force a non-zero third decimal
	}
	return float64(milli) / 1000
}

// plantGlitch turns tuple i into a BPM==0, activity>0 anomaly.
func plantGlitch(tuples []stream.Tuple, i int, r *rng.Stream) {
	if i >= len(tuples) {
		return
	}
	steps := int64(r.Uniform(200, 600))
	tuples[i].Set("BPM", stream.Float(0))
	tuples[i].Set("Steps", stream.Int(steps))
	tuples[i].Set("Distance", stream.Float(math.Round(float64(steps)*0.72)/1000))
	tuples[i].Set("CaloriesBurned", stream.Float(quantize3(18+0.055*float64(steps))))
	tuples[i].Set("ActiveMinutes", stream.Int(5))
}
