package chaos

import (
	"errors"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"syscall"

	"icewafl/internal/netstream"
)

// ErrDiskFull is the error a FaultFS returns once its byte budget is
// exhausted; it wraps syscall.ENOSPC so callers matching on the real
// errno see the same thing.
var ErrDiskFull = &diskFullError{}

type diskFullError struct{}

func (*diskFullError) Error() string { return "chaos: injected disk full" }
func (*diskFullError) Unwrap() error { return syscall.ENOSPC }

// errInjectedSync is returned by a scheduled fsync failure.
var errInjectedSync = errors.New("chaos: injected fsync failure")

// FaultFS wraps a netstream.FS (the real filesystem by default) and
// injects disk faults on a deterministic schedule: periodic short
// writes, periodic fsync failures, and a total write budget after which
// every write fails with ENOSPC. It exercises the WAL's self-healing
// append path (truncate-and-retry after a short write, recovery after a
// failed sync) without needing a faulty disk.
//
// The schedule is shared across every file the FS opens, so "every Nth
// write" counts writes globally — matching how a single WAL channel
// appends through segment rotation.
type FaultFS struct {
	// Inner is the wrapped filesystem (default netstream.OSFS()).
	Inner netstream.FS
	// ShortWriteEvery makes every Nth write deliver only half its bytes
	// and report io.ErrShortWrite (0 = never).
	ShortWriteEvery int
	// SyncFailEvery makes every Nth fsync fail (0 = never). The data is
	// still on the file; only the durability barrier is denied.
	SyncFailEvery int
	// FailAfterBytes is a total write budget: once this many bytes have
	// been written through the FS, further writes fail with ErrDiskFull
	// (wrapping syscall.ENOSPC). 0 = unlimited.
	FailAfterBytes int64

	mu          sync.Mutex
	writes      int64
	syncs       int64
	written     int64
	shortWrites atomic.Uint64
	syncFails   atomic.Uint64
	enospc      atomic.Uint64
}

// ShortWrites returns how many short writes were injected.
func (f *FaultFS) ShortWrites() uint64 { return f.shortWrites.Load() }

// SyncFails returns how many fsync failures were injected.
func (f *FaultFS) SyncFails() uint64 { return f.syncFails.Load() }

// ENOSPCs returns how many writes were rejected by the byte budget.
func (f *FaultFS) ENOSPCs() uint64 { return f.enospc.Load() }

// Written returns the total bytes successfully written through the FS.
func (f *FaultFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FaultFS) inner() netstream.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return netstream.OSFS()
}

// OpenFile implements netstream.FS.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (netstream.File, error) {
	file, err := f.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// ReadDir implements netstream.FS.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner().ReadDir(name) }

// Remove implements netstream.FS.
func (f *FaultFS) Remove(name string) error { return f.inner().Remove(name) }

// MkdirAll implements netstream.FS.
func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	return f.inner().MkdirAll(name, perm)
}

// Stat implements netstream.FS.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner().Stat(name) }

// faultFile intercepts Write and Sync; everything else passes through.
type faultFile struct {
	fs    *FaultFS
	inner netstream.File
}

func (ff *faultFile) Read(p []byte) (int, error)                { return ff.inner.Read(p) }
func (ff *faultFile) Seek(off int64, whence int) (int64, error) { return ff.inner.Seek(off, whence) }
func (ff *faultFile) Close() error                              { return ff.inner.Close() }
func (ff *faultFile) Truncate(size int64) error                 { return ff.inner.Truncate(size) }

func (ff *faultFile) Write(p []byte) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	fs.writes++
	overBudget := fs.FailAfterBytes > 0 && fs.written >= fs.FailAfterBytes
	short := !overBudget && fs.ShortWriteEvery > 0 && fs.writes%int64(fs.ShortWriteEvery) == 0 && len(p) > 1
	fs.mu.Unlock()

	if overBudget {
		fs.enospc.Add(1)
		return 0, ErrDiskFull
	}
	if short {
		fs.shortWrites.Add(1)
		n, err := ff.inner.Write(p[:len(p)/2])
		fs.mu.Lock()
		fs.written += int64(n)
		fs.mu.Unlock()
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	n, err := ff.inner.Write(p)
	fs.mu.Lock()
	fs.written += int64(n)
	fs.mu.Unlock()
	return n, err
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	fs.syncs++
	fail := fs.SyncFailEvery > 0 && fs.syncs%int64(fs.SyncFailEvery) == 0
	fs.mu.Unlock()
	if fail {
		fs.syncFails.Add(1)
		return errInjectedSync
	}
	return ff.inner.Sync()
}
