package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"icewafl/internal/netstream"
)

// echoServer accepts connections and writes payload to each, then
// closes. Returns its address and a stop func.
func echoServer(t *testing.T, payload []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write(payload)
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func readAll(t *testing.T, addr string) []byte {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	got, _ := io.ReadAll(conn)
	return got
}

func TestProxyTransparentForwarding(t *testing.T) {
	payload := bytes.Repeat([]byte("icewafl"), 1000)
	target := echoServer(t, payload)
	p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: target, Seed: 7})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	got := readAll(t, p.Addr())
	if !bytes.Equal(got, payload) {
		t.Fatalf("forwarded payload differs: got %d bytes, want %d", len(got), len(payload))
	}
	if p.Conns() != 1 {
		t.Fatalf("Conns() = %d, want 1", p.Conns())
	}
	if p.Forwarded() != uint64(len(payload)) {
		t.Fatalf("Forwarded() = %d, want %d", p.Forwarded(), len(payload))
	}
	if p.Corrupted() != 0 || p.Kills() != 0 {
		t.Fatalf("clean config injected faults: corrupted=%d kills=%d", p.Corrupted(), p.Kills())
	}
}

func TestProxyCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0x00}, 8192)
	target := echoServer(t, payload)
	p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: target, Seed: 7, CorruptProb: 1.0})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	got := readAll(t, p.Addr())
	if len(got) != len(payload) {
		t.Fatalf("corruption changed length: got %d, want %d", len(got), len(payload))
	}
	if bytes.Equal(got, payload) {
		t.Fatal("CorruptProb=1 delivered the payload unmodified")
	}
	if p.Corrupted() == 0 {
		t.Fatal("Corrupted() = 0 with CorruptProb=1")
	}
}

func TestProxyKillAfterBytes(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 10000)
	target := echoServer(t, payload)
	p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: target, Seed: 7, KillAfterBytes: 2500})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	got := readAll(t, p.Addr())
	if int64(len(got)) > 2500 {
		t.Fatalf("received %d bytes past the 2500-byte kill budget", len(got))
	}
	if p.Kills() != 1 {
		t.Fatalf("Kills() = %d, want 1", p.Kills())
	}

	// A fresh connection gets a fresh budget: the kill is per-conn, so a
	// resuming client makes progress.
	got2 := readAll(t, p.Addr())
	if len(got2) == 0 {
		t.Fatal("second connection received nothing")
	}
	if p.Kills() != 2 {
		t.Fatalf("Kills() after second conn = %d, want 2", p.Kills())
	}
}

func TestProxyThrottle(t *testing.T) {
	payload := bytes.Repeat([]byte("y"), 8192)
	target := echoServer(t, payload)
	// 64 KiB/s over 8 KiB ≈ 125ms minimum; assert a loose lower bound to
	// stay robust on slow CI.
	p, err := NewProxy("127.0.0.1:0", ProxyConfig{Target: target, Seed: 7, ThrottleBytesPerSec: 64 * 1024})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer p.Close()

	start := time.Now()
	got := readAll(t, p.Addr())
	elapsed := time.Since(start)
	if !bytes.Equal(got, payload) {
		t.Fatalf("throttled payload differs: got %d bytes, want %d", len(got), len(payload))
	}
	if elapsed < 60*time.Millisecond {
		t.Fatalf("throttle had no effect: 8 KiB at 64 KiB/s took %v", elapsed)
	}
}

func TestFaultFSShortWriteRecovery(t *testing.T) {
	ffs := &FaultFS{ShortWriteEvery: 2}
	w, err := netstream.OpenWAL(t.TempDir(), netstream.WALOptions{FS: ffs, FsyncEvery: 1000})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()

	const n = 20
	for seq := uint64(1); seq <= n; seq++ {
		payload := []byte{byte(seq)}
		// Every short write tears the append; the WAL rolls it back, so
		// retrying the same sequence must succeed once the fault clears.
		var lastErr error
		ok := false
		for attempt := 0; attempt < 5; attempt++ {
			if lastErr = w.Append(seq, false, payload); lastErr == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("append seq %d never succeeded: %v", seq, lastErr)
		}
	}
	if ffs.ShortWrites() == 0 {
		t.Fatal("fault schedule injected no short writes")
	}
	if got := w.MaxSeq(); got != n {
		t.Fatalf("MaxSeq = %d, want %d", got, n)
	}

	r, err := w.ReadFrom(1)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	defer r.Close()
	for seq := uint64(1); seq <= n; seq++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next at seq %d: %v", seq, err)
		}
		if rec.Seq != seq || len(rec.Payload) != 1 || rec.Payload[0] != byte(seq) {
			t.Fatalf("record %d corrupted after short-write recovery: %+v", seq, rec)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF after %d records, got %v", n, err)
	}
}

func TestFaultFSSyncFailureRetrySameSeq(t *testing.T) {
	// FsyncEvery=1 syncs each append; sync #3 fails, leaving the record
	// in the file but not durable. The retry of the same sequence must
	// complete idempotently (supplying the missing fsync), not wedge on
	// the contiguity check.
	ffs := &FaultFS{SyncFailEvery: 3}
	w, err := netstream.OpenWAL(t.TempDir(), netstream.WALOptions{FS: ffs, FsyncEvery: 1})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer w.Close()

	for seq := uint64(1); seq <= 6; seq++ {
		var lastErr error
		ok := false
		for attempt := 0; attempt < 5; attempt++ {
			if lastErr = w.Append(seq, false, []byte{byte(seq)}); lastErr == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("append seq %d never succeeded: %v", seq, lastErr)
		}
	}
	if ffs.SyncFails() == 0 {
		t.Fatal("fault schedule injected no sync failures")
	}
	if got := w.MaxSeq(); got != 6 {
		t.Fatalf("MaxSeq = %d, want 6 (duplicate or lost append across sync failure)", got)
	}

	r, err := w.ReadFrom(1)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	defer r.Close()
	for seq := uint64(1); seq <= 6; seq++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next at seq %d: %v", seq, err)
		}
		if rec.Seq != seq {
			t.Fatalf("record out of order: got seq %d, want %d", rec.Seq, seq)
		}
	}
}

func TestFaultFSENOSPC(t *testing.T) {
	dir := t.TempDir()
	ffs := &FaultFS{FailAfterBytes: 400}
	w, err := netstream.OpenWAL(dir, netstream.WALOptions{FS: ffs, FsyncEvery: 1})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}

	var full bool
	var landed uint64
	for seq := uint64(1); seq <= 100; seq++ {
		if err := w.Append(seq, false, bytes.Repeat([]byte{byte(seq)}, 16)); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append seq %d: error does not wrap ENOSPC: %v", seq, err)
			}
			full = true
			break
		}
		landed = seq
	}
	if !full {
		t.Fatal("400-byte budget never filled")
	}
	if landed == 0 {
		t.Fatal("no appends landed before the disk filled")
	}
	if ffs.ENOSPCs() == 0 {
		t.Fatal("ENOSPCs() = 0 after a disk-full error")
	}
	w.Close()

	// Everything appended before the disk filled survives a reopen on a
	// healthy filesystem.
	w2, err := netstream.OpenWAL(dir, netstream.WALOptions{})
	if err != nil {
		t.Fatalf("reopen after ENOSPC: %v", err)
	}
	defer w2.Close()
	if got := w2.MaxSeq(); got != landed {
		t.Fatalf("MaxSeq after reopen = %d, want %d", got, landed)
	}
	r, err := w2.ReadFrom(1)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	defer r.Close()
	for seq := uint64(1); seq <= landed; seq++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next at seq %d: %v", seq, err)
		}
		if rec.Seq != seq || !bytes.Equal(rec.Payload, bytes.Repeat([]byte{byte(seq)}, 16)) {
			t.Fatalf("record %d corrupted by disk-full: %+v", seq, rec)
		}
	}
}
