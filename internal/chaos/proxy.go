// Package chaos is the fault-injection harness of the service runtime:
// a TCP proxy that degrades the network between a client and an
// icewafld server (latency, jitter, byte corruption, mid-frame
// connection kills, slow-reader throttling, periodic partitions), and a
// filesystem wrapper that degrades the disk under the write-ahead log
// (short writes, fsync failures, ENOSPC). Both are deterministic for a
// given seed and schedule, so chaos tests reproduce.
//
// The harness drives the kill-and-recover suite: a client reading
// through a misbehaving proxy from a repeatedly-killed daemon must
// still observe a byte-identical stream.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"icewafl/internal/rng"
)

// ProxyConfig tunes the fault schedule of a Proxy. The zero value
// forwards transparently.
type ProxyConfig struct {
	// Target is the upstream address to forward to (required).
	Target string
	// Seed drives the deterministic fault randomness.
	Seed int64
	// Latency is added to every forwarded chunk; Jitter is a uniform
	// random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// CorruptProb is the per-chunk probability of flipping one byte of
	// server→client traffic (checksum/decode chaos downstream).
	CorruptProb float64
	// KillAfterBytes abruptly closes each connection once this many
	// server→client bytes have been forwarded — deliberately mid-frame
	// (0 = never). Each subsequent connection gets the same budget, so a
	// resuming client makes progress.
	KillAfterBytes int64
	// ThrottleBytesPerSec caps server→client throughput per connection,
	// emulating a slow reader (0 = unthrottled).
	ThrottleBytesPerSec int
	// PartitionEvery/PartitionFor open a periodic partition: every
	// PartitionEvery of connection lifetime, forwarding stalls for
	// PartitionFor (both must be > 0 to enable).
	PartitionEvery time.Duration
	PartitionFor   time.Duration
}

// Proxy is a fault-injecting TCP forwarder. Create with NewProxy, stop
// with Close.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener

	mu   sync.Mutex
	rand *rng.Stream

	wg     sync.WaitGroup
	closed atomic.Bool

	conns     atomic.Uint64
	kills     atomic.Uint64
	corrupted atomic.Uint64
	forwarded atomic.Uint64
}

// NewProxy starts a proxy listening on addr (e.g. "127.0.0.1:0")
// forwarding to cfg.Target.
func NewProxy(addr string, cfg ProxyConfig) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, fmt.Errorf("chaos: proxy needs a target address")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{cfg: cfg, ln: ln, rand: rng.Derive(cfg.Seed, "chaos/proxy")}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.acceptLoop()
	}()
	return p, nil
}

// Addr returns the proxy's listen address (dial this instead of the
// server).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Conns returns how many connections the proxy accepted.
func (p *Proxy) Conns() uint64 { return p.conns.Load() }

// Kills returns how many connections were killed by the byte budget.
func (p *Proxy) Kills() uint64 { return p.kills.Load() }

// Corrupted returns how many chunks had a byte flipped.
func (p *Proxy) Corrupted() uint64 { return p.corrupted.Load() }

// Forwarded returns the total server→client bytes forwarded.
func (p *Proxy) Forwarded() uint64 { return p.forwarded.Load() }

// Close stops accepting and tears down active connections.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.conns.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(conn)
		}()
	}
}

// float64 draws one deterministic uniform sample under the proxy lock
// (multiple connection pumps share the stream).
func (p *Proxy) float64() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rand.Float64()
}

func (p *Proxy) handle(client net.Conn) {
	defer client.Close()
	server, err := net.DialTimeout("tcp", p.cfg.Target, 10*time.Second)
	if err != nil {
		return
	}
	defer server.Close()

	// Client→server traffic (the subscribe frame) is forwarded
	// transparently; the fault schedule applies to the server→client
	// stream, where the data flows.
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		io.Copy(server, client)
		// Half-close toward the server so it observes the client's EOF.
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		p.pump(client, server)
		client.Close()
		server.Close()
	}()
	<-done
	<-done
}

// pump forwards server→client applying the fault schedule.
func (p *Proxy) pump(client net.Conn, server net.Conn) {
	// Small chunks so throttling, kills and corruption act mid-frame.
	buf := make([]byte, 1024)
	var sent int64
	start := time.Now()
	for {
		n, err := server.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			p.maybePartition(start)
			p.delay(len(chunk))
			if p.cfg.CorruptProb > 0 && p.float64() < p.cfg.CorruptProb {
				i := int(p.float64() * float64(len(chunk)))
				if i >= len(chunk) {
					i = len(chunk) - 1
				}
				chunk[i] ^= 0xA5
				p.corrupted.Add(1)
			}
			if p.cfg.KillAfterBytes > 0 && sent+int64(len(chunk)) > p.cfg.KillAfterBytes {
				// Forward a partial chunk, then kill the connection in the
				// middle of whatever frame was in flight.
				cut := p.cfg.KillAfterBytes - sent
				if cut > 0 {
					client.Write(chunk[:cut])
					p.forwarded.Add(uint64(cut))
				}
				p.kills.Add(1)
				return
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			sent += int64(len(chunk))
			p.forwarded.Add(uint64(len(chunk)))
		}
		if err != nil {
			return
		}
	}
}

// delay applies latency, jitter and throttling for one chunk.
func (p *Proxy) delay(chunkLen int) {
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d += time.Duration(p.float64() * float64(p.cfg.Jitter))
	}
	if p.cfg.ThrottleBytesPerSec > 0 {
		d += time.Duration(float64(chunkLen) / float64(p.cfg.ThrottleBytesPerSec) * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// maybePartition stalls forwarding while a scheduled partition is open.
func (p *Proxy) maybePartition(start time.Time) {
	if p.cfg.PartitionEvery <= 0 || p.cfg.PartitionFor <= 0 {
		return
	}
	period := p.cfg.PartitionEvery + p.cfg.PartitionFor
	phase := time.Since(start) % period
	if phase >= p.cfg.PartitionEvery {
		time.Sleep(period - phase)
	}
}
