package chaos

// Integration tests driving a real netstream server through the fault
// proxy: disconnect-slow backpressure when the network delivers partial
// TCP writes (a throttled reader), and client resume across mid-frame
// connection kills.

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/netstream"
	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

func itSchema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
		stream.Field{Name: "sensor", Kind: stream.KindString},
	)
}

// itSource generates n deterministic tuples over itSchema.
func itSource(s *stream.Schema, n int) stream.Source {
	base := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	return stream.NewGeneratorSource(s, n, func(i int) stream.Tuple {
		return stream.NewTuple(s, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)),
			stream.Float(float64(i)),
			stream.Str(fmt.Sprintf("s%d", i%3)),
		})
	})
}

// itProcess builds a small stateful pipeline, fresh per run.
func itProcess(seed int64) *core.Process {
	noise := core.NewStandard("noise",
		&core.GaussianNoise{Stddev: core.Const(3), Rand: rng.Derive(seed, "noise")},
		core.NewRandomConst(0.4, rng.Derive(seed, "noise-cond")), "v")
	return &core.Process{
		Pipelines: []*core.Pipeline{core.NewPipeline(noise)},
		FirstID:   1,
	}
}

// itReference runs the pipeline in-process and returns the dirty
// tuples every network client must observe.
func itReference(t *testing.T, seed int64, n int) []stream.Tuple {
	t.Helper()
	src, _, err := itProcess(seed).RunStream(itSource(itSchema(t), n), 1)
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := stream.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	return dirty
}

// startITServer serves cfg over loopback TCP, shut down at cleanup.
func startITServer(t *testing.T, cfg netstream.Config) (srv *netstream.Server, tcpAddr string) {
	t.Helper()
	if cfg.Schema == nil {
		cfg.Schema = itSchema(t)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 100 * time.Millisecond
	}
	srv, err := netstream.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ctx, tcpLn, nil); err != nil {
			t.Logf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Error("server did not shut down")
		}
	})
	return srv, tcpLn.Addr().String()
}

func itServerConfig(t *testing.T, seed int64, n int) netstream.Config {
	t.Helper()
	schema := itSchema(t)
	return netstream.Config{
		Schema: schema,
		Proc:   itProcess(seed),
		NewSource: func() (stream.Source, error) {
			return itSource(schema, n), nil
		},
		Reorder: 1,
		Buffer:  64,
		Replay:  1 << 16,
	}
}

// gateSource blocks the first Next until the gate opens, so a test can
// subscribe clients before the pipeline produces anything.
type gateSource struct {
	stream.Source
	gate   <-chan struct{}
	opened atomic.Bool
}

func (g *gateSource) Next() (stream.Tuple, error) {
	if !g.opened.Load() {
		<-g.gate
		g.opened.Store(true)
	}
	return g.Source.Next()
}

func sameWireTuples(t *testing.T, label string, got, want []stream.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := netstream.EncodeTuple(got[i]), netstream.EncodeTuple(want[i])
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: tuple %d differs:\ngot  %+v\nwant %+v", label, i, g, w)
		}
	}
}

// TestDisconnectSlowThroughThrottledProxy: a subscriber whose network
// path trickles bytes (the proxy throttles the server→client pump, so
// the server sees partial TCP writes once its kernel buffer fills) must
// be cut by the disconnect-slow policy instead of stalling the
// pipeline, while a direct client still drains the full stream from
// the replay ring.
func TestDisconnectSlowThroughThrottledProxy(t *testing.T) {
	const seed, n = 71, 8000
	gate := make(chan struct{})
	reg := obs.NewRegistry()
	cfg := itServerConfig(t, seed, n)
	inner := cfg.NewSource
	cfg.NewSource = func() (stream.Source, error) {
		src, err := inner()
		if err != nil {
			return nil, err
		}
		return &gateSource{Source: src, gate: gate}, nil
	}
	cfg.Policy = netstream.PolicyDisconnectSlow
	cfg.Buffer = 8
	cfg.Reg = reg
	srv, tcpAddr := startITServer(t, cfg)

	proxy, err := NewProxy("127.0.0.1:0", ProxyConfig{
		Target:              tcpAddr,
		Seed:                seed,
		ThrottleBytesPerSec: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Subscribe through the throttled path before opening the gate. The
	// subscription request itself is tiny (client→server traffic is not
	// throttled), so the hello round-trips; only the tuple flood stalls.
	slow, err := netstream.Dial(proxy.Addr(), netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Stop()
	go func() {
		// Drain whatever trickles through so the proxy itself never
		// backpressures; the bottleneck stays at its throttled pump.
		for {
			if _, err := slow.Next(); err != nil {
				return
			}
		}
	}()
	close(gate)

	select {
	case <-srv.PipelineDone():
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline stalled behind the throttled client under disconnect-slow")
	}
	if err := srv.PipelineErr(); err != nil {
		t.Fatalf("pipeline error: %v", err)
	}
	if got := reg.Snapshot().Gauges["icewafl_net_slow_disconnects_total"]; got == 0 {
		t.Error("expected the throttled client to be disconnected by policy")
	}

	fast, err := netstream.Dial(tcpAddr, netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Stop()
	tuples, err := stream.Drain(fast)
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != n {
		t.Fatalf("fast client got %d tuples, want %d", len(tuples), n)
	}
}

// TestClientResumeAcrossMidFrameKills: the proxy hard-kills every
// connection part-way through a frame; a ClientSource wrapped in
// RetrySource must reconnect with from_seq resume and still observe
// the complete stream with no duplicates and no gaps.
func TestClientResumeAcrossMidFrameKills(t *testing.T) {
	const seed, n = 73, 3000
	want := itReference(t, seed, n)

	_, tcpAddr := startITServer(t, itServerConfig(t, seed, n))

	proxy, err := NewProxy("127.0.0.1:0", ProxyConfig{
		Target:         tcpAddr,
		Seed:           seed,
		KillAfterBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	cs, err := netstream.Dial(proxy.Addr(), netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Stop()
	retry := stream.NewRetrySource(cs, stream.RetryPolicy{
		MaxRetries: 8,
		BaseDelay:  time.Millisecond,
		MaxDelay:   10 * time.Millisecond,
	})
	got, err := stream.Drain(retry)
	if err != nil {
		t.Fatalf("drain through killing proxy: %v", err)
	}
	sameWireTuples(t, "dirty-through-kills", got, want)
	if proxy.Kills() == 0 {
		t.Error("proxy never killed a connection; the fault schedule did not engage")
	}
	if cs.Reconnects() == 0 {
		t.Error("client never reconnected; resume path untested")
	}
}

// TestPartialWriteKillDuringSubscribe: kills that land inside the hello
// frame itself (budget smaller than the handshake) surface as retryable
// connect errors, and the retry layer eventually gets through when the
// path heals.
func TestPartialWriteKillDuringSubscribe(t *testing.T) {
	const seed, n = 79, 200
	want := itReference(t, seed, n)

	_, tcpAddr := startITServer(t, itServerConfig(t, seed, n))

	// The hello frame carries the JSON schema document; 64 bytes is
	// always mid-hello, so the first dial through this proxy fails.
	proxy, err := NewProxy("127.0.0.1:0", ProxyConfig{
		Target:         tcpAddr,
		Seed:           seed,
		KillAfterBytes: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netstream.DialTimeout(proxy.Addr(), netstream.ChannelDirty, 2*time.Second); err == nil {
		t.Fatal("dial through a mid-hello kill should fail")
	}
	if proxy.Kills() == 0 {
		t.Error("expected a kill inside the hello frame")
	}
	proxy.Close()

	// The path heals: a direct dial drains the full run.
	cs, err := netstream.Dial(tcpAddr, netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Stop()
	got, err := stream.Drain(cs)
	if err != nil {
		t.Fatal(err)
	}
	sameWireTuples(t, "after-heal", got, want)
}
