package rng

// State is the full serialisable state of a Stream. Capturing and
// restoring it is the basis of deterministic checkpoint/resume: a resumed
// pollution run restores every RNG stream to its checkpointed state, so
// the sequence of random draws — and therefore the polluted stream — is
// identical to an uninterrupted run.
type State struct {
	S        [4]uint64 `json:"s"`
	HasSpare bool      `json:"has_spare,omitempty"`
	Spare    float64   `json:"spare,omitempty"`
}

// State returns a copy of the stream's current state.
func (s *Stream) State() State {
	return State{S: s.s, HasSpare: s.hasSpare, Spare: s.spare}
}

// SetState overwrites the stream's state with a previously captured one.
func (s *Stream) SetState(st State) {
	s.s = st.S
	s.hasSpare = st.HasSpare
	s.spare = st.Spare
}
