package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, "noise")
	b := Derive(7, "delay")
	c := Derive(7, "noise")
	for i := 0; i < 100; i++ {
		av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
		if av != cv {
			t.Fatalf("same-name derivation diverged at draw %d", i)
		}
		if av == bv {
			t.Fatalf("different-name derivation collided at draw %d", i)
		}
	}
}

func TestChildDeriveDoesNotConsumeParentState(t *testing.T) {
	p1 := New(99)
	p2 := New(99)
	_ = p1.Derive("child")
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatalf("deriving a child perturbed the parent at draw %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %g far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdgeCases(t *testing.T) {
	s := New(6)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if s.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !s.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(7)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %g", freq)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Uniform(-2,5) out of range: %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean %g far from 10", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("Normal variance %g far from 4", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(10)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := s.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolIsFair(t *testing.T) {
	s := New(11)
	const n = 100000
	trues := 0
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	freq := float64(trues) / n
	if math.Abs(freq-0.5) > 0.01 {
		t.Fatalf("Bool true-frequency %g", freq)
	}
}
