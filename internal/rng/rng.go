// Package rng provides deterministic, named random-number streams.
//
// Icewafl's pollution process is reproducible: running the same pipeline
// with the same seed over the same input must yield an identical polluted
// stream (paper §2.3). To keep that guarantee while still allowing several
// polluters — and several parallel sub-streams — to draw randomness
// independently, every consumer obtains its own Stream derived from a root
// seed and a stable name. Two streams with different names never share
// state, so adding a polluter to one sub-pipeline cannot perturb the
// random draws of another.
package rng

import (
	"hash/fnv"
	"math"
)

// Stream is a deterministic pseudo-random number generator. It implements
// the xoshiro256** algorithm, seeded through SplitMix64 so that even
// adjacent seeds produce uncorrelated sequences. Stream is not safe for
// concurrent use; derive one stream per goroutine instead.
type Stream struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
	// init is the construction-time state, so a stream can rewind to its
	// first draw (per-run pipeline reset).
	init [4]uint64
}

// New returns a Stream seeded from seed.
func New(seed int64) *Stream {
	st := &Stream{}
	st.reseed(uint64(seed))
	return st
}

// Derive returns an independent Stream obtained from seed and a stable
// name. The same (seed, name) pair always yields the same stream.
func Derive(seed int64, name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(name))
	st := &Stream{}
	st.reseed(uint64(seed) ^ h.Sum64())
	return st
}

// Derive returns a child stream whose sequence is determined by the parent
// seed material and name, without consuming state from the parent.
func (s *Stream) Derive(name string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(name))
	child := &Stream{}
	child.reseed(s.s[0] ^ s.s[2] ^ h.Sum64())
	return child
}

func (s *Stream) reseed(seed uint64) {
	// SplitMix64 expansion of the seed into four words of state.
	x := seed
	for i := 0; i < 4; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
	s.hasSpare = false
	s.init = s.s
}

// Reset rewinds the stream to its construction-time state, so the next
// draw repeats the very first draw. It is the basis of per-run pipeline
// resets: re-running a compiled pipeline after Reset replays exactly the
// random sequence of its first run.
func (s *Stream) Reset() {
	s.s = s.init
	s.hasSpare = false
	s.spare = 0
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the underlying xoshiro256** sequence.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Fill writes the next len(dst) values of the sequence into dst — the
// batch-level draw-ahead primitive of the columnar hot path. One Fill
// call is exactly equivalent to len(dst) consecutive Uint64 calls: a
// consumer that pre-counts its draws for a micro-batch and fills once
// observes the same sequence as per-row drawing, keeping columnar
// execution byte-identical to tuple-wise execution. The generator state
// is loaded into locals for the duration of the sweep, so the per-draw
// cost drops to pure register arithmetic.
func (s *Stream) Fill(dst []uint64) {
	s0, s1, s2, s3 := s.s[0], s.s[1], s.s[2], s.s[3]
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
}

// ToFloat64 maps one Uint64 draw to the uniform [0, 1) value Float64
// would have produced from it, so draw-ahead consumers convert filled
// words without touching generator state.
func ToFloat64(u uint64) float64 {
	return float64(u>>11) / (1 << 53)
}

// FillFloat64 writes the next len(dst) uniform [0, 1) values into dst,
// equivalent to len(dst) consecutive Float64 calls.
func (s *Stream) FillFloat64(dst []float64) {
	s0, s1, s2, s3 := s.s[0], s.s[1], s.s[2], s.s[3]
	for i := range dst {
		dst[i] = float64((rotl(s1*5, 7)*9)>>11) / (1 << 53)
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	s.s[0], s.s[1], s.s[2], s.s[3] = s0, s1, s2, s3
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit integer.
func (s *Stream) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Bool returns the outcome of a fair coin toss.
func (s *Stream) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Uniform returns a uniform value in [a, b).
func (s *Stream) Uniform(a, b float64) float64 {
	return a + (b-a)*s.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box-Muller transform.
func (s *Stream) Normal(mean, stddev float64) float64 {
	if s.hasSpare {
		s.hasSpare = false
		return mean + stddev*s.spare
	}
	var u, v, r float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r = u*u + v*v
		if r > 0 && r < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r) / r)
	s.spare = v * f
	s.hasSpare = true
	return mean + stddev*u*f
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
