package rng

import "testing"

// Fill must be indistinguishable from repeated Uint64 calls: the columnar
// runner's byte-identity guarantee rests on draw-ahead preserving the
// exact sequence.
func TestFillMatchesSequentialUint64(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		a := New(42)
		b := New(42)
		want := make([]uint64, n)
		for i := range want {
			want[i] = a.Uint64()
		}
		got := make([]uint64, n)
		b.Fill(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: Fill[%d] = %d, sequential Uint64 = %d", n, i, got[i], want[i])
			}
		}
		// The streams must also agree on the draw *after* the sweep.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: post-fill state diverged", n)
		}
	}
}

func TestFillFloat64MatchesSequentialFloat64(t *testing.T) {
	a := Derive(7, "cond")
	b := Derive(7, "cond")
	want := make([]float64, 257)
	for i := range want {
		want[i] = a.Float64()
	}
	got := make([]float64, 257)
	b.FillFloat64(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FillFloat64[%d] = %g, sequential Float64 = %g", i, got[i], want[i])
		}
	}
	if a.Float64() != b.Float64() {
		t.Fatal("post-fill state diverged")
	}
}

func TestToFloat64MatchesFloat64(t *testing.T) {
	a := New(-3)
	b := New(-3)
	for i := 0; i < 100; i++ {
		if got, want := ToFloat64(b.Uint64()), a.Float64(); got != want {
			t.Fatalf("draw %d: ToFloat64 = %g, Float64 = %g", i, got, want)
		}
	}
}

// Interleaving Fill with scalar draws must still track the scalar-only
// sequence — the runner fills per batch, then keeps drawing per row.
func TestFillInterleavedWithScalarDraws(t *testing.T) {
	a := New(99)
	b := New(99)
	var got, want []uint64
	buf := make([]uint64, 5)
	for round := 0; round < 10; round++ {
		b.Fill(buf)
		got = append(got, buf...)
		got = append(got, b.Uint64())
		for i := 0; i < 6; i++ {
			want = append(want, a.Uint64())
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d diverged", i)
		}
	}
}
