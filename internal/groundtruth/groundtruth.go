// Package groundtruth compares a polluted stream against the retained
// clean stream and the pollution log. The unique tuple IDs assigned
// during preparation make the clean tuple of every polluted tuple
// addressable, which is exactly what the paper's preparation step exists
// for: "The assigned ID enables direct comparison between the original
// (clean) data and its polluted version, serving as a ground truth
// reference for each tuple."
package groundtruth

import (
	"sort"

	"icewafl/internal/stream"
)

// TupleDiff describes how one tuple changed under pollution.
type TupleDiff struct {
	ID uint64
	// ChangedAttrs lists attributes whose value differs from the clean
	// tuple, in schema order.
	ChangedAttrs []string
	// Delayed reports that the delivery time moved relative to τ.
	Delayed bool
	// Dropped reports that the tuple is absent from the polluted stream.
	Dropped bool
	// Duplicated counts extra occurrences beyond the first (overlapping
	// sub-streams produce these).
	Duplicated int
}

// Report summarises a clean-vs-polluted comparison.
type Report struct {
	Diffs []TupleDiff
	// CleanTuples and PollutedTuples are the input sizes.
	CleanTuples, PollutedTuples int
}

// ChangedTupleIDs returns the IDs of tuples with at least one changed
// attribute, a delay, or a drop.
func (r *Report) ChangedTupleIDs() []uint64 {
	var out []uint64
	for _, d := range r.Diffs {
		if len(d.ChangedAttrs) > 0 || d.Delayed || d.Dropped {
			out = append(out, d.ID)
		}
	}
	return out
}

// CountByAttr tallies value changes per attribute.
func (r *Report) CountByAttr() map[string]int {
	out := make(map[string]int)
	for _, d := range r.Diffs {
		for _, a := range d.ChangedAttrs {
			out[a]++
		}
	}
	return out
}

// Diff compares the clean stream with the polluted stream by tuple ID.
func Diff(clean, polluted []stream.Tuple) *Report {
	byID := make(map[uint64][]stream.Tuple, len(polluted))
	for _, t := range polluted {
		byID[t.ID] = append(byID[t.ID], t)
	}
	rep := &Report{CleanTuples: len(clean), PollutedTuples: len(polluted)}
	for _, c := range clean {
		versions := byID[c.ID]
		if len(versions) == 0 {
			rep.Diffs = append(rep.Diffs, TupleDiff{ID: c.ID, Dropped: true})
			continue
		}
		d := TupleDiff{ID: c.ID, Duplicated: len(versions) - 1}
		p := versions[0]
		schema := c.Schema()
		for i := 0; i < schema.Len(); i++ {
			if !c.At(i).Equal(p.At(i)) {
				d.ChangedAttrs = append(d.ChangedAttrs, schema.Field(i).Name)
			}
		}
		if !p.Arrival.Equal(p.EventTime) {
			d.Delayed = true
		}
		if len(d.ChangedAttrs) > 0 || d.Delayed || d.Dropped || d.Duplicated > 0 {
			rep.Diffs = append(rep.Diffs, d)
		}
	}
	sort.Slice(rep.Diffs, func(i, j int) bool { return rep.Diffs[i].ID < rep.Diffs[j].ID })
	return rep
}

// Score holds detection-quality metrics of an error detector (e.g. a DQ
// tool's expectation) against ground truth.
type Score struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// Precision returns TP / (TP + FP), 1 when nothing was flagged.
func (s Score) Precision() float64 {
	if s.TruePositives+s.FalsePositives == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(s.TruePositives+s.FalsePositives)
}

// Recall returns TP / (TP + FN), 1 when nothing was polluted.
func (s Score) Recall() float64 {
	if s.TruePositives+s.FalseNegatives == 0 {
		return 1
	}
	return float64(s.TruePositives) / float64(s.TruePositives+s.FalseNegatives)
}

// F1 returns the harmonic mean of precision and recall.
func (s Score) F1() float64 {
	p, r := s.Precision(), s.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Evaluate scores a detector's flagged tuple IDs against the set of truly
// polluted tuple IDs.
func Evaluate(flagged []uint64, truth map[uint64]bool) Score {
	var s Score
	flaggedSet := make(map[uint64]bool, len(flagged))
	for _, id := range flagged {
		if flaggedSet[id] {
			continue
		}
		flaggedSet[id] = true
		if truth[id] {
			s.TruePositives++
		} else {
			s.FalsePositives++
		}
	}
	for id := range truth {
		if !flaggedSet[id] {
			s.FalseNegatives++
		}
	}
	return s
}
