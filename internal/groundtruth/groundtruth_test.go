package groundtruth

import (
	"testing"
	"time"

	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "a", Kind: stream.KindFloat},
	stream.Field{Name: "b", Kind: stream.KindFloat},
)

func mk(id uint64, a, b float64) stream.Tuple {
	ts := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(id) * time.Hour)
	t := stream.NewTuple(schema, []stream.Value{stream.Time(ts), stream.Float(a), stream.Float(b)})
	t.ID = id
	t.EventTime = ts
	t.Arrival = ts
	return t
}

func TestDiffDetectsChanges(t *testing.T) {
	clean := []stream.Tuple{mk(1, 1, 1), mk(2, 2, 2), mk(3, 3, 3)}
	polluted := []stream.Tuple{mk(1, 1, 1), mk(2, 99, 2), mk(3, 3, 88)}
	rep := Diff(clean, polluted)
	if len(rep.Diffs) != 2 {
		t.Fatalf("diffs %v", rep.Diffs)
	}
	if rep.Diffs[0].ID != 2 || rep.Diffs[0].ChangedAttrs[0] != "a" {
		t.Fatalf("first diff %+v", rep.Diffs[0])
	}
	if rep.Diffs[1].ID != 3 || rep.Diffs[1].ChangedAttrs[0] != "b" {
		t.Fatalf("second diff %+v", rep.Diffs[1])
	}
	byAttr := rep.CountByAttr()
	if byAttr["a"] != 1 || byAttr["b"] != 1 {
		t.Fatalf("count by attr %v", byAttr)
	}
	ids := rep.ChangedTupleIDs()
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("changed ids %v", ids)
	}
}

func TestDiffDetectsDropsDelaysDuplicates(t *testing.T) {
	clean := []stream.Tuple{mk(1, 1, 1), mk(2, 2, 2), mk(3, 3, 3)}
	delayed := mk(2, 2, 2)
	delayed.Arrival = delayed.EventTime.Add(time.Hour)
	polluted := []stream.Tuple{mk(1, 1, 1), mk(1, 1, 1), delayed} // 3 dropped, 1 duplicated
	rep := Diff(clean, polluted)
	var drop, delay, dup *TupleDiff
	for i := range rep.Diffs {
		d := &rep.Diffs[i]
		switch d.ID {
		case 1:
			dup = d
		case 2:
			delay = d
		case 3:
			drop = d
		}
	}
	if drop == nil || !drop.Dropped {
		t.Fatalf("drop not detected: %+v", rep.Diffs)
	}
	if delay == nil || !delay.Delayed {
		t.Fatalf("delay not detected: %+v", rep.Diffs)
	}
	if dup == nil || dup.Duplicated != 1 {
		t.Fatalf("duplicate not detected: %+v", rep.Diffs)
	}
	ids := rep.ChangedTupleIDs()
	// Drop and delay count as changes; a pure duplicate does not.
	if len(ids) != 2 {
		t.Fatalf("changed ids %v", ids)
	}
}

func TestDiffIdenticalStreams(t *testing.T) {
	clean := []stream.Tuple{mk(1, 1, 1), mk(2, 2, 2)}
	rep := Diff(clean, clean)
	if len(rep.Diffs) != 0 || len(rep.ChangedTupleIDs()) != 0 {
		t.Fatalf("diffs on identical streams: %+v", rep.Diffs)
	}
	if rep.CleanTuples != 2 || rep.PollutedTuples != 2 {
		t.Fatal("sizes")
	}
}

func TestScoreMetrics(t *testing.T) {
	truth := map[uint64]bool{1: true, 2: true, 3: true, 4: true}
	flagged := []uint64{1, 2, 9} // 2 TP, 1 FP, 2 FN
	s := Evaluate(flagged, truth)
	if s.TruePositives != 2 || s.FalsePositives != 1 || s.FalseNegatives != 2 {
		t.Fatalf("%+v", s)
	}
	if p := s.Precision(); p != 2.0/3 {
		t.Fatalf("precision %g", p)
	}
	if r := s.Recall(); r != 0.5 {
		t.Fatalf("recall %g", r)
	}
	f1 := s.F1()
	want := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if diff := f1 - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("f1 %g want %g", f1, want)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	empty := Evaluate(nil, nil)
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatal("empty score should be perfect")
	}
	if (Score{}).F1() != 1 {
		t.Fatal("empty F1 should be perfect")
	}
	// All flags wrong and all truths missed: F1 collapses to 0.
	worst := Evaluate([]uint64{9}, map[uint64]bool{1: true})
	if worst.F1() != 0 {
		t.Fatalf("worst-case F1 %g", worst.F1())
	}
	// Duplicate flags count once.
	s := Evaluate([]uint64{1, 1, 1}, map[uint64]bool{1: true})
	if s.TruePositives != 1 || s.FalsePositives != 0 {
		t.Fatalf("dedup: %+v", s)
	}
}
