// Package anomaly implements statistical online error detectors — the
// second class of data-quality tooling the paper's benchmark streams are
// built for (next to expectation-based tools like Great Expectations).
// Each detector consumes a stream tuple-wise and flags suspicious rows;
// against Icewafl's pollution log the detectors' recall per error type
// becomes measurable.
package anomaly

import (
	"math"
	"time"

	"icewafl/internal/stream"
)

// Detector inspects a stream tuple-wise and flags anomalies.
type Detector interface {
	// Name identifies the detector.
	Name() string
	// Observe consumes one tuple and reports whether it is anomalous.
	Observe(t stream.Tuple) bool
}

// Run drains src through det and returns the flagged tuple IDs.
func Run(det Detector, tuples []stream.Tuple) []uint64 {
	var flagged []uint64
	for _, t := range tuples {
		if det.Observe(t) {
			flagged = append(flagged, t.ID)
		}
	}
	return flagged
}

// RollingZScore flags values deviating more than Threshold standard
// deviations from the mean of the last Window observations. NULLs are
// flagged when FlagNulls is set, and never enter the statistics.
type RollingZScore struct {
	Attr      string
	Window    int
	Threshold float64
	FlagNulls bool

	buf []float64
	pos int
}

// NewRollingZScore returns a detector over the named attribute.
func NewRollingZScore(attr string, window int, threshold float64) *RollingZScore {
	if window < 2 {
		window = 2
	}
	return &RollingZScore{Attr: attr, Window: window, Threshold: threshold, buf: make([]float64, 0, window)}
}

// Name implements Detector.
func (d *RollingZScore) Name() string { return "rolling_zscore" }

// Observe implements Detector.
func (d *RollingZScore) Observe(t stream.Tuple) bool {
	v, ok := t.Get(d.Attr)
	if !ok {
		return false
	}
	if v.IsNull() {
		return d.FlagNulls
	}
	f, isNum := v.AsFloat()
	if !isNum {
		return false
	}
	anomalous := false
	if len(d.buf) >= 2 {
		mean, sd := meanStd(d.buf)
		if sd > 0 && math.Abs(f-mean) > d.Threshold*sd {
			anomalous = true
		}
	}
	// Anomalous values stay out of the statistics so a single outlier
	// cannot widen the detector's tolerance.
	if !anomalous {
		d.push(f)
	}
	return anomalous
}

func (d *RollingZScore) push(f float64) {
	if len(d.buf) < d.Window {
		d.buf = append(d.buf, f)
		return
	}
	d.buf[d.pos] = f
	d.pos = (d.pos + 1) % d.Window
}

// SeasonalZScore keeps separate statistics per hour of day, so a value
// that is normal at noon but absurd at midnight is caught — the
// seasonal-aware analogue of RollingZScore.
type SeasonalZScore struct {
	Attr      string
	Threshold float64
	MinCount  int

	count [24]int
	mean  [24]float64
	m2    [24]float64
}

// NewSeasonalZScore returns a detector over the named attribute. It
// needs MinCount observations per hour bucket before flagging (default
// 10).
func NewSeasonalZScore(attr string, threshold float64) *SeasonalZScore {
	return &SeasonalZScore{Attr: attr, Threshold: threshold, MinCount: 10}
}

// Name implements Detector.
func (d *SeasonalZScore) Name() string { return "seasonal_zscore" }

// Observe implements Detector.
func (d *SeasonalZScore) Observe(t stream.Tuple) bool {
	f, ok := t.GetFloat(d.Attr)
	if !ok {
		return false
	}
	ts, tok := t.Timestamp()
	if !tok {
		ts = t.EventTime
	}
	h := ts.Hour()
	anomalous := false
	if d.count[h] >= d.MinCount {
		sd := math.Sqrt(d.m2[h] / float64(d.count[h]))
		if sd > 0 && math.Abs(f-d.mean[h]) > d.Threshold*sd {
			anomalous = true
		}
	}
	if !anomalous {
		d.count[h]++
		delta := f - d.mean[h]
		d.mean[h] += delta / float64(d.count[h])
		d.m2[h] += delta * (f - d.mean[h])
	}
	return anomalous
}

// RateOfChange flags jumps: |v_t − v_{t−1}| > MaxDelta. It catches scale
// errors and unit conversions that in-range detectors miss.
type RateOfChange struct {
	Attr     string
	MaxDelta float64

	prev    float64
	hasPrev bool
}

// NewRateOfChange returns a jump detector.
func NewRateOfChange(attr string, maxDelta float64) *RateOfChange {
	return &RateOfChange{Attr: attr, MaxDelta: maxDelta}
}

// Name implements Detector.
func (d *RateOfChange) Name() string { return "rate_of_change" }

// Observe implements Detector.
func (d *RateOfChange) Observe(t stream.Tuple) bool {
	f, ok := t.GetFloat(d.Attr)
	if !ok {
		return false
	}
	anomalous := d.hasPrev && math.Abs(f-d.prev) > d.MaxDelta
	if !anomalous {
		d.prev = f
		d.hasPrev = true
	}
	return anomalous
}

// FrozenRun flags runs of identical values longer than MaxRun — the
// stuck-sensor (frozen value) detector.
type FrozenRun struct {
	Attr   string
	MaxRun int

	last    float64
	hasLast bool
	run     int
}

// NewFrozenRun returns a stuck-value detector.
func NewFrozenRun(attr string, maxRun int) *FrozenRun {
	if maxRun < 1 {
		maxRun = 1
	}
	return &FrozenRun{Attr: attr, MaxRun: maxRun}
}

// Name implements Detector.
func (d *FrozenRun) Name() string { return "frozen_run" }

// Observe implements Detector.
func (d *FrozenRun) Observe(t stream.Tuple) bool {
	f, ok := t.GetFloat(d.Attr)
	if !ok {
		return false
	}
	if d.hasLast && f == d.last {
		d.run++
	} else {
		d.run = 1
	}
	d.last, d.hasLast = f, true
	return d.run > d.MaxRun
}

// GapDetector flags tuples whose timestamp attribute regresses or jumps
// by more than MaxGap relative to its predecessor — delayed tuples and
// losses show up here.
type GapDetector struct {
	MaxGap time.Duration

	prev    time.Time
	hasPrev bool
}

// NewGapDetector returns a timestamp-cadence detector.
func NewGapDetector(maxGap time.Duration) *GapDetector {
	return &GapDetector{MaxGap: maxGap}
}

// Name implements Detector.
func (d *GapDetector) Name() string { return "gap_detector" }

// Observe implements Detector.
func (d *GapDetector) Observe(t stream.Tuple) bool {
	ts, ok := t.Timestamp()
	if !ok {
		return false
	}
	anomalous := false
	if d.hasPrev {
		if ts.Before(d.prev) || ts.Sub(d.prev) > d.MaxGap {
			anomalous = true
		}
	}
	// Regressions keep the high-water mark so one late tuple does not
	// cascade into flagging its successors.
	if !d.hasPrev || ts.After(d.prev) {
		d.prev = ts
		d.hasPrev = true
	}
	return anomalous
}

// Ensemble combines detectors with OR semantics: a tuple is anomalous if
// any member flags it. All members observe every tuple.
type Ensemble struct {
	Members []Detector
	// Label overrides the generated name when set.
	Label string
}

// Name implements Detector.
func (e Ensemble) Name() string {
	if e.Label != "" {
		return e.Label
	}
	out := "ensemble("
	for i, m := range e.Members {
		if i > 0 {
			out += ","
		}
		out += m.Name()
	}
	return out + ")"
}

// Observe implements Detector.
func (e Ensemble) Observe(t stream.Tuple) bool {
	any := false
	for _, m := range e.Members {
		if m.Observe(t) {
			any = true
		}
	}
	return any
}

func meanStd(xs []float64) (float64, float64) {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return m, math.Sqrt(v / float64(len(xs)))
}
