package anomaly_test

import (
	"fmt"
	"time"

	"icewafl/internal/anomaly"
	"icewafl/internal/stream"
)

// ExampleEnsemble combines specialised detectors so that a value spike,
// a missing value, and a stuck run are all flagged in one pass.
func ExampleEnsemble() {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	values := []stream.Value{
		stream.Float(10), stream.Float(11), stream.Float(10), stream.Float(11),
		stream.Float(500), // spike
		stream.Float(10), stream.Float(11),
		stream.Null(), // dropout
		stream.Float(10),
		stream.Float(7), stream.Float(7), stream.Float(7), stream.Float(7), // stuck
	}
	tuples := make([]stream.Tuple, len(values))
	for i, v := range values {
		tuples[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Minute)), v,
		})
		tuples[i].ID = uint64(i + 1)
	}

	nullAware := anomaly.NewRollingZScore("v", 16, 6)
	nullAware.FlagNulls = true
	detector := anomaly.Ensemble{
		Label: "monitor",
		Members: []anomaly.Detector{
			nullAware,
			anomaly.NewRateOfChange("v", 100),
			anomaly.NewFrozenRun("v", 2),
		},
	}
	// The spike (5) and the dropout (8) are caught by the z-score; the
	// stuck run is caught twice over — the z-score flags the level shift
	// to 7 (10, 11) and the frozen-run detector the repetition (12, 13).
	fmt.Println("flagged tuple IDs:", anomaly.Run(detector, tuples))
	// Output:
	// flagged tuple IDs: [5 8 10 11 12 13]
}
