package anomaly

import (
	"testing"
	"time"

	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "v", Kind: stream.KindFloat},
)

func mkTuples(values []float64, step time.Duration) []stream.Tuple {
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	out := make([]stream.Tuple, len(values))
	for i, v := range values {
		out[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * step)), stream.Float(v),
		})
		out[i].ID = uint64(i + 1)
	}
	return out
}

func TestRollingZScoreFlagsOutlier(t *testing.T) {
	r := rng.New(1)
	values := make([]float64, 200)
	for i := range values {
		values[i] = r.Normal(10, 1)
	}
	values[150] = 100 // planted outlier
	tuples := mkTuples(values, time.Minute)
	flagged := Run(NewRollingZScore("v", 50, 5), tuples)
	if len(flagged) != 1 || flagged[0] != 151 {
		t.Fatalf("flagged %v", flagged)
	}
}

func TestRollingZScoreOutlierDoesNotPoisonStats(t *testing.T) {
	// After the outlier, normal values must not be flagged — the outlier
	// stayed out of the window statistics.
	r := rng.New(2)
	values := make([]float64, 100)
	for i := range values {
		values[i] = r.Normal(0, 1)
	}
	values[50] = 1000
	tuples := mkTuples(values, time.Minute)
	flagged := Run(NewRollingZScore("v", 30, 6), tuples)
	if len(flagged) != 1 {
		t.Fatalf("flagged %v", flagged)
	}
}

func TestRollingZScoreNulls(t *testing.T) {
	tuples := mkTuples([]float64{1, 2, 3}, time.Minute)
	tuples[1].Set("v", stream.Null())
	d := NewRollingZScore("v", 10, 3)
	d.FlagNulls = true
	flagged := Run(d, tuples)
	if len(flagged) != 1 || flagged[0] != 2 {
		t.Fatalf("flagged %v", flagged)
	}
	quiet := NewRollingZScore("v", 10, 3)
	if len(Run(quiet, tuples)) != 0 {
		t.Fatal("null flagged despite FlagNulls=false")
	}
}

func TestSeasonalZScore(t *testing.T) {
	// Value 30 is normal at noon, absurd at midnight.
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	var tuples []stream.Tuple
	id := uint64(1)
	r := rng.New(3)
	for day := 0; day < 30; day++ {
		for _, h := range []int{0, 12} {
			mean := 5.0
			if h == 12 {
				mean = 30.0
			}
			tp := stream.NewTuple(schema, []stream.Value{
				stream.Time(base.AddDate(0, 0, day).Add(time.Duration(h) * time.Hour)),
				stream.Float(r.Normal(mean, 1)),
			})
			tp.ID = id
			id++
			tuples = append(tuples, tp)
		}
	}
	// Plant: a noon-level value at midnight on day 25.
	tuples[50].Set("v", stream.Float(30))
	flagged := Run(NewSeasonalZScore("v", 6), tuples)
	found := false
	for _, f := range flagged {
		if f == tuples[50].ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("seasonal anomaly missed; flagged %v", flagged)
	}
	// A global (non-seasonal) z-score with the same threshold misses it:
	// 30 is a perfectly normal value globally.
	global := Run(NewRollingZScore("v", 60, 6), tuples)
	for _, f := range global {
		if f == tuples[50].ID {
			t.Fatal("global detector should miss the seasonal anomaly at this threshold")
		}
	}
}

func TestRateOfChangeCatchesScaleError(t *testing.T) {
	values := []float64{10, 11, 10, 1.25, 10, 11} // x0.125 scale error at index 3
	tuples := mkTuples(values, time.Hour)
	flagged := Run(NewRateOfChange("v", 5), tuples)
	if len(flagged) != 1 || flagged[0] != 4 {
		t.Fatalf("flagged %v", flagged)
	}
}

func TestFrozenRunDetector(t *testing.T) {
	values := []float64{1, 2, 7, 7, 7, 7, 3, 4}
	tuples := mkTuples(values, time.Minute)
	flagged := Run(NewFrozenRun("v", 2), tuples)
	// Runs of 7 longer than 2: indices 4 and 5 (IDs 5, 6).
	if len(flagged) != 2 || flagged[0] != 5 || flagged[1] != 6 {
		t.Fatalf("flagged %v", flagged)
	}
}

func TestGapDetector(t *testing.T) {
	tuples := mkTuples(make([]float64, 6), 15*time.Minute)
	// Tuple 3 regresses (delayed), tuple 5 jumps far ahead (loss).
	ts2, _ := tuples[1].Timestamp()
	tuples[3].SetTimestamp(ts2.Add(-time.Hour))
	ts4, _ := tuples[4].Timestamp()
	tuples[5].SetTimestamp(ts4.Add(3 * time.Hour))
	flagged := Run(NewGapDetector(30*time.Minute), tuples)
	if len(flagged) != 2 || flagged[0] != 4 || flagged[1] != 6 {
		t.Fatalf("flagged %v", flagged)
	}
}

func TestEnsemble(t *testing.T) {
	values := []float64{10, 10, 10, 10, 10, 10, 200, 10, 10, 10}
	tuples := mkTuples(values, time.Minute)
	tuples[8].Set("v", stream.Null())
	null := NewRollingZScore("v", 10, 4)
	null.FlagNulls = true
	e := Ensemble{Members: []Detector{null, NewRateOfChange("v", 50)}}
	flagged := Run(e, tuples)
	// The spike (ID 7) is caught by both; the null (ID 9) by the first.
	if len(flagged) != 2 || flagged[0] != 7 || flagged[1] != 9 {
		t.Fatalf("flagged %v", flagged)
	}
	if e.Name() != "ensemble(rolling_zscore,rate_of_change)" {
		t.Fatalf("name %q", e.Name())
	}
}

func TestDetectorsIgnoreMissingAttr(t *testing.T) {
	tuples := mkTuples([]float64{1, 2}, time.Minute)
	dets := []Detector{
		NewRollingZScore("zzz", 10, 3),
		NewSeasonalZScore("zzz", 3),
		NewRateOfChange("zzz", 1),
		NewFrozenRun("zzz", 1),
	}
	for _, d := range dets {
		if got := Run(d, tuples); len(got) != 0 {
			t.Fatalf("%s flagged %v on missing attribute", d.Name(), got)
		}
	}
}

func TestDetectorNames(t *testing.T) {
	names := map[string]Detector{
		"rolling_zscore":  NewRollingZScore("v", 10, 3),
		"seasonal_zscore": NewSeasonalZScore("v", 3),
		"rate_of_change":  NewRateOfChange("v", 1),
		"frozen_run":      NewFrozenRun("v", 1),
		"gap_detector":    NewGapDetector(time.Minute),
	}
	for want, d := range names {
		if d.Name() != want {
			t.Errorf("%T name %q", d, d.Name())
		}
	}
}
