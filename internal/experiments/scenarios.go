// Package experiments reproduces the paper's evaluation (§3): the three
// data-quality scenarios over the wearable stream (Figure 4, Table 1,
// §3.1.3), the forecasting-robustness study over the air-quality streams
// (Figures 6 and 7, Table 2), and the runtime-overhead measurement
// (Figure 8). The cmd/exp* binaries and the repository-level benchmarks
// are thin wrappers around this package.
package experiments

import (
	"time"

	"icewafl/internal/core"
	"icewafl/internal/dataset"
	"icewafl/internal/dq"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// SoftwareUpdateAt is the timestamp of the simulated erroneous software
// update: pollution applies to tuples recorded from 2016-02-27 on.
var SoftwareUpdateAt = time.Date(2016, 2, 27, 0, 0, 0, 0, time.UTC)

// RandomTemporalProcess builds the §3.1.1 scenario: NULL values injected
// into the Distance attribute with the sinusoidal daily probability
// p(t) = 0.25·cos(π/12·t) + 0.25, so the error rate peaks at midnight
// (0.5) and vanishes at noon.
func RandomTemporalProcess(seed int64) *core.Process {
	cond := core.NewRandom(core.SinusoidDaily(0.25, 0.25), rng.Derive(seed, "random-temporal/cond"))
	p := core.NewStandard("sinusoidal nulls", core.MissingValue{}, cond, "Distance")
	return core.NewProcess(core.NewPipeline(p))
}

// RandomTemporalSuite detects the §3.1.1 errors with
// expect_column_values_to_not_be_null on Distance.
func RandomTemporalSuite() *dq.Suite {
	return dq.NewSuite("random-temporal", dq.NotBeNull{Column: "Distance"})
}

// SoftwareUpdateProcess builds the Figure 5 scenario: a composite
// polluter gated on Time ≥ 2016-02-27 delegates to three children —
// km→cm unit conversion on Distance, precision-2 rounding on
// CaloriesBurned, and a nested composite that, for BPM > 100, first sets
// BPM to 0 and then (with probability 0.2) to NULL.
func SoftwareUpdateProcess(seed int64) *core.Process {
	bpmFix := core.NewComposite("wrong BPM measurement",
		core.Compare{Attr: "BPM", Op: core.OpGt, Value: stream.Float(100)},
		core.NewStandard("BPM set to 0", core.SetConstant{Value: stream.Float(0)}, nil, "BPM"),
		core.NewStandard("BPM set to null", core.MissingValue{},
			core.NewRandomConst(0.2, rng.Derive(seed, "software-update/bpm-null")), "BPM"),
	)
	update := core.NewComposite("software update",
		core.TimeInterval{From: SoftwareUpdateAt},
		core.NewStandard("Distance km to cm",
			&core.ScaleByFactor{Factor: core.Const(100000)}, nil, "Distance"),
		core.NewStandard("CaloriesBurned precision 2",
			core.RoundPrecision{Digits: 2}, nil, "CaloriesBurned"),
		bpmFix,
	)
	return core.NewProcess(core.NewPipeline(update))
}

// CaloriesRegex is the §3.1.2 regex for valid CaloriesBurned values: an
// integer, or a fraction with exactly three decimals ending in a non-zero
// digit — the precision the clean generator emits. The paper describes
// this as a pattern "that allows a precision p ≤ 3"; requiring the full
// three decimals is the sharpening needed for the rounded (precision-2)
// values to violate it.
const CaloriesRegex = `^\d+(\.\d{2}[1-9])?$`

// SoftwareUpdateSuite builds the four expectations of §3.1.2:
// (i) Steps ≥ Distance catches the km→cm conversion,
// (ii) the precision regex catches the CaloriesBurned rounding,
// (iii) a row-filtered multicolumn sum catches BPM set to 0 while the
// tracker recorded activity, and
// (iv) not-null catches BPM set to NULL.
func SoftwareUpdateSuite() *dq.Suite {
	regex, err := dq.NewMatchRegex("CaloriesBurned", CaloriesRegex)
	if err != nil {
		panic(err) // compile-time constant pattern
	}
	return dq.NewSuite("software-update",
		dq.PairAGreaterThanB{A: "Steps", B: "Distance", OrEqual: true},
		regex,
		dq.Where{
			Inner: dq.MulticolumnSumToEqual{
				Columns:   []string{"ActiveMinutes", "Distance", "Steps"},
				Total:     0,
				Tolerance: 1e-9,
			},
			Cond: dq.RowCondition{Column: "BPM", Op: "==", Value: stream.Float(0)},
		},
		dq.NotBeNull{Column: "BPM"},
	)
}

// BadNetworkProcess builds the §3.1.3 scenario: tuples recorded between
// 13:00 and 14:59 are delayed by one hour with probability 0.2.
func BadNetworkProcess(seed int64) *core.Process {
	cond := core.And{
		core.TimeOfDay{FromHour: 13, ToHour: 15},
		core.NewRandomConst(0.2, rng.Derive(seed, "bad-network/prob")),
	}
	p := core.NewStandard("network delay", core.DelayTuple{Delay: time.Hour}, cond)
	return core.NewProcess(core.NewPipeline(p))
}

// BadNetworkSuite detects delayed tuples with
// expect_column_values_to_be_increasing on the Time attribute.
func BadNetworkSuite() *dq.Suite {
	return dq.NewSuite("bad-network", dq.BeIncreasing{Column: "Time"})
}

// WearableSource returns a fresh source over the shared wearable stream.
// dataSeed fixes the synthetic data itself; pollution seeds vary per
// repetition while the data stays constant, as in the paper (one dataset,
// 50 pollution runs).
func WearableSource(dataSeed int64) stream.Source {
	return stream.NewSliceSource(dataset.WearableSchema(), dataset.Wearable(dataSeed))
}
