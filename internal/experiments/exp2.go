package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/dataset"
	"icewafl/internal/forecast"
	"icewafl/internal/plot"
	"icewafl/internal/rng"
	"icewafl/internal/stats"
	"icewafl/internal/stream"
	"icewafl/internal/timeseries"
)

// Scenario names of the forecasting experiment (§3.2.1 / Table 2).
const (
	ScenarioEval  = "eval"  // D_eval: clean last year
	ScenarioNoise = "noise" // D_noise: temporally increasing multiplicative noise (Figure 6)
	ScenarioScale = "scale" // D_scale: temporally increasing scale errors (Figure 7)
)

// MeasurementAttrs are the numeric sensor attributes of the air-quality
// stream that the pollution scenarios target ("all numerical attributes"
// in Table 2; the running-index and calendar attributes are identifiers,
// not measurements).
var MeasurementAttrs = []string{
	"PM2.5", "PM10", "SO2", "NO2", "CO", "O3",
	"TEMP", "PRES", "DEWP", "RAIN", "WSPM",
}

// Exp2Config parameterises the forecasting experiment.
type Exp2Config struct {
	DataSeed int64
	// Reps is the number of independently polluted replicates averaged
	// per scenario (the paper uses 10). The clean scenario always runs
	// once: it is deterministic.
	Reps int
	// TrainHours is the length of one training period (504 h = 3 weeks).
	TrainHours int
	// Horizon is the forecast length per cycle (12 h).
	Horizon int
	// NoiseLoMax and NoiseHiMax are the Eq. 3 terminal bounds of the
	// multiplicative-noise distribution U(a, b).
	NoiseLoMax, NoiseHiMax float64
	// ScaleFactor, ScalePrior and ScaleHold parameterise the D_scale
	// polluter: factor 0.125, prior probability 0.01, 4-hour episodes.
	ScaleFactor float64
	ScalePrior  float64
	ScaleHold   time.Duration

	// Model hyperparameters (defaults from the grid search; see
	// RunExp2GridSearch).
	ARIMAOrder  [3]int
	ARIMAXOrder [3]int
	HWAlpha     float64
	HWBeta      float64
	HWGamma     float64
	HWPeriod    int

	// IncludeSARIMA adds a seasonal ARIMA(1,0,0)(1,1,0)_24 as a fourth
	// method — an extension beyond the paper's three, useful as an
	// ablation of the seasonal modelling choice.
	IncludeSARIMA bool
	// IncludeBaselines adds the naive and seasonal-naive reference
	// forecasters, the floor any learning method must beat.
	IncludeBaselines bool
}

// DefaultExp2Config returns the paper-faithful configuration with the
// hyperparameters selected by RunExp2GridSearch on D_train.
func DefaultExp2Config() Exp2Config {
	return Exp2Config{
		DataSeed:    DefaultDataSeed,
		Reps:        10,
		TrainHours:  504,
		Horizon:     12,
		NoiseLoMax:  0.1,
		NoiseHiMax:  0.5,
		ScaleFactor: 0.125,
		ScalePrior:  0.01,
		ScaleHold:   4 * time.Hour,
		ARIMAOrder:  [3]int{3, 0, 0},
		ARIMAXOrder: [3]int{2, 0, 1},
		HWAlpha:     0.55,
		HWBeta:      0.01,
		HWGamma:     0.25,
		HWPeriod:    24,
	}
}

// ModelNames lists the evaluated methods in paper order.
var ModelNames = []string{"arima", "holt_winters", "arimax"}

// CyclePoint is one x-position of Figures 6/7: the start of an evaluation
// timespan and the (replicate-averaged) MAE per model.
type CyclePoint struct {
	Start time.Time
	MAE   map[string]float64
}

// Exp2Result is one line set of Figure 6 or 7.
type Exp2Result struct {
	Region   string
	Scenario string
	Points   []CyclePoint
	// FailedFits counts model fits that returned an error (skipped
	// points); it should be zero in healthy runs.
	FailedFits int
}

// regionSeries loads one region's stream, imputes NO2 with forward fill
// (the §3.2.1 preprocessing), and returns the tuples.
func regionSeries(region string, dataSeed int64) ([]stream.Tuple, error) {
	tuples := dataset.AirQuality(region, dataSeed, dataset.AirQualityOptions{})
	s, err := timeseries.FromTuples(tuples, "NO2")
	if err != nil {
		return nil, err
	}
	s.FFill()
	if err := timeseries.ApplyToTuples(tuples, "NO2", s); err != nil {
		return nil, err
	}
	return tuples, nil
}

// evalSlice cuts the Table 2 D_eval portion (last year) out of the
// stream.
func evalSlice(tuples []stream.Tuple) []stream.Tuple {
	last, _ := tuples[len(tuples)-1].Timestamp()
	evalStart := last.AddDate(-1, 0, 0)
	i := sort.Search(len(tuples), func(i int) bool {
		ts, _ := tuples[i].Timestamp()
		return !ts.Before(evalStart)
	})
	return tuples[i:]
}

// noisePipeline builds the D_noise polluter: multiplicative uniform noise
// over every measurement attribute whose bounds ramp from 0 at the start
// of the evaluation stream to (NoiseLoMax, NoiseHiMax) at its end (Eq. 3).
func noisePipeline(cfg Exp2Config, tau0, tauN time.Time, seed int64) *core.Pipeline {
	noise := &core.UniformMultNoise{
		Lo:   core.Linear(tau0, tauN, 0, cfg.NoiseLoMax),
		Hi:   core.Linear(tau0, tauN, 0, cfg.NoiseHiMax),
		Rand: rng.Derive(seed, "exp2/noise"),
	}
	return core.NewPipeline(core.NewStandard("increasing noise", noise, nil, MeasurementAttrs...))
}

// scalePipeline builds the D_scale polluter: scale by 0.125 during
// four-hour episodes whose activation combines a 0.01 prior with the
// linearly increasing temporal probability of Eq. 4.
func scalePipeline(cfg Exp2Config, tau0, tauN time.Time, seed int64) *core.Pipeline {
	trigger := core.And{
		core.NewRandomConst(cfg.ScalePrior, rng.Derive(seed, "exp2/scale-prior")),
		core.NewRandom(core.Linear(tau0, tauN, 0, 1), rng.Derive(seed, "exp2/scale-ramp")),
	}
	cond := core.NewSticky(trigger, cfg.ScaleHold)
	scale := &core.ScaleByFactor{Factor: core.Const(cfg.ScaleFactor)}
	return core.NewPipeline(core.NewStandard("increasing scale errors", scale, cond, MeasurementAttrs...))
}

// polluteEval produces one polluted replicate of the evaluation stream.
func polluteEval(cfg Exp2Config, scenario string, eval []stream.Tuple, seed int64) ([]stream.Tuple, error) {
	if scenario == ScenarioEval {
		return eval, nil
	}
	tau0, _ := eval[0].Timestamp()
	tauN, _ := eval[len(eval)-1].Timestamp()
	var pipe *core.Pipeline
	switch scenario {
	case ScenarioNoise:
		pipe = noisePipeline(cfg, tau0, tauN, seed)
	case ScenarioScale:
		pipe = scalePipeline(cfg, tau0, tauN, seed)
	default:
		return nil, fmt.Errorf("exp2: unknown scenario %q", scenario)
	}
	proc := core.NewProcess(pipe)
	proc.KeepClean = false
	res, err := proc.Run(stream.NewSliceSource(eval[0].Schema(), eval))
	if err != nil {
		return nil, err
	}
	return res.Polluted, nil
}

// features extracts the forecasting inputs from a stream: the NO2 target
// and the ARIMAX regressors (TEMP, PRES, WSPM plus sine/cosine encodings
// of month and hour, §3.2.2).
func features(tuples []stream.Tuple) (y []float64, x [][]float64) {
	y = make([]float64, len(tuples))
	x = make([][]float64, len(tuples))
	for i, t := range tuples {
		no2, _ := t.MustGet("NO2").AsFloat()
		y[i] = no2
		temp, _ := t.MustGet("TEMP").AsFloat()
		pres, _ := t.MustGet("PRES").AsFloat()
		wspm, _ := t.MustGet("WSPM").AsFloat()
		ts, _ := t.Timestamp()
		if ts.IsZero() {
			ts = t.EventTime
		}
		sinM, cosM := timeseries.MonthSinCos(ts)
		sinH, cosH := timeseries.HourSinCos(ts)
		x[i] = []float64{temp, pres, wspm, sinM, cosM, sinH, cosH}
	}
	return y, x
}

// newModels instantiates the configured methods.
func newModels(cfg Exp2Config) map[string]func() forecast.Model {
	models := map[string]func() forecast.Model{
		"arima": func() forecast.Model {
			return forecast.NewARIMA(cfg.ARIMAOrder[0], cfg.ARIMAOrder[1], cfg.ARIMAOrder[2])
		},
		"arimax": func() forecast.Model {
			return forecast.NewARIMAX(cfg.ARIMAXOrder[0], cfg.ARIMAXOrder[1], cfg.ARIMAXOrder[2])
		},
		"holt_winters": func() forecast.Model {
			return forecast.NewHoltWinters(cfg.HWAlpha, cfg.HWBeta, cfg.HWGamma, cfg.HWPeriod)
		},
	}
	if cfg.IncludeSARIMA {
		models["sarima"] = func() forecast.Model {
			return forecast.NewSARIMA(1, 0, 0, 1, 1, 0, 24)
		}
	}
	if cfg.IncludeBaselines {
		models["naive"] = func() forecast.Model { return forecast.NewNaive() }
		models["seasonal_naive"] = func() forecast.Model { return forecast.NewSeasonalNaive(24) }
	}
	return models
}

// modelsOf returns the model names present in a result, in ModelNames
// order first, extras after.
func modelsOf(r *Exp2Result) []string {
	present := map[string]bool{}
	for _, p := range r.Points {
		for name := range p.MAE {
			present[name] = true
		}
	}
	var out []string
	for _, m := range ModelNames {
		if present[m] {
			out = append(out, m)
			delete(present, m)
		}
	}
	var extra []string
	for m := range present {
		extra = append(extra, m)
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// RunExp2 reproduces one region × scenario combination of Figures 6/7:
// models are re-fitted on consecutive 504-hour training periods of the
// (polluted) evaluation stream and forecast the following 12 hours; MAEs
// are averaged over the polluted replicates.
func RunExp2(cfg Exp2Config, region, scenario string) (*Exp2Result, error) {
	tuples, err := regionSeries(region, cfg.DataSeed)
	if err != nil {
		return nil, err
	}
	eval := evalSlice(tuples)
	reps := cfg.Reps
	if scenario == ScenarioEval || reps < 1 {
		reps = 1
	}

	cycles := (len(eval) - cfg.Horizon) / cfg.TrainHours
	if cycles < 1 {
		return nil, fmt.Errorf("exp2: evaluation stream too short (%d tuples)", len(eval))
	}
	res := &Exp2Result{Region: region, Scenario: scenario}
	sums := make([]map[string]float64, cycles)
	counts := make([]map[string]int, cycles)
	for c := range sums {
		sums[c] = make(map[string]float64)
		counts[c] = make(map[string]int)
	}
	factories := newModels(cfg)

	for rep := 0; rep < reps; rep++ {
		polluted, err := polluteEval(cfg, scenario, eval, cfg.DataSeed+int64(rep)*15485863)
		if err != nil {
			return nil, err
		}
		y, x := features(polluted)
		for c := 0; c < cycles; c++ {
			trainStart := c * cfg.TrainHours
			trainEnd := trainStart + cfg.TrainHours
			fcEnd := trainEnd + cfg.Horizon
			if fcEnd > len(y) {
				break
			}
			for name, mk := range factories {
				model := mk()
				if err := model.Fit(y[trainStart:trainEnd], x[trainStart:trainEnd]); err != nil {
					res.FailedFits++
					continue
				}
				pred, err := model.Forecast(cfg.Horizon, x[trainEnd:fcEnd])
				if err != nil {
					res.FailedFits++
					continue
				}
				sums[c][name] += stats.MAE(pred, y[trainEnd:fcEnd])
				counts[c][name]++
			}
		}
	}

	for c := 0; c < cycles; c++ {
		ts, _ := eval[c*cfg.TrainHours+cfg.TrainHours].Timestamp()
		point := CyclePoint{Start: ts, MAE: make(map[string]float64)}
		for name := range factories {
			if counts[c][name] > 0 {
				point.MAE[name] = sums[c][name] / float64(counts[c][name])
			}
		}
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// PrintExp2 renders one Figure 6/7 panel as a table: one row per
// evaluation timespan start, one column per model.
func PrintExp2(w io.Writer, r *Exp2Result) {
	fmt.Fprintf(w, "Figure %s — region %s, scenario %s (MAE per evaluation timespan)\n",
		figureForScenario(r.Scenario), r.Region, r.Scenario)
	models := modelsOf(r)
	fmt.Fprintf(w, "%-12s", "start")
	for _, m := range models {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-12s", p.Start.Format("01-02"))
		for _, m := range models {
			fmt.Fprintf(w, " %14.2f", p.MAE[m])
		}
		fmt.Fprintln(w)
	}
	if r.FailedFits > 0 {
		fmt.Fprintf(w, "WARNING: %d failed fits\n", r.FailedFits)
	}
	var series []plot.Series
	for _, m := range models {
		vals := make([]float64, len(r.Points))
		for i, p := range r.Points {
			vals[i] = p.MAE[m]
		}
		series = append(series, plot.Series{Name: m, Values: vals})
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.Lines("MAE over evaluation timespans", series, 52, 12))
}

func figureForScenario(s string) string {
	switch s {
	case ScenarioNoise:
		return "6"
	case ScenarioScale:
		return "7"
	}
	return "6/7 (clean baseline)"
}

// Exp2TrendSummary condenses a result for robustness comparison: the mean
// MAE over the first and last third of the cycles per model, showing how
// strongly each method degrades as pollution grows.
type Exp2TrendSummary struct {
	Model              string
	EarlyMAE, LateMAE  float64
	DegradationPercent float64
}

// Summarise computes the trend summary of a result.
func (r *Exp2Result) Summarise() []Exp2TrendSummary {
	n := len(r.Points)
	if n == 0 {
		return nil
	}
	third := n / 3
	if third < 1 {
		third = 1
	}
	var out []Exp2TrendSummary
	for _, m := range modelsOf(r) {
		var early, late []float64
		for i, p := range r.Points {
			v, ok := p.MAE[m]
			if !ok {
				continue
			}
			if i < third {
				early = append(early, v)
			}
			if i >= n-third {
				late = append(late, v)
			}
		}
		s := Exp2TrendSummary{Model: m, EarlyMAE: stats.Mean(early), LateMAE: stats.Mean(late)}
		if s.EarlyMAE > 0 {
			s.DegradationPercent = (s.LateMAE - s.EarlyMAE) / s.EarlyMAE * 100
		}
		out = append(out, s)
	}
	return out
}

// RunExp2GridSearch reproduces the §3.2.2 hyperparameter determination:
// grid search with 5-fold time-series cross validation on the first
// year's training split, per model family. It returns the winning labels
// and all scores.
func RunExp2GridSearch(cfg Exp2Config, region string) (map[string]forecast.GridResult, error) {
	tuples, err := regionSeries(region, cfg.DataSeed)
	if err != nil {
		return nil, err
	}
	s, err := timeseries.FromTuples(tuples, "NO2")
	if err != nil {
		return nil, err
	}
	splits, err := timeseries.Split(s, time.Duration(cfg.Horizon)*time.Hour)
	if err != nil {
		return nil, err
	}
	nTrain := splits.Train.Len()
	y, x := features(tuples[:nTrain])

	winners := make(map[string]forecast.GridResult)

	var arimaCands []forecast.Candidate
	for _, p := range []int{1, 2, 3} {
		for _, d := range []int{0, 1} {
			for _, q := range []int{0, 1} {
				p, d, q := p, d, q
				arimaCands = append(arimaCands, forecast.Candidate{
					Label: fmt.Sprintf("arima(%d,%d,%d)", p, d, q),
					New:   func() forecast.Model { return forecast.NewARIMA(p, d, q) },
				})
			}
		}
	}
	best, results, err := forecast.GridSearchCV(arimaCands, y, nil, 5, cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("exp2 grid arima: %w", err)
	}
	winners["arima"] = results[best]

	var arimaxCands []forecast.Candidate
	for _, p := range []int{1, 2, 3} {
		for _, d := range []int{0, 1} {
			for _, q := range []int{0, 1} {
				p, d, q := p, d, q
				arimaxCands = append(arimaxCands, forecast.Candidate{
					Label: fmt.Sprintf("arimax(%d,%d,%d)", p, d, q),
					New:   func() forecast.Model { return forecast.NewARIMAX(p, d, q) },
				})
			}
		}
	}
	best, results, err = forecast.GridSearchCV(arimaxCands, y, x, 5, cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("exp2 grid arimax: %w", err)
	}
	winners["arimax"] = results[best]

	var hwCands []forecast.Candidate
	for _, a := range []float64{0.15, 0.35, 0.55} {
		for _, b := range []float64{0.01, 0.05, 0.15} {
			for _, g := range []float64{0.1, 0.25, 0.4} {
				a, b, g := a, b, g
				hwCands = append(hwCands, forecast.Candidate{
					Label: fmt.Sprintf("holt_winters(a=%.2f,b=%.2f,g=%.2f)", a, b, g),
					New:   func() forecast.Model { return forecast.NewHoltWinters(a, b, g, 24) },
				})
			}
		}
	}
	best, results, err = forecast.GridSearchCV(hwCands, y, nil, 5, cfg.Horizon)
	if err != nil {
		return nil, fmt.Errorf("exp2 grid holt-winters: %w", err)
	}
	winners["holt_winters"] = results[best]
	return winners, nil
}
