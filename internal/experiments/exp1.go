package experiments

import (
	"fmt"
	"io"

	"icewafl/internal/groundtruth"
	"icewafl/internal/plot"
	"icewafl/internal/stats"
	"icewafl/internal/stream"
)

// DefaultDataSeed pins the synthetic datasets; experiment repetitions
// vary only the pollution seed.
const DefaultDataSeed = 20160226

// Exp1RandomResult reproduces Figure 4 and the §3.1.1 headline numbers.
type Exp1RandomResult struct {
	// ExpectedPerHour and MeasuredPerHour are the per-hour-of-day error
	// counts averaged over repetitions: expected comes from the
	// pollution log, measured from the DQ tool.
	ExpectedPerHour [24]float64
	MeasuredPerHour [24]float64
	// AvgErrors is the average total number of errors GX measured.
	AvgErrors float64
	// AvgProportion is the average polluted fraction of the stream.
	AvgProportion float64
	// VarProportion is the variance of that fraction across repetitions
	// (in percentage points squared, as the paper reports it).
	VarProportion float64
	Repetitions   int
}

// RunExp1Random executes the random-temporal-errors scenario reps times.
func RunExp1Random(dataSeed int64, reps int) (*Exp1RandomResult, error) {
	res := &Exp1RandomResult{Repetitions: reps}
	var proportions []float64
	totalMeasured := 0.0
	for rep := 0; rep < reps; rep++ {
		proc := RandomTemporalProcess(dataSeed + int64(rep)*7919)
		out, err := proc.Run(WearableSource(dataSeed))
		if err != nil {
			return nil, fmt.Errorf("exp1 random rep %d: %w", rep, err)
		}
		// Expected: per-hour counts from the pollution log.
		for h, n := range out.Log.CountByHour() {
			res.ExpectedPerHour[h] += float64(n)
		}
		// Measured: validate with the DQ suite, bucket violating rows by
		// the hour of their event time.
		results := RandomTemporalSuite().Validate(out.Polluted)
		measured := results[0]
		byID := tupleIndex(out.Polluted)
		for _, id := range measured.UnexpectedIDs {
			if t, ok := byID[id]; ok {
				res.MeasuredPerHour[t.EventTime.Hour()] += float64(1)
			}
		}
		totalMeasured += float64(measured.Unexpected)
		proportions = append(proportions, measured.UnexpectedFraction()*100)
	}
	for h := range res.ExpectedPerHour {
		res.ExpectedPerHour[h] /= float64(reps)
		res.MeasuredPerHour[h] /= float64(reps)
	}
	res.AvgErrors = totalMeasured / float64(reps)
	res.AvgProportion = stats.Mean(proportions)
	res.VarProportion = stats.SampleVariance(proportions)
	return res, nil
}

// Table1Row is one line of Table 1: expected vs measured error counts for
// the software-update scenario.
type Table1Row struct {
	Label string
	// Expected is the average number of errors Icewafl injected
	// (changed values, from ground truth).
	Expected float64
	// PreExisting counts violations already present in the clean stream
	// (the paper's "+2" for BPM=0).
	PreExisting int
	// Measured is the average number of errors the DQ tool detected.
	Measured float64
}

// Exp1UpdateResult reproduces Table 1.
type Exp1UpdateResult struct {
	Rows []Table1Row
	// PostUpdateTuples counts tuples subject to the update condition.
	PostUpdateTuples int
	// HighBPMTuples counts post-update tuples with BPM > 100 (the
	// paper's 33).
	HighBPMTuples int
	Repetitions   int
}

// RunExp1Update executes the software-update scenario reps times.
func RunExp1Update(dataSeed int64, reps int) (*Exp1UpdateResult, error) {
	res := &Exp1UpdateResult{Repetitions: reps}
	var expBPM0, expBPMNull, expDist, expCal float64
	var measBPM0, measBPMNull, measDist, measCal float64

	// Stream-level constants (independent of the pollution randomness).
	clean, err := stream.Drain(WearableSource(dataSeed))
	if err != nil {
		return nil, err
	}
	preExisting := 0
	for _, t := range clean {
		ts, _ := t.Timestamp()
		if !ts.Before(SoftwareUpdateAt) {
			res.PostUpdateTuples++
			if bpm, _ := t.MustGet("BPM").AsFloat(); bpm > 100 {
				res.HighBPMTuples++
			}
		}
		if bpm, _ := t.MustGet("BPM").AsFloat(); bpm == 0 && !t.MustGet("BPM").IsNull() {
			sum := 0.0
			for _, c := range []string{"ActiveMinutes", "Distance", "Steps"} {
				f, _ := t.MustGet(c).AsFloat()
				sum += f
			}
			if sum != 0 {
				preExisting++
			}
		}
	}

	for rep := 0; rep < reps; rep++ {
		proc := SoftwareUpdateProcess(dataSeed + int64(rep)*104729)
		out, err := proc.Run(WearableSource(dataSeed))
		if err != nil {
			return nil, fmt.Errorf("exp1 update rep %d: %w", rep, err)
		}
		// Expected: count actual value changes per attribute from ground
		// truth, splitting BPM into the =0 and =null cases.
		diff := groundtruth.Diff(out.Clean, out.Polluted)
		byID := tupleIndex(out.Polluted)
		for _, d := range diff.Diffs {
			t := byID[d.ID]
			for _, attr := range d.ChangedAttrs {
				switch attr {
				case "Distance":
					expDist++
				case "CaloriesBurned":
					expCal++
				case "BPM":
					if t.MustGet("BPM").IsNull() {
						expBPMNull++
					} else {
						expBPM0++
					}
				}
			}
		}
		// Measured: the four expectations of §3.1.2.
		results := SoftwareUpdateSuite().Validate(out.Polluted)
		measDist += float64(results[0].Unexpected)
		measCal += float64(results[1].Unexpected)
		measBPM0 += float64(results[2].Unexpected)
		measBPMNull += float64(results[3].Unexpected)
	}
	n := float64(reps)
	res.Rows = []Table1Row{
		{Label: "BPM=0 (Prob. 0.8)", Expected: expBPM0 / n, PreExisting: preExisting, Measured: measBPM0 / n},
		{Label: "BPM=null (Prob. 0.2)", Expected: expBPMNull / n, Measured: measBPMNull / n},
		{Label: "Distance", Expected: expDist / n, Measured: measDist / n},
		{Label: "CaloriesBurned", Expected: expCal / n, Measured: measCal / n},
	}
	return res, nil
}

// Exp1NetworkResult reproduces the §3.1.3 numbers.
type Exp1NetworkResult struct {
	// WindowTuples counts tuples inside the 13:00-14:59 window (the
	// paper's 88).
	WindowTuples int
	// ExpectedDelayed is the average number of tuples Icewafl delayed
	// (≈ 0.2 · WindowTuples).
	ExpectedDelayed float64
	// MeasuredDelayed is the average number of increasing-order
	// violations the DQ tool found.
	MeasuredDelayed float64
	Repetitions     int
}

// RunExp1Network executes the bad-network scenario reps times.
func RunExp1Network(dataSeed int64, reps int) (*Exp1NetworkResult, error) {
	res := &Exp1NetworkResult{Repetitions: reps}
	clean, err := stream.Drain(WearableSource(dataSeed))
	if err != nil {
		return nil, err
	}
	for _, t := range clean {
		ts, _ := t.Timestamp()
		if h := ts.Hour(); h >= 13 && h < 15 {
			res.WindowTuples++
		}
	}
	var expected, measured float64
	for rep := 0; rep < reps; rep++ {
		proc := BadNetworkProcess(dataSeed + int64(rep)*1299709)
		out, err := proc.Run(WearableSource(dataSeed))
		if err != nil {
			return nil, fmt.Errorf("exp1 network rep %d: %w", rep, err)
		}
		expected += float64(out.Log.Len())
		results := BadNetworkSuite().Validate(out.Polluted)
		measured += float64(results[0].Unexpected)
	}
	res.ExpectedDelayed = expected / float64(reps)
	res.MeasuredDelayed = measured / float64(reps)
	return res, nil
}

func tupleIndex(tuples []stream.Tuple) map[uint64]stream.Tuple {
	out := make(map[uint64]stream.Tuple, len(tuples))
	for _, t := range tuples {
		if _, dup := out[t.ID]; !dup {
			out[t.ID] = t
		}
	}
	return out
}

// PrintExp1Random renders the Figure 4 series and §3.1.1 summary.
func PrintExp1Random(w io.Writer, r *Exp1RandomResult) {
	fmt.Fprintf(w, "Figure 4 — random temporal errors (%d repetitions)\n", r.Repetitions)
	fmt.Fprintf(w, "%-6s %12s %12s\n", "hour", "expected", "measured(GX)")
	for h := 0; h < 24; h++ {
		fmt.Fprintf(w, "%-6d %12.2f %12.2f\n", h, r.ExpectedPerHour[h], r.MeasuredPerHour[h])
	}
	fmt.Fprintf(w, "avg errors measured: %.1f\n", r.AvgErrors)
	fmt.Fprintf(w, "avg error proportion: %.2f%% (variance %.2f)\n", r.AvgProportion, r.VarProportion)
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.Lines("polluted tuples per hour of day",
		[]plot.Series{
			{Name: "expected", Values: r.ExpectedPerHour[:]},
			{Name: "measured", Values: r.MeasuredPerHour[:]},
		}, 48, 10))
}

// PrintExp1Update renders Table 1.
func PrintExp1Update(w io.Writer, r *Exp1UpdateResult) {
	fmt.Fprintf(w, "Table 1 — software update scenario (%d repetitions)\n", r.Repetitions)
	fmt.Fprintf(w, "post-update tuples: %d, BPM>100 tuples: %d\n", r.PostUpdateTuples, r.HighBPMTuples)
	fmt.Fprintf(w, "%-22s %12s %14s\n", "attribute", "expected", "measured(GX)")
	for _, row := range r.Rows {
		exp := fmt.Sprintf("%.1f", row.Expected)
		if row.PreExisting > 0 {
			exp = fmt.Sprintf("%.1f (+%d)", row.Expected, row.PreExisting)
		}
		fmt.Fprintf(w, "%-22s %12s %14.1f\n", row.Label, exp, row.Measured)
	}
}

// PrintExp1Network renders the §3.1.3 summary.
func PrintExp1Network(w io.Writer, r *Exp1NetworkResult) {
	fmt.Fprintf(w, "Bad network connection (%d repetitions)\n", r.Repetitions)
	fmt.Fprintf(w, "tuples in 13:00-14:59 window: %d\n", r.WindowTuples)
	fmt.Fprintf(w, "expected delayed tuples: %.2f\n", r.ExpectedDelayed)
	fmt.Fprintf(w, "measured delayed tuples (GX increasing check): %.2f\n", r.MeasuredDelayed)
}
