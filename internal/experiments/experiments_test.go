package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"icewafl/internal/dq"
	"icewafl/internal/stream"
)

// Small repetition counts keep the integration tests fast while still
// exercising the full experiment paths end to end.

func TestRandomTemporalScenario(t *testing.T) {
	r, err := RunExp1Random(DefaultDataSeed, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 4 invariants: expected == measured per hour (the nulls
	// are exactly detectable), sinusoidal shape with midnight max and a
	// noon zero, and an overall proportion near 25%.
	for h := 0; h < 24; h++ {
		if r.ExpectedPerHour[h] != r.MeasuredPerHour[h] {
			t.Fatalf("hour %d: expected %.1f != measured %.1f",
				h, r.ExpectedPerHour[h], r.MeasuredPerHour[h])
		}
	}
	if r.MeasuredPerHour[12] != 0 {
		t.Fatalf("noon errors %.2f should be 0 (probability 0)", r.MeasuredPerHour[12])
	}
	if r.MeasuredPerHour[0] < r.MeasuredPerHour[6] || r.MeasuredPerHour[23] < r.MeasuredPerHour[18] {
		t.Fatalf("no midnight peak: %v", r.MeasuredPerHour)
	}
	if r.AvgProportion < 18 || r.AvgProportion > 32 {
		t.Fatalf("error proportion %.2f%% far from the configured 25%%", r.AvgProportion)
	}
}

func TestSoftwareUpdateScenario(t *testing.T) {
	r, err := RunExp1Update(DefaultDataSeed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.WindowConstantsInvalid() {
		t.Fatalf("stream constants: %+v", r)
	}
	rows := map[string]Table1Row{}
	for _, row := range r.Rows {
		rows[row.Label] = row
	}
	bpm0 := rows["BPM=0 (Prob. 0.8)"]
	bpmNull := rows["BPM=null (Prob. 0.2)"]
	dist := rows["Distance"]
	cal := rows["CaloriesBurned"]

	// BPM splits ≈ 0.8/0.2 of the high-BPM tuples.
	total := bpm0.Expected + bpmNull.Expected
	if math.Abs(total-float64(r.HighBPMTuples)) > 1e-9 {
		t.Fatalf("BPM split %.1f + %.1f != %d", bpm0.Expected, bpmNull.Expected, r.HighBPMTuples)
	}
	if frac := bpm0.Expected / total; frac < 0.6 || frac > 0.95 {
		t.Fatalf("BPM=0 fraction %.2f far from 0.8", frac)
	}
	// The measured BPM=0 count carries the two pre-existing violations.
	if bpm0.PreExisting != 2 {
		t.Fatalf("pre-existing violations %d, want 2", bpm0.PreExisting)
	}
	if math.Abs(bpm0.Measured-(bpm0.Expected+2)) > 0.5 {
		t.Fatalf("BPM=0 measured %.1f, expected %.1f (+2)", bpm0.Measured, bpm0.Expected)
	}
	// Null detection is exact.
	if bpmNull.Measured != bpmNull.Expected {
		t.Fatalf("BPM=null measured %.1f != expected %.1f", bpmNull.Measured, bpmNull.Expected)
	}
	// Distance detection is exact (every changed value violates
	// Steps ≥ Distance after the km→cm conversion).
	if dist.Measured != dist.Expected {
		t.Fatalf("Distance measured %.1f != expected %.1f", dist.Measured, dist.Expected)
	}
	if dist.Expected < float64(r.PostUpdateTuples)/5 {
		t.Fatalf("too few Distance errors: %.1f of %d", dist.Expected, r.PostUpdateTuples)
	}
	// CaloriesBurned: nearly all rounded values are detectable; a few
	// round to values that still satisfy the regex.
	if cal.Measured > cal.Expected || cal.Measured < cal.Expected*0.95 {
		t.Fatalf("CaloriesBurned measured %.1f vs expected %.1f", cal.Measured, cal.Expected)
	}
}

// WindowConstantsInvalid sanity-checks the dataset-derived constants.
func (r *Exp1UpdateResult) WindowConstantsInvalid() bool {
	return r.PostUpdateTuples < 900 || r.PostUpdateTuples > 1060 ||
		r.HighBPMTuples < 15 || r.HighBPMTuples > 70
}

func TestBadNetworkScenario(t *testing.T) {
	r, err := RunExp1Network(DefaultDataSeed, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.WindowTuples != 88 {
		t.Fatalf("window tuples %d, want 88 (11 days × 8 quarter-hours)", r.WindowTuples)
	}
	// Expected ≈ 0.2 × 88 = 17.6 within sampling tolerance.
	if r.ExpectedDelayed < 10 || r.ExpectedDelayed > 26 {
		t.Fatalf("expected delayed %.2f far from 17.6", r.ExpectedDelayed)
	}
	// The increasing-timestamp expectation recovers nearly every delay.
	if math.Abs(r.MeasuredDelayed-r.ExpectedDelayed) > 2 {
		t.Fatalf("measured %.2f vs expected %.2f", r.MeasuredDelayed, r.ExpectedDelayed)
	}
}

func TestExp2NoiseDegradesAndARIMAXIsRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("forecasting experiment is slow")
	}
	cfg := DefaultExp2Config()
	cfg.Reps = 2
	clean, err := RunExp2(cfg, "Wanshouxigong", ScenarioEval)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunExp2(cfg, "Wanshouxigong", ScenarioNoise)
	if err != nil {
		t.Fatal(err)
	}
	if clean.FailedFits != 0 || noisy.FailedFits != 0 {
		t.Fatalf("failed fits: clean %d, noisy %d", clean.FailedFits, noisy.FailedFits)
	}
	if len(clean.Points) < 10 {
		t.Fatalf("only %d cycles", len(clean.Points))
	}

	sumClean := map[string]float64{}
	sumNoisy := map[string]float64{}
	for i := range clean.Points {
		for _, m := range ModelNames {
			sumClean[m] += clean.Points[i].MAE[m]
			sumNoisy[m] += noisy.Points[i].MAE[m]
		}
	}
	// Noise pollution must hurt every model overall.
	for _, m := range ModelNames {
		if sumNoisy[m] <= sumClean[m] {
			t.Fatalf("model %s not degraded by noise: %.1f vs %.1f", m, sumNoisy[m], sumClean[m])
		}
	}
	// Figure 6's headline: ARIMAX degrades least (relative degradation).
	summary := map[string]Exp2TrendSummary{}
	for _, s := range noisy.Summarise() {
		summary[s.Model] = s
	}
	ax := summary["arima"].DegradationPercent
	hw := summary["holt_winters"].DegradationPercent
	amx := summary["arimax"].DegradationPercent
	if amx >= ax || amx >= hw {
		t.Fatalf("ARIMAX degradation %.0f%% not smallest (arima %.0f%%, hw %.0f%%)", amx, ax, hw)
	}
}

func TestExp2ScaleMilderThanNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("forecasting experiment is slow")
	}
	cfg := DefaultExp2Config()
	cfg.Reps = 2
	noise, err := RunExp2(cfg, "Gucheng", ScenarioNoise)
	if err != nil {
		t.Fatal(err)
	}
	scale, err := RunExp2(cfg, "Gucheng", ScenarioScale)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7 vs Figure 6: the MAE growth trend is much weaker for
	// scale errors than for noise (averaged across models).
	trend := func(r *Exp2Result) float64 {
		var sum float64
		for _, s := range r.Summarise() {
			sum += s.LateMAE - s.EarlyMAE
		}
		return sum
	}
	if trend(scale) >= trend(noise) {
		t.Fatalf("scale trend %.1f not milder than noise trend %.1f", trend(scale), trend(noise))
	}
}

func TestExp2UnknownScenario(t *testing.T) {
	cfg := DefaultExp2Config()
	cfg.Reps = 1
	if _, err := RunExp2(cfg, "Gucheng", "bogus"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestExp3OverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime experiment is slow")
	}
	cfg := Exp3Config{DataSeed: DefaultDataSeed, Runs: 5, Replicas: 10}
	r, err := RunExp3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 4 {
		t.Fatalf("%d scenarios", len(r.Scenarios))
	}
	var baseline *Exp3Scenario
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		if len(sc.RuntimesMS) != 5 || sc.Box.Median <= 0 {
			t.Fatalf("scenario %s: %+v", sc.Name, sc.Box)
		}
		if sc.Name == "no pollution" {
			baseline = sc
		}
	}
	if baseline == nil {
		t.Fatal("no baseline scenario")
	}
	if baseline.OverheadPercent != 0 {
		t.Fatalf("baseline overhead %.1f%%", baseline.OverheadPercent)
	}
	// Every pollution scenario costs something, but stays within the
	// same order of magnitude as the baseline.
	for _, sc := range r.Scenarios {
		if sc.Name == "no pollution" {
			continue
		}
		if sc.OverheadPercent < 0 {
			t.Logf("scenario %s faster than baseline (%.1f%%): timing noise", sc.Name, sc.OverheadPercent)
		}
		if sc.OverheadPercent > 150 {
			t.Fatalf("scenario %s overhead %.1f%% above 150%%", sc.Name, sc.OverheadPercent)
		}
	}
}

func TestReplicateWearableCadence(t *testing.T) {
	tuples := replicateWearable(DefaultDataSeed, 3)
	if len(tuples) != 3*1060 {
		t.Fatalf("%d tuples", len(tuples))
	}
	prev, _ := tuples[0].Timestamp()
	for i, tp := range tuples[1:] {
		ts, _ := tp.Timestamp()
		if !ts.Equal(prev.Add(15 * time.Minute)) {
			t.Fatalf("cadence broken at replica boundary %d", i+1)
		}
		prev = ts
	}
}

func TestScenarioSuitesMatchPaperExpectations(t *testing.T) {
	if got := len(SoftwareUpdateSuite().Expectations); got != 4 {
		t.Fatalf("software update suite has %d expectations, want 4", got)
	}
	if got := len(RandomTemporalSuite().Expectations); got != 1 {
		t.Fatalf("random temporal suite has %d expectations, want 1", got)
	}
	if got := len(BadNetworkSuite().Expectations); got != 1 {
		t.Fatalf("bad network suite has %d expectations, want 1", got)
	}
}

func TestCaloriesRegexSemantics(t *testing.T) {
	re, err := dq.NewMatchRegex("c", CaloriesRegex)
	if err != nil {
		t.Fatal(err)
	}
	valid := []string{"0", "120", "18.123", "4.201"}
	invalid := []string{"18.1", "18.12", "18.120", "4.5000001", "-3.123"}
	for _, s := range valid {
		if !re.Pattern.MatchString(s) {
			t.Errorf("valid value %q rejected", s)
		}
	}
	for _, s := range invalid {
		if re.Pattern.MatchString(s) {
			t.Errorf("invalid value %q accepted", s)
		}
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	r1, err := RunExp1Random(DefaultDataSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintExp1Random(&buf, r1)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatalf("random printer: %q", buf.String())
	}
	r2, err := RunExp1Update(DefaultDataSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintExp1Update(&buf, r2)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("update printer")
	}
	r3, err := RunExp1Network(DefaultDataSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintExp1Network(&buf, r3)
	if !strings.Contains(buf.String(), "delayed") {
		t.Fatal("network printer")
	}
}

func TestWearableSourceIsFresh(t *testing.T) {
	a, err := stream.Drain(WearableSource(DefaultDataSeed))
	if err != nil {
		t.Fatal(err)
	}
	b, err := stream.Drain(WearableSource(DefaultDataSeed))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("sources diverged at %d", i)
		}
	}
}

func TestExp4SynthesisStudy(t *testing.T) {
	r, err := RunExp4(DefaultDataSeed, 2120)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byName := map[string]Exp4Row{}
	for _, row := range r.Rows {
		byName[row.Stream] = row
	}
	orig := byName["polluted original"]
	boot := byName["block_bootstrap"]
	seasonal := byName["seasonal_bootstrap"]
	ar := byName["ar_model"]

	if orig.ErrorRate < 0.15 || orig.ErrorRate > 0.35 {
		t.Fatalf("original error rate %.3f", orig.ErrorRate)
	}
	// Both bootstraps preserve the error *rate*.
	for _, row := range []Exp4Row{boot, seasonal} {
		if math.Abs(row.ErrorRate-orig.ErrorRate) > 0.06 {
			t.Fatalf("%s error rate %.3f vs original %.3f", row.Stream, row.ErrorRate, orig.ErrorRate)
		}
	}
	// Only the seasonal bootstrap preserves the daily *shape*.
	if seasonal.ShapeCorrelation < 0.7 {
		t.Fatalf("seasonal bootstrap shape correlation %.2f", seasonal.ShapeCorrelation)
	}
	if boot.ShapeCorrelation > 0.5 {
		t.Fatalf("plain bootstrap unexpectedly preserved shape: %.2f", boot.ShapeCorrelation)
	}
	// The AR model removes the errors entirely.
	if ar.Errors != 0 || !math.IsNaN(ar.ShapeCorrelation) {
		t.Fatalf("AR model not clean: %+v", ar)
	}
}

func TestExp4Printer(t *testing.T) {
	r, err := RunExp4(DefaultDataSeed, 1200)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintExp4(&buf, r)
	if !strings.Contains(buf.String(), "seasonal_bootstrap") {
		t.Fatal("printer output incomplete")
	}
}

func TestExp2WithSARIMA(t *testing.T) {
	if testing.Short() {
		t.Skip("forecasting experiment is slow")
	}
	cfg := DefaultExp2Config()
	cfg.Reps = 1
	cfg.IncludeSARIMA = true
	r, err := RunExp2(cfg, "Wanliu", ScenarioEval)
	if err != nil {
		t.Fatal(err)
	}
	if r.FailedFits != 0 {
		t.Fatalf("failed fits %d", r.FailedFits)
	}
	models := modelsOf(r)
	if len(models) != 4 || models[3] != "sarima" {
		t.Fatalf("models %v", models)
	}
	// SARIMA must be competitive with Holt-Winters on clean seasonal
	// data (both model the daily cycle).
	var sarima, arima float64
	for _, p := range r.Points {
		sarima += p.MAE["sarima"]
		arima += p.MAE["arima"]
	}
	if sarima >= arima {
		t.Fatalf("SARIMA (%.1f) not better than plain ARIMA (%.1f) on clean seasonal data", sarima, arima)
	}
}

func TestExp5DetectorSpecialisation(t *testing.T) {
	r, err := RunExp5(DefaultDataSeed, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(det, sc string) Exp5Cell { return r.Cells[det][sc] }
	// Each specialist dominates its own error type.
	if c := cell("rolling_zscore", "missing"); c.Recall < 0.95 {
		t.Fatalf("zscore should catch all nulls: %+v", c)
	}
	if c := cell("rate_of_change", "outliers"); c.Recall < 0.7 {
		t.Fatalf("rate-of-change should catch outliers: %+v", c)
	}
	if c := cell("frozen_run", "frozen"); c.Recall < 0.4 {
		t.Fatalf("frozen-run should catch freezes: %+v", c)
	}
	if c := cell("gap_detector", "delay"); c.Recall < 0.9 {
		t.Fatalf("gap detector should catch delays: %+v", c)
	}
	// Specialists stay silent on foreign error types.
	if c := cell("gap_detector", "missing"); c.Flagged != 0 {
		t.Fatalf("gap detector flagged value errors: %+v", c)
	}
	if c := cell("frozen_run", "outliers"); c.Recall > 0.1 {
		t.Fatalf("frozen-run caught outliers: %+v", c)
	}
	// The ensemble is at least as good as every member on every type.
	for _, sc := range r.Scenarios {
		best := 0.0
		for _, d := range r.Detectors {
			if d == "ensemble(all four)" || d == "seasonal_zscore" {
				continue
			}
			if rec := cell(d, sc).Recall; rec > best {
				best = rec
			}
		}
		if ens := cell("ensemble(all four)", sc).Recall; ens < best-1e-9 {
			t.Fatalf("ensemble recall %.2f below best member %.2f on %s", ens, best, sc)
		}
	}
}

func TestExp5Printer(t *testing.T) {
	r, err := RunExp5(DefaultDataSeed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintExp5(&buf, r)
	if !strings.Contains(buf.String(), "gap_detector") {
		t.Fatal("printer output incomplete")
	}
}

func TestExp6CleanerSpecialisation(t *testing.T) {
	r, err := RunExp6(DefaultDataSeed, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cell := func(c, sc string) Exp6Cell { return r.Cells[c][sc] }
	// Imputers repair missing values almost completely.
	if c := cell("forward_fill", "missing"); c.ImprovementPercent < 70 {
		t.Fatalf("forward fill on missing: %+v", c)
	}
	if c := cell("interpolate", "missing"); c.ImprovementPercent < 80 {
		t.Fatalf("interpolate on missing: %+v", c)
	}
	// The Hampel filter repairs outliers; imputers cannot.
	if c := cell("hampel_filter", "outliers"); c.ImprovementPercent < 50 {
		t.Fatalf("hampel on outliers: %+v", c)
	}
	if c := cell("forward_fill", "outliers"); c.ImprovementPercent > 5 {
		t.Fatalf("forward fill should not repair outliers: %+v", c)
	}
	// The chained pipeline is strong on both value-error types.
	pipeName := "pipeline(interpolate,hampel_filter)"
	if c := cell(pipeName, "outliers"); c.ImprovementPercent < 50 {
		t.Fatalf("pipeline on outliers: %+v", c)
	}
	if c := cell(pipeName, "missing"); c.ImprovementPercent < 70 {
		t.Fatalf("pipeline on missing: %+v", c)
	}
}

func TestExp6Printer(t *testing.T) {
	r, err := RunExp6(DefaultDataSeed, 2000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintExp6(&buf, r)
	if !strings.Contains(buf.String(), "hampel_filter") {
		t.Fatal("printer output incomplete")
	}
}

func TestExp2AndExp3Printers(t *testing.T) {
	if testing.Short() {
		t.Skip("slow printers test")
	}
	cfg := DefaultExp2Config()
	cfg.Reps = 1
	r, err := RunExp2(cfg, "Gucheng", ScenarioEval)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintExp2(&buf, r)
	out := buf.String()
	for _, want := range []string{"Figure 6/7 (clean baseline)", "arima", "MAE over evaluation timespans"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exp2 printer lacks %q", want)
		}
	}
	// Scenario-specific figure labels.
	r.Scenario = ScenarioNoise
	buf.Reset()
	PrintExp2(&buf, r)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("noise scenario not labelled Figure 6")
	}
	r.Scenario = ScenarioScale
	buf.Reset()
	PrintExp2(&buf, r)
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatal("scale scenario not labelled Figure 7")
	}

	cfg3 := DefaultExp3Config()
	cfg3.Runs = 3
	cfg3.Replicas = 5
	r3, err := RunExp3(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintExp3(&buf, r3)
	if !strings.Contains(buf.String(), "Figure 8") || !strings.Contains(buf.String(), "runtime (ms)") {
		t.Fatal("exp3 printer incomplete")
	}
}

func TestExp2GridSearchSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("grid search is slow")
	}
	cfg := DefaultExp2Config()
	winners, err := RunExp2GridSearch(cfg, "Gucheng")
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range ModelNames {
		w, ok := winners[family]
		if !ok {
			t.Fatalf("no winner for %s", family)
		}
		if w.MAE <= 0 || w.Label == "" {
			t.Fatalf("degenerate winner for %s: %+v", family, w)
		}
	}
}

func TestExp3DiskMode(t *testing.T) {
	if testing.Short() {
		t.Skip("disk-mode runtime experiment is slow")
	}
	cfg := Exp3Config{DataSeed: DefaultDataSeed, Runs: 3, Replicas: 5, DiskDir: t.TempDir()}
	r, err := RunExp3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 4 {
		t.Fatalf("%d scenarios", len(r.Scenarios))
	}
	for _, sc := range r.Scenarios {
		if sc.Box.Median <= 0 {
			t.Fatalf("scenario %s has no runtime", sc.Name)
		}
	}
}

func TestExp2WithBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("forecasting experiment is slow")
	}
	cfg := DefaultExp2Config()
	cfg.Reps = 1
	cfg.IncludeBaselines = true
	r, err := RunExp2(cfg, "Gucheng", ScenarioEval)
	if err != nil {
		t.Fatal(err)
	}
	var naive, seasonal, arimax float64
	for _, p := range r.Points {
		naive += p.MAE["naive"]
		seasonal += p.MAE["seasonal_naive"]
		arimax += p.MAE["arimax"]
	}
	if naive == 0 || seasonal == 0 {
		t.Fatal("baselines missing from result")
	}
	// The learning methods must beat the last-value baseline on a
	// seasonal stream, and the seasonal-naive must beat the plain naive.
	if arimax >= naive {
		t.Fatalf("ARIMAX (%.1f) did not beat naive (%.1f)", arimax, naive)
	}
	if seasonal >= naive {
		t.Fatalf("seasonal naive (%.1f) did not beat naive (%.1f)", seasonal, naive)
	}
}
