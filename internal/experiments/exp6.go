package experiments

import (
	"fmt"
	"io"

	"icewafl/internal/clean"
	"icewafl/internal/core"
	"icewafl/internal/dataset"
	"icewafl/internal/stream"
)

// Experiment 6 (extension): the cleaning benchmark. Icewafl's output —
// the polluted stream plus the retained clean stream — is exactly what a
// cleaning-algorithm benchmark needs: repair quality becomes the RMSE of
// the repaired attribute against the original values. One error type is
// injected at a time and a panel of cleaners is scored.

// Exp6Cell is one (cleaner, error type) score.
type Exp6Cell struct {
	Cleaner            string
	Scenario           string
	RMSEBefore         float64
	RMSEAfter          float64
	ImprovementPercent float64
	Changed            int
}

// Exp6Result is the full matrix.
type Exp6Result struct {
	Scenarios []string
	Cleaners  []string
	Cells     map[string]map[string]Exp6Cell
	Tuples    int
}

// Exp6Scenarios lists the injected error types (value errors only:
// cleaners repair values, not delivery timing).
var Exp6Scenarios = []string{"outliers", "missing", "frozen"}

func exp6Cleaners() []clean.Cleaner {
	return []clean.Cleaner{
		clean.ForwardFill{},
		clean.Interpolate{},
		clean.HampelFilter{Window: 12, Threshold: 4},
		clean.Pipeline{clean.Interpolate{}, clean.HampelFilter{Window: 12, Threshold: 4}},
	}
}

// RunExp6 builds the cleaner × error-type matrix over the air-quality
// NO2 attribute.
func RunExp6(dataSeed int64, tuples int) (*Exp6Result, error) {
	if tuples <= 0 {
		tuples = 6000
	}
	data := dataset.AirQuality(dataset.RegionWanliu, dataSeed,
		dataset.AirQualityOptions{Tuples: tuples, MissingRate: -1})
	res := &Exp6Result{
		Scenarios: Exp6Scenarios,
		Cells:     make(map[string]map[string]Exp6Cell),
		Tuples:    tuples,
	}
	for _, c := range exp6Cleaners() {
		res.Cleaners = append(res.Cleaners, c.Name())
	}
	for _, scenario := range Exp6Scenarios {
		pipe, err := exp5Scenario(scenario, dataSeed)
		if err != nil {
			return nil, err
		}
		proc := core.NewProcess(pipe)
		out, err := proc.Run(stream.NewSliceSource(data[0].Schema(), data))
		if err != nil {
			return nil, fmt.Errorf("exp6 %s: %w", scenario, err)
		}
		for _, c := range exp6Cleaners() {
			score, err := clean.Evaluate(c, out.Clean, out.Polluted, "NO2")
			if err != nil {
				return nil, fmt.Errorf("exp6 %s/%s: %w", scenario, c.Name(), err)
			}
			if res.Cells[c.Name()] == nil {
				res.Cells[c.Name()] = make(map[string]Exp6Cell)
			}
			res.Cells[c.Name()][scenario] = Exp6Cell{
				Cleaner:            c.Name(),
				Scenario:           scenario,
				RMSEBefore:         score.RMSEBefore,
				RMSEAfter:          score.RMSEAfter,
				ImprovementPercent: score.ImprovementPercent,
				Changed:            score.Changed,
			}
		}
	}
	return res, nil
}

// PrintExp6 renders the RMSE-improvement matrix.
func PrintExp6(w io.Writer, r *Exp6Result) {
	fmt.Fprintf(w, "Experiment 6 — repair quality per cleaner and error type (%d tuples)\n", r.Tuples)
	fmt.Fprintf(w, "cells: RMSE before -> after (improvement)\n")
	fmt.Fprintf(w, "%-40s", "cleaner \\ error")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, " %22s", s)
	}
	fmt.Fprintln(w)
	for _, c := range r.Cleaners {
		fmt.Fprintf(w, "%-40s", c)
		for _, s := range r.Scenarios {
			cell := r.Cells[c][s]
			fmt.Fprintf(w, " %6.1f->%5.1f (%+4.0f%%)", cell.RMSEBefore, cell.RMSEAfter, cell.ImprovementPercent)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Expected shape: imputers repair missing values, the Hampel filter")
	fmt.Fprintln(w, "repairs outliers, neither helps against frozen runs, and the chained")
	fmt.Fprintln(w, "pipeline combines the imputer's and the filter's strengths.")
}
