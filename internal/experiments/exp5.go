package experiments

import (
	"fmt"
	"io"
	"time"

	"icewafl/internal/anomaly"
	"icewafl/internal/core"
	"icewafl/internal/dataset"
	"icewafl/internal/groundtruth"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// Experiment 5 (extension): the detector × error-type matrix. Icewafl's
// stated purpose is benchmarking error-detection tooling; this
// experiment demonstrates it at scale by injecting one error type at a
// time into the air-quality stream and scoring a panel of statistical
// online detectors against the pollution ground truth. The matrix shows
// each detector's specialisation — and what an ensemble buys.

// Exp5Cell is one (detector, error type) score.
type Exp5Cell struct {
	Detector  string
	Scenario  string
	Recall    float64
	Precision float64
	Flagged   int
	Injected  int
}

// Exp5Result is the full matrix.
type Exp5Result struct {
	Scenarios []string
	Detectors []string
	Cells     map[string]map[string]Exp5Cell // detector -> scenario -> cell
	Tuples    int
}

// exp5Scenario builds the pipeline for one error type over the NO2
// attribute.
func exp5Scenario(name string, seed int64) (*core.Pipeline, error) {
	switch name {
	case "outliers":
		return core.NewPipeline(core.NewStandard("outliers",
			&core.Outlier{Magnitude: core.Const(3), Rand: rng.Derive(seed, "exp5/out")},
			core.NewRandomConst(0.01, rng.Derive(seed, "exp5/out-c")), "NO2")), nil
	case "missing":
		return core.NewPipeline(core.NewStandard("missing",
			core.MissingValue{},
			core.NewRandomConst(0.02, rng.Derive(seed, "exp5/miss-c")), "NO2")), nil
	case "scale":
		trigger := core.NewRandomConst(0.004, rng.Derive(seed, "exp5/scale-c"))
		return core.NewPipeline(core.NewStandard("scale",
			&core.ScaleByFactor{Factor: core.Const(0.125)},
			core.NewSticky(trigger, 4*time.Hour), "NO2")), nil
	case "frozen":
		trigger := core.NewRandomConst(0.003, rng.Derive(seed, "exp5/frozen-c"))
		return core.NewPipeline(core.NewStandard("frozen",
			core.NewFrozenValue(),
			core.NewSticky(trigger, 8*time.Hour), "NO2")), nil
	case "delay":
		return core.NewPipeline(core.NewStandard("delay",
			core.DelayTuple{Delay: 3 * time.Hour},
			core.NewRandomConst(0.01, rng.Derive(seed, "exp5/delay-c")), "NO2")), nil
	}
	return nil, fmt.Errorf("exp5: unknown scenario %q", name)
}

// exp5Detectors builds the fresh detector panel (stateful; one per run).
func exp5Detectors() []anomaly.Detector {
	nullAware := anomaly.NewRollingZScore("NO2", 72, 4)
	nullAware.FlagNulls = true
	ensembleMembers := []anomaly.Detector{
		func() anomaly.Detector {
			d := anomaly.NewRollingZScore("NO2", 72, 4)
			d.FlagNulls = true
			return d
		}(),
		anomaly.NewRateOfChange("NO2", 25),
		anomaly.NewFrozenRun("NO2", 3),
		anomaly.NewGapDetector(90 * time.Minute),
	}
	return []anomaly.Detector{
		nullAware,
		anomaly.NewSeasonalZScore("NO2", 4),
		anomaly.NewRateOfChange("NO2", 25),
		anomaly.NewFrozenRun("NO2", 3),
		anomaly.NewGapDetector(90 * time.Minute),
		anomaly.Ensemble{Members: ensembleMembers, Label: "ensemble(all four)"},
	}
}

// Exp5Scenarios lists the injected error types.
var Exp5Scenarios = []string{"outliers", "missing", "scale", "frozen", "delay"}

// RunExp5 builds the matrix over tuples hourly observations of one
// region.
func RunExp5(dataSeed int64, tuples int) (*Exp5Result, error) {
	if tuples <= 0 {
		tuples = 6000
	}
	data := dataset.AirQuality(dataset.RegionGucheng, dataSeed,
		dataset.AirQualityOptions{Tuples: tuples, MissingRate: -1})
	res := &Exp5Result{
		Scenarios: Exp5Scenarios,
		Cells:     make(map[string]map[string]Exp5Cell),
		Tuples:    tuples,
	}
	for _, det := range exp5Detectors() {
		res.Detectors = append(res.Detectors, det.Name())
	}

	for _, scenario := range Exp5Scenarios {
		pipe, err := exp5Scenario(scenario, dataSeed)
		if err != nil {
			return nil, err
		}
		proc := core.NewProcess(pipe)
		out, err := proc.Run(stream.NewSliceSource(data[0].Schema(), data))
		if err != nil {
			return nil, fmt.Errorf("exp5 %s: %w", scenario, err)
		}
		truth := out.Log.PollutedTuples()
		for _, det := range exp5Detectors() {
			flagged := anomaly.Run(det, out.Polluted)
			score := groundtruth.Evaluate(flagged, truth)
			cell := Exp5Cell{
				Detector:  det.Name(),
				Scenario:  scenario,
				Recall:    score.Recall(),
				Precision: score.Precision(),
				Flagged:   len(flagged),
				Injected:  len(truth),
			}
			if res.Cells[det.Name()] == nil {
				res.Cells[det.Name()] = make(map[string]Exp5Cell)
			}
			res.Cells[det.Name()][scenario] = cell
		}
	}
	return res, nil
}

// PrintExp5 renders the recall matrix (precision in parentheses).
func PrintExp5(w io.Writer, r *Exp5Result) {
	fmt.Fprintf(w, "Experiment 5 — detector recall per injected error type (%d tuples)\n", r.Tuples)
	fmt.Fprintf(w, "%-42s", "detector \\ error")
	for _, s := range r.Scenarios {
		fmt.Fprintf(w, " %12s", s)
	}
	fmt.Fprintln(w)
	for _, d := range r.Detectors {
		fmt.Fprintf(w, "%-42s", d)
		for _, s := range r.Scenarios {
			c := r.Cells[d][s]
			fmt.Fprintf(w, " %6.2f(%4.2f)", c.Recall, c.Precision)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "cells: recall(precision). Expected shape: each specialised detector")
	fmt.Fprintln(w, "dominates its own error type; the ensemble covers all of them.")
}
