package experiments

import (
	"fmt"
	"io"
	"math"

	"icewafl/internal/stats"
	"icewafl/internal/stream"
	"icewafl/internal/synth"
)

// Experiment 4 implements the paper's fourth future-work item (§5): use
// Icewafl-generated benchmark streams to test whether time-series
// synthesis approaches are agnostic to temporal error types. A polluted
// stream is synthesised with two approaches; the DQ suite then measures
// how much of the (temporal) error pattern survives synthesis:
//
//   - a moving-block bootstrap replays stretches of the polluted stream
//     and should preserve both the error rate and its temporal shape;
//   - a seasonal AR model generates fresh values and should wash the
//     errors out entirely.

// Exp4Row reports the error pattern of one stream.
type Exp4Row struct {
	Stream string
	// Tuples and Errors are the stream size and detected error count.
	Tuples, Errors int
	// ErrorRate is Errors / Tuples.
	ErrorRate float64
	// ShapeCorrelation is the Pearson correlation between this stream's
	// per-hour error histogram and the polluted original's (1 for the
	// original itself; NaN when a stream has no errors at all).
	ShapeCorrelation float64
}

// Exp4Result compares error-pattern preservation across synthesizers.
type Exp4Result struct {
	Rows []Exp4Row
}

// RunExp4 pollutes the wearable stream with the §3.1.1 sinusoidal
// missing-value pattern, synthesises it with both approaches, and
// validates all three streams with the same expectation.
func RunExp4(dataSeed int64, synthLen int) (*Exp4Result, error) {
	if synthLen <= 0 {
		synthLen = 2 * 1060
	}
	proc := RandomTemporalProcess(dataSeed)
	polluted, err := proc.Run(WearableSource(dataSeed))
	if err != nil {
		return nil, err
	}

	synthesizers := []synth.Synthesizer{
		synth.BlockBootstrap{BlockLen: 16},
		synth.SeasonalBlockBootstrap{BlockLen: 16},
		synth.ARSynthesizer{Order: 2},
	}
	attrs := []string{"BPM", "Steps", "Distance", "CaloriesBurned", "ActiveMinutes"}

	res := &Exp4Result{}
	origHist, origErrors := errorHistogram(polluted.Polluted)
	res.Rows = append(res.Rows, Exp4Row{
		Stream:           "polluted original",
		Tuples:           len(polluted.Polluted),
		Errors:           origErrors,
		ErrorRate:        float64(origErrors) / float64(len(polluted.Polluted)),
		ShapeCorrelation: 1,
	})

	for _, s := range synthesizers {
		generated, err := s.Synthesize(polluted.Polluted, attrs, synthLen, dataSeed+99)
		if err != nil {
			return nil, fmt.Errorf("exp4 %s: %w", s.Name(), err)
		}
		hist, errors := errorHistogram(generated)
		res.Rows = append(res.Rows, Exp4Row{
			Stream:           s.Name(),
			Tuples:           len(generated),
			Errors:           errors,
			ErrorRate:        float64(errors) / float64(len(generated)),
			ShapeCorrelation: histCorrelation(origHist, hist),
		})
	}
	return res, nil
}

// errorHistogram applies the §3.1.1 detection (null Distance values,
// the expect_column_values_to_not_be_null violations) row-wise and
// buckets the findings by hour of day.
func errorHistogram(tuples []stream.Tuple) ([24]float64, int) {
	var hist [24]float64
	errors := 0
	for _, t := range tuples {
		v, ok := t.Get("Distance")
		if !ok || !v.IsNull() {
			continue
		}
		ts, tok := t.Timestamp()
		if !tok {
			continue
		}
		hist[ts.Hour()]++
		errors++
	}
	return hist, errors
}

// histCorrelation computes the Pearson correlation of two hourly
// histograms; it returns NaN when either histogram is flat (e.g. no
// errors at all).
func histCorrelation(a, b [24]float64) float64 {
	as := a[:]
	bs := b[:]
	ma, mb := stats.Mean(as), stats.Mean(bs)
	var num, da, db float64
	for i := 0; i < 24; i++ {
		num += (as[i] - ma) * (bs[i] - mb)
		da += (as[i] - ma) * (as[i] - ma)
		db += (bs[i] - mb) * (bs[i] - mb)
	}
	if da == 0 || db == 0 {
		return math.NaN() // undefined for flat histograms
	}
	return num / math.Sqrt(da*db)
}

// PrintExp4 renders the comparison.
func PrintExp4(w io.Writer, r *Exp4Result) {
	fmt.Fprintln(w, "Experiment 4 — error-pattern preservation under time-series synthesis")
	fmt.Fprintf(w, "%-20s %8s %8s %10s %12s\n", "stream", "tuples", "errors", "rate", "shape-corr")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-20s %8d %8d %9.1f%% %12.2f\n",
			row.Stream, row.Tuples, row.Errors, row.ErrorRate*100, row.ShapeCorrelation)
	}
	fmt.Fprintln(w, "Expected shape: the plain bootstrap preserves the error rate but")
	fmt.Fprintln(w, "scrambles its daily shape; the seasonal bootstrap preserves both; the")
	fmt.Fprintln(w, "AR model synthesises clean data (no errors at all).")
}
