package experiments

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/dataset"
	"icewafl/internal/plot"
	"icewafl/internal/stats"
	"icewafl/internal/stream"
)

// Exp3Config parameterises the runtime-overhead experiment.
type Exp3Config struct {
	DataSeed int64
	// Runs is the number of timed executions per scenario (paper: 50).
	Runs int
	// Replicas repeats the wearable stream end to end to lengthen the
	// workload: the raw stream has only ~1k tuples, too short for stable
	// wall-clock measurements on modern hardware. Timestamps continue
	// seamlessly across replicas so temporal conditions stay meaningful.
	Replicas int
	// DiskDir, when non-empty, reads the input from and writes the
	// output to real files under this directory instead of memory —
	// closer to the paper's load-from/write-to-disk pipeline, with a
	// heavier baseline that dilutes the relative pollution overhead.
	DiskDir string
}

// DefaultExp3Config mirrors the paper's 50 runs over a stream stretched
// to ~106k tuples.
func DefaultExp3Config() Exp3Config {
	return Exp3Config{DataSeed: DefaultDataSeed, Runs: 50, Replicas: 100}
}

// Exp3Scenario is one box of Figure 8.
type Exp3Scenario struct {
	Name string
	// RuntimesMS holds the wall-clock time of every run in milliseconds.
	RuntimesMS []float64
	Box        stats.BoxPlot
	// OverheadPercent is the median overhead relative to the unpolluted
	// baseline (0 for the baseline itself).
	OverheadPercent float64
}

// Exp3Result reproduces Figure 8.
type Exp3Result struct {
	Scenarios []Exp3Scenario
	Tuples    int
}

// replicateWearable repeats the wearable stream n times, shifting
// timestamps so the cadence continues seamlessly.
func replicateWearable(dataSeed int64, n int) []stream.Tuple {
	base := dataset.Wearable(dataSeed)
	if n <= 1 {
		return base
	}
	span := time.Duration(len(base)) * dataset.WearableInterval
	out := make([]stream.Tuple, 0, len(base)*n)
	for k := 0; k < n; k++ {
		shift := time.Duration(k) * span
		for _, t := range base {
			c := t.Clone()
			ts, _ := c.Timestamp()
			c.SetTimestamp(ts.Add(shift))
			out = append(out, c)
		}
	}
	return out
}

// RunExp3 times the three §3.1 pollution scenarios against an unpolluted
// load-and-write baseline. Every run parses the stream from CSV, runs
// the (possibly empty) pollution process, and serialises the result back
// to CSV, so the measured pipeline covers ingest, pollution and egress —
// the same envelope the paper measures on its Flink cluster.
func RunExp3(cfg Exp3Config) (*Exp3Result, error) {
	tuples := replicateWearable(cfg.DataSeed, cfg.Replicas)
	schema := dataset.WearableSchema()
	var csvData bytes.Buffer
	if err := csvio.WriteAll(&csvData, schema, tuples); err != nil {
		return nil, err
	}
	input := csvData.Bytes()
	inputPath := ""
	if cfg.DiskDir != "" {
		inputPath = filepath.Join(cfg.DiskDir, "exp3-input.csv")
		if err := os.WriteFile(inputPath, input, 0o644); err != nil {
			return nil, fmt.Errorf("exp3: write disk input: %w", err)
		}
	}

	type scenario struct {
		name    string
		proc    func(seed int64) *core.Process // nil: baseline
		reorder int                            // >1 when the pipeline displaces arrivals
	}
	scenarios := []scenario{
		{"software update", SoftwareUpdateProcess, 1},
		// Reorder window 16 ≈ 4 h of slack at 15-minute cadence, enough
		// for the scenario's 1-hour delays.
		{"bad network connection", BadNetworkProcess, 16},
		{"random temporal errors", RandomTemporalProcess, 1},
		{"no pollution", nil, 1},
	}

	res := &Exp3Result{Tuples: len(tuples)}
	var baselineMedian float64
	for _, sc := range scenarios {
		runtimes := make([]float64, 0, cfg.Runs)
		for run := 0; run < cfg.Runs; run++ {
			elapsed, err := timeOnePipeline(input, inputPath, cfg.DiskDir, schema, sc.proc, sc.reorder, cfg.DataSeed+int64(run))
			if err != nil {
				return nil, fmt.Errorf("exp3 %s run %d: %w", sc.name, run, err)
			}
			runtimes = append(runtimes, elapsed.Seconds()*1000)
		}
		box := stats.NewBoxPlot(runtimes)
		res.Scenarios = append(res.Scenarios, Exp3Scenario{
			Name:       sc.name,
			RuntimesMS: runtimes,
			Box:        box,
		})
		if sc.proc == nil {
			baselineMedian = box.Median
		}
	}
	for i := range res.Scenarios {
		if baselineMedian > 0 {
			res.Scenarios[i].OverheadPercent =
				(res.Scenarios[i].Box.Median - baselineMedian) / baselineMedian * 100
		}
	}
	return res, nil
}

// timeOnePipeline measures one CSV → (pollute) → CSV execution. Both the
// baseline and the pollution scenarios run the tuple-wise streaming path
// (the analogue of a Flink operator chain): the only difference is the
// pollution operator in the middle, so the measured delta is the cost of
// pollution itself, as in the paper's setup. With diskDir set, input and
// output live on real files (synced), as in the paper's cluster runs.
func timeOnePipeline(input []byte, inputPath, diskDir string, schema *stream.Schema, mkProc func(int64) *core.Process, reorder int, seed int64) (time.Duration, error) {
	start := time.Now()

	var in io.Reader = bytes.NewReader(input)
	var outFile *os.File
	var out io.Writer = io.Discard
	if diskDir != "" {
		f, err := os.Open(inputPath)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
		outFile, err = os.CreateTemp(diskDir, "exp3-out-*.csv")
		if err != nil {
			return 0, err
		}
		defer os.Remove(outFile.Name())
		defer outFile.Close()
		out = outFile
	}

	reader, err := csvio.NewReader(in, schema)
	if err != nil {
		return 0, err
	}
	writer := csvio.NewWriter(out, schema)
	var src stream.Source = reader
	if mkProc != nil {
		proc := mkProc(seed)
		proc.DisableLog = true // the log is an optional output (Figure 2)
		src, _, err = proc.RunStream(reader, reorder)
		if err != nil {
			return 0, err
		}
	}
	if _, err := stream.Copy(writer, src); err != nil {
		return 0, err
	}
	if outFile != nil {
		if err := outFile.Sync(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// PrintExp3 renders Figure 8 as box-plot statistics plus an ASCII box
// plot panel.
func PrintExp3(w io.Writer, r *Exp3Result) {
	fmt.Fprintf(w, "Figure 8 — runtime overhead over %d tuples\n", r.Tuples)
	boxes := make([]plot.Box, 0, len(r.Scenarios))
	for _, sc := range r.Scenarios {
		fmt.Fprintf(w, "%-24s %s overhead=%+.1f%%\n", sc.Name, sc.Box.String(), sc.OverheadPercent)
		boxes = append(boxes, plot.Box{
			Label: sc.Name,
			Min:   sc.Box.WhiskerLow, Q1: sc.Box.Q1, Median: sc.Box.Median,
			Q3: sc.Box.Q3, Max: sc.Box.WhiskerHigh,
		})
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, plot.Boxes("runtime (ms)", boxes, 50))
}
