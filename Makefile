# Icewafl build & CI entry points. `make ci` is what the robustness gate
# runs: formatting, static analysis, the panic lint and the full test
# suite under the race detector. `make bench` + `make perfgate` are the
# perf-regression gate (see DESIGN.md §8).

GO ?= go

.PHONY: build test vet fmt lint race racehot integration loadtest loadtest-restart chaos ci cover bench perfgate fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt as a check: fails listing the offending files, fixes nothing.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; \
	fi

# Panic lint: the hot-path packages must not panic except where a
# `lint:allowpanic` marker documents a deliberate Must*/constructor
# contract. Everything else returns errors.
lint:
	@bad=$$(grep -n 'panic(' internal/stream/*.go internal/core/*.go \
		| grep -v '_test.go' | grep -v 'lint:allowpanic' || true); \
	if [ -n "$$bad" ]; then \
		echo "lint: unannotated panic() in hot-path packages:"; echo "$$bad"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# Focused race pass over the concurrent hot paths the observability
# layer instruments (lock-free counters under sharded workers) plus the
# service runtime's hub/WAL/supervisor machinery and the chaos harness
# that hammers it. Runs with -count=2 so the second pass exercises
# warmed per-worker cells — and, for the columnar differential suite in
# internal/core, re-runs the byte-identity properties against recycled
# batch arenas.
racehot:
	$(GO) test -race -count=2 ./internal/obs/ ./internal/core/ ./internal/stream/ ./internal/dq/ ./internal/netstream/ ./internal/chaos/

# Service-layer integration pass: the netstream hub/server/client suite
# plus the real icewafld binary serving the golden examples/cli pipeline
# over loopback to concurrent subscribers (one deliberately slow), under
# the race detector. Asserts byte-identical streams across clients and
# flow conservation (frames received == frames published). The
# icewafload leg is the scaled-down multi-tenant load run: 8 sessions ×
# 32 subscribers through the REST control plane, zero gap errors, quota
# rejections only where configured, every stream byte-identical to a
# direct in-process run.
integration:
	$(GO) test -race -count=1 ./internal/netstream/ ./cmd/icewafld/ ./cmd/icewafload/

# Multi-tenant load pass: the session-service suite (quota enforcement,
# durable WAL budgets, subscribe/close races, bounded delete of wedged
# sessions) plus the icewafload harness driving the real daemon, all
# under -race.
loadtest:
	$(GO) test -race -count=1 ./cmd/icewafload/
	$(GO) test -race -count=1 ./internal/netstream/ -run 'TestService|TestHubSubscribe|TestSubscriberGauges'

# Restart variant of the load pass: icewafload loads a durable
# (-state-dir) daemon with -keep, the daemon is SIGKILLed and restarted
# over the same state dir, and a second -attach run must reproduce the
# exact pre-restart digests with zero gap errors.
loadtest-restart:
	$(GO) test -race -count=1 ./cmd/icewafload/ -run 'Restart'

# Chaos pass: the fault-injection suite (proxy faults, disk faults,
# kill-and-recover e2e for both the single pipeline and the durable
# multi-tenant session fleet) under the race detector with a short
# schedule — every run crosses real SIGKILLs, torn WAL tails and
# mid-frame connection kills, and the icewafload leg re-verifies a
# restarted session daemon digest-for-digest.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/ ./cmd/icewafld/ -run 'Chaos|Proxy|FaultFS|CrashRecovery|WAL'
	$(GO) test -race -count=1 ./cmd/icewafload/ -run 'Restart'

ci: fmt vet lint race integration loadtest

# Coverage floor for the engine packages. The threshold is deliberately
# conservative; raise it as the suites grow.
COVER_MIN ?= 83

cover:
	$(GO) test -coverprofile=cover.out ./internal/stream/ ./internal/core/ ./internal/obs/
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_MIN)) }" || \
		{ echo "cover: total coverage $$total% is below the $(COVER_MIN)% floor"; exit 1; }

# Perf-regression gate. `bench` runs the fixed benchmark subset with
# -benchmem and records the current report; `perfgate` diffs it against
# the committed baseline and fails on >20% ns/op regressions or ANY
# allocs/op growth on zero-alloc-class benchmarks (the pooled hot paths
# — this is what keeps the nil-registry observability hooks honest).
# It also checks the shard scaling curve of the current run: speedup at
# the widest shard count must reach SCALING_FLOOR (prorated by the
# procs the run actually had), and no shard count may fall below
# SCALING_MIN of sequential throughput.
BENCH_PATTERN ?= BenchmarkPollutionTupleWise|BenchmarkPollutionMicroBatch|BenchmarkPollutionColumnar|BenchmarkFigure8RuntimeOverhead|BenchmarkShardedKeyed|BenchmarkTuplePool|BenchmarkObsOverhead|BenchmarkDQIncremental|BenchmarkDQBatchRevalidate|BenchmarkWALAppend|BenchmarkHubReplayFromWAL
BENCH_BASELINE ?= BENCH_pr7.json
BENCH_OUT ?= BENCH_pr8.json
MAX_REGRESS ?= 0.20
SCALING_BENCH ?= BenchmarkShardedKeyed
SCALING_FLOOR ?= 3.0
SCALING_MIN ?= 0.45
# Samples per benchmark: perf record averages repeated samples, which
# keeps both gates out of single-sample noise.
BENCH_COUNT ?= 3

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) . | tee bench.txt
	$(GO) run ./cmd/perf record -out $(BENCH_OUT) < bench.txt

perfgate:
	$(GO) run ./cmd/perf gate -baseline $(BENCH_BASELINE) -current $(BENCH_OUT) -max-regress $(MAX_REGRESS) \
		-scaling-bench '$(SCALING_BENCH)' -scaling-floor $(SCALING_FLOOR) -scaling-min $(SCALING_MIN)

# Short fuzz pass over every fuzz target (value parsing, the quarantine
# of malformed tuples, and the metrics codec round-trips). Extend
# FUZZTIME for deeper runs.
FUZZTIME ?= 15s

fuzz:
	$(GO) test ./internal/stream/ -run '^$$' -fuzz FuzzParseValue -fuzztime $(FUZZTIME)
	$(GO) test ./internal/csvio/ -run '^$$' -fuzz FuzzQuarantine -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzPrometheusExposition -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzMetricsJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dq/ -run '^$$' -fuzz FuzzSuiteJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netstream/ -run '^$$' -fuzz FuzzWALRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netstream/ -run '^$$' -fuzz FuzzWALTornTail -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netstream/ -run '^$$' -fuzz FuzzColumnarFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netstream/ -run '^$$' -fuzz FuzzColumnarTornFrame -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
	rm -f cover.out bench.txt
