# Icewafl build & CI entry points. `make ci` is what the robustness gate
# runs: static analysis plus the full test suite under the race detector.

GO ?= go

.PHONY: build test vet race ci fuzz clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

ci: vet race

# Short fuzz pass over every fuzz target (value parsing and the
# quarantine of malformed tuples). Extend FUZZTIME for deeper runs.
FUZZTIME ?= 15s

fuzz:
	$(GO) test ./internal/stream/ -run '^$$' -fuzz FuzzParseValue -fuzztime $(FUZZTIME)
	$(GO) test ./internal/csvio/ -run '^$$' -fuzz FuzzQuarantine -fuzztime $(FUZZTIME)

clean:
	$(GO) clean ./...
