// End-to-end test of the sharded streaming flags: the real binary run
// with -shards N must produce byte-identical polluted CSV and pollution
// log to the sequential run in strict order, and the same multiset of
// rows in relaxed order.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// writeShardedScenario materialises a keyed pollution scenario in dir:
// a schema with a sensor key attribute, a keyed polluter whose per-key
// RNG makes the output deterministic regardless of sharding, and a CSV
// input interleaving several sensors.
func writeShardedScenario(t *testing.T, dir string, rows int) (schema, config, input string) {
	t.Helper()
	schema = filepath.Join(dir, "schema.json")
	config = filepath.Join(dir, "pollution.json")
	input = filepath.Join(dir, "clean.csv")

	writeFile(t, schema, `{
	  "timestamp": "Time",
	  "fields": [
	    {"name": "Time", "kind": "time"},
	    {"name": "sensor", "kind": "string"},
	    {"name": "v", "kind": "float"}
	  ]
	}`)
	writeFile(t, config, `{
	  "seed": 42,
	  "pipelines": [{"name": "keyed", "polluters": [{
	    "name": "per-sensor noise",
	    "type": "keyed",
	    "key_attr": "sensor",
	    "template": {
	      "name": "scale",
	      "error": {"type": "scale_by_factor", "factor": 10},
	      "condition": {"type": "random", "p": 0.5},
	      "attrs": ["v"]
	    }
	  }]}]
	}`)

	var b strings.Builder
	b.WriteString("Time,sensor,v\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "2024-01-01T00:%02d:%02dZ,s%d,%d.5\n", i/60, i%60, i%7, i)
	}
	writeFile(t, input, b.String())
	return schema, config, input
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runShardedCLI executes one streaming run and returns the produced
// polluted CSV and pollution log bytes.
func runShardedCLI(t *testing.T, bin, schema, config, input string, extra ...string) (csv, plog string) {
	t.Helper()
	tmp := t.TempDir()
	out := filepath.Join(tmp, "dirty.csv")
	logOut := filepath.Join(tmp, "log.jsonl")
	args := []string{
		"-schema", schema, "-config", config, "-in", input,
		"-out", out, "-log", logOut, "-stream",
	}
	args = append(args, extra...)
	runCLI(t, bin, args...)
	csvB, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	logB, err := os.ReadFile(logOut)
	if err != nil {
		t.Fatal(err)
	}
	return string(csvB), string(logB)
}

// TestCLISharded runs the same keyed scenario sequentially and sharded
// through the real binary and asserts the documented ordering
// guarantees of -shard-order.
func TestCLISharded(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildCLI(t)
	schema, config, input := writeShardedScenario(t, t.TempDir(), 240)

	seqCSV, seqLog := runShardedCLI(t, bin, schema, config, input)
	if !strings.Contains(seqLog, "scale_by_factor") {
		t.Fatalf("scenario injected no errors; log:\n%.400s", seqLog)
	}

	for _, shards := range []int{2, 4, 8} {
		csv, plog := runShardedCLI(t, bin, schema, config, input,
			"-shards", fmt.Sprint(shards), "-shard-key", "sensor")
		if csv != seqCSV {
			t.Errorf("shards=%d strict CSV differs from sequential run", shards)
		}
		if plog != seqLog {
			t.Errorf("shards=%d strict log differs from sequential run", shards)
		}
	}

	// Relaxed order: same multiset of rows and log lines, any interleaving.
	csv, plog := runShardedCLI(t, bin, schema, config, input,
		"-shards", "4", "-shard-key", "sensor", "-shard-order", "relaxed")
	if sortLines(csv) != sortLines(seqCSV) {
		t.Error("relaxed CSV is not the sequential multiset of rows")
	}
	if sortLines(plog) != sortLines(seqLog) {
		t.Error("relaxed log is not the sequential multiset of entries")
	}
}

func sortLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
