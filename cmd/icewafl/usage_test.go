// Flag-validation tests: bad invocations must exit with the
// conventional usage status (2), print a one-line diagnostic naming the
// offending flag, and show the flag usage — before any output file is
// created.
package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIFlagValidation exercises every rejected flag range and
// combination against the real binary.
func TestCLIFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildCLI(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	base := []string{
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-out", filepath.Join(t.TempDir(), "dirty.csv"),
	}

	cases := []struct {
		name string
		args []string
		want string // substring of the diagnostic
	}{
		{"missing required", nil, "-schema, -config, -in and -out are required"},
		{"resume without checkpoint", append(base, "-stream", "-resume"), "-resume requires -checkpoint"},
		{"checkpoint without stream", append(base, "-checkpoint", "x.ckpt"), "-checkpoint requires -stream"},
		{"trace-sample without metrics", append(base, "-trace-sample", "8"), "-trace-sample requires -metrics"},
		{"trace-sample out of range", append(base, "-trace-sample", "4294967296", "-metrics", "m.json"), "-trace-sample must be at most"},
		{"negative metrics-interval", append(base, "-metrics", "m.json", "-metrics-interval", "-1s"), "-metrics-interval must be non-negative"},
		{"metrics-interval without metrics", append(base, "-metrics-interval", "1s"), "-metrics-interval requires -metrics"},
		{"reorder below one", append(base, "-stream", "-reorder", "0"), "-reorder must be at least 1"},
		{"negative checkpoint-interval", append(base, "-stream", "-checkpoint", "x.ckpt", "-checkpoint-interval", "-5"), "-checkpoint-interval must be non-negative"},
		{"stream with clean-out", append(base, "-stream", "-clean-out", "clean.csv"), "-stream cannot materialise"},
		{"shards below one", append(base, "-stream", "-shards", "0"), "-shards must be at least 1"},
		{"shards without stream", append(base, "-shards", "4", "-shard-key", "sensor"), "-shards requires -stream"},
		{"shards without shard-key", append(base, "-stream", "-shards", "4"), "-shards requires -shard-key"},
		{"shards with checkpoint", append(base, "-stream", "-checkpoint", "x.ckpt", "-shards", "4", "-shard-key", "sensor"), "-shards is incompatible with -checkpoint"},
		{"bad shard-order", append(base, "-stream", "-shards", "4", "-shard-key", "sensor", "-shard-order", "chaotic"), "unknown order policy"},
		{"columnar without stream", append(base, "-columnar"), "-columnar requires -stream"},
		{"columnar with shards", append(base, "-stream", "-columnar", "-shards", "4", "-shard-key", "sensor"), "-columnar is incompatible with -shards"},
		{"columnar with checkpoint", append(base, "-stream", "-columnar", "-checkpoint", "x.ckpt"), "-columnar is incompatible with -checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected non-zero exit, got err=%v\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2 (usage)\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("diagnostic missing %q:\n%s", tc.want, out)
			}
			if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-schema string") {
				t.Errorf("usage text not printed:\n%s", out)
			}
		})
	}
}
