// End-to-end golden-file test of the CLI: builds the real binary, runs
// it over the examples/cli wearable scenario, and compares the polluted
// CSV, the pollution log, and the metrics snapshots byte-for-byte
// against committed goldens. The whole engine is seeded, the metrics
// snapshot carries no timestamps, and map-valued families are exported
// in sorted order, so every artifact is reproducible to the byte.
//
// Regenerate the goldens after an intentional behaviour change with:
//
//	go test ./cmd/icewafl -run TestCLIGolden -update
package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// buildCLI compiles the icewafl binary into a scratch dir once per test
// run.
func buildCLI(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "icewafl")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runCLI executes the built binary and fails the test on a non-zero
// exit.
func runCLI(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("icewafl %v: %v\n%s", args, err, out)
	}
}

// checkGolden compares a produced file against testdata/<name>, or
// rewrites the golden under -update.
func checkGolden(t *testing.T, gotPath, name string) {
	t.Helper()
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatalf("read output %s: %v", gotPath, err)
	}
	goldenPath := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", goldenPath, len(got))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create it): %v", goldenPath, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden %s: got %d bytes, want %d bytes\n"+
			"inspect with: diff %s %s\nor regenerate with: go test ./cmd/icewafl -run TestCLIGolden -update",
			gotPath, goldenPath, len(got), len(want), goldenPath, gotPath)
	}
}

// TestCLIGolden runs the examples/cli wearable scenario end to end in
// batch mode and checks every artifact — polluted CSV, pollution log,
// JSON metrics — against the goldens, then re-runs in streaming mode
// with Prometheus metrics and asserts the polluted stream is
// byte-identical across execution modes.
func TestCLIGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildCLI(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	tmp := t.TempDir()

	// Batch mode: CSV + log + JSON metrics.
	dirty := filepath.Join(tmp, "dirty.csv")
	logOut := filepath.Join(tmp, "log.jsonl")
	metrics := filepath.Join(tmp, "metrics.json")
	runCLI(t, bin,
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-out", dirty,
		"-log", logOut,
		"-metrics", metrics,
	)
	checkGolden(t, dirty, "dirty.csv.golden")
	checkGolden(t, logOut, "log.jsonl.golden")
	checkGolden(t, metrics, "metrics.json.golden")

	// Streaming mode: same config, Prometheus exposition.
	streamDirty := filepath.Join(tmp, "dirty-stream.csv")
	streamProm := filepath.Join(tmp, "metrics.prom")
	runCLI(t, bin,
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-out", streamDirty,
		"-stream",
		"-metrics", streamProm,
		"-metrics-format", "prom",
	)
	checkGolden(t, streamProm, "metrics.prom.golden")

	// The streaming engine must emit the exact bytes of the batch run.
	batchBytes, err := os.ReadFile(dirty)
	if err != nil {
		t.Fatal(err)
	}
	streamBytes, err := os.ReadFile(streamDirty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batchBytes, streamBytes) {
		t.Errorf("streaming output (%d bytes) differs from batch output (%d bytes)",
			len(streamBytes), len(batchBytes))
	}

	// Columnar mode: the batch-native engine must also emit the exact
	// bytes of the batch run, including the pollution log.
	colDirty := filepath.Join(tmp, "dirty-columnar.csv")
	colLog := filepath.Join(tmp, "log-columnar.jsonl")
	runCLI(t, bin,
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-out", colDirty,
		"-log", colLog,
		"-stream", "-columnar",
	)
	colBytes, err := os.ReadFile(colDirty)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batchBytes, colBytes) {
		t.Errorf("columnar output (%d bytes) differs from batch output (%d bytes)",
			len(colBytes), len(batchBytes))
	}
	checkGolden(t, colLog, "log.jsonl.golden")
}
