// Command icewafl is the end-to-end polluter CLI: it reads a CSV stream,
// applies a JSON pollution configuration, and writes the polluted stream,
// the clean (prepared) stream, and the pollution log — the full workflow
// of Figure 2.
//
// Usage:
//
//	icewafl -schema schema.json -config pollution.json \
//	        -in clean.csv -out dirty.csv [-clean-out clean_out.csv] [-log log.jsonl]
//
// The schema file lists attributes in CSV column order, e.g.:
//
//	{"timestamp": "Time",
//	 "fields": [{"name": "Time", "kind": "time"},
//	            {"name": "BPM", "kind": "float"}]}
//
// Fault tolerance: the configuration's fault_policy section enables
// source retrying and dead-letter quarantine. In streaming mode,
// -checkpoint periodically snapshots the run so that a killed process
// can continue with -resume, producing output byte-identical to an
// uninterrupted run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	"icewafl/internal/config"
	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/obs"
	"icewafl/internal/report"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// maxTraceSample bounds -trace-sample: the sampler selects 1 in N
// tuples by ID, so an N beyond 2^32 can never fire on a realistic
// stream and is certainly a typo.
const maxTraceSample = math.MaxUint32

// fatalUsage prints the error and the flag usage, exiting with the
// conventional usage status (2) so scripts can distinguish bad
// invocations from runtime failures.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "icewafl: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("icewafl: ")
	schemaPath := flag.String("schema", "", "path to the JSON schema file (required)")
	configPath := flag.String("config", "", "path to the JSON pollution configuration (required)")
	inPath := flag.String("in", "", "input CSV (required; '-' for stdin)")
	outPath := flag.String("out", "", "polluted output CSV (required; '-' for stdout)")
	cleanOut := flag.String("clean-out", "", "optional output CSV for the prepared clean stream")
	logOut := flag.String("log", "", "optional pollution log output (JSON lines)")
	meta := flag.Bool("meta", false, "emit Algorithm 1's (_id, _substream, …) columns in the outputs")
	reportOut := flag.String("report", "", "optional Markdown report output documenting the run")
	streaming := flag.Bool("stream", false, "tuple-wise constant-memory execution for unbounded inputs (no -clean-out/-report; bounded reordering)")
	columnar := flag.Bool("columnar", false, "streaming mode: batch-native columnar execution of the pollution hot path (requires -stream; single pipeline; incompatible with -shards and -checkpoint)")
	reorder := flag.Int("reorder", 64, "streaming mode: bounded reordering window in tuples")
	shards := flag.Int("shards", 1, "streaming mode: partition the keyed hot path across N parallel workers (requires -shard-key)")
	shardKey := flag.String("shard-key", "", "attribute whose value routes tuples to shards (required with -shards > 1)")
	shardOrder := flag.String("shard-order", "strict", "sharded merge order: strict (byte-identical to sequential) or relaxed (per-key order only)")
	checkpointPath := flag.String("checkpoint", "", "streaming mode: checkpoint file; the run snapshots its state periodically so it can be resumed")
	resume := flag.Bool("resume", false, "continue an interrupted run from the -checkpoint file")
	checkpointEvery := flag.Int("checkpoint-interval", 0, "tuples between checkpoints (0 = fault_policy's checkpoint_interval, default 5000)")
	deadOut := flag.String("dead-letters", "", "optional JSON-lines output for quarantined tuples (requires fault_policy.quarantine)")
	metricsOut := flag.String("metrics", "", "optional metrics snapshot output; written atomically when the run finishes (and periodically with -metrics-interval)")
	metricsFormat := flag.String("metrics-format", "json", "metrics encoding: json or prom (Prometheus text exposition)")
	metricsInterval := flag.Duration("metrics-interval", 0, "rewrite the -metrics file this often while the run is live (0 = only at the end)")
	traceSample := flag.Uint64("trace-sample", 0, "deterministically trace 1 in N tuples through the pipeline stages (0 = off; requires -metrics)")
	flag.Parse()

	if *schemaPath == "" || *configPath == "" || *inPath == "" || *outPath == "" {
		fatalUsage("-schema, -config, -in and -out are required")
	}
	// Flag range and combination validation happens before any I/O so a
	// bad invocation never partially creates output files.
	if *reorder < 1 {
		fatalUsage("-reorder must be at least 1, got %d", *reorder)
	}
	if *checkpointEvery < 0 {
		fatalUsage("-checkpoint-interval must be non-negative, got %d", *checkpointEvery)
	}
	if *metricsInterval < 0 {
		fatalUsage("-metrics-interval must be non-negative, got %v", *metricsInterval)
	}
	if *metricsInterval > 0 && *metricsOut == "" {
		fatalUsage("-metrics-interval requires -metrics")
	}
	if *traceSample > maxTraceSample {
		fatalUsage("-trace-sample must be at most %d (1 in N sampling by tuple ID), got %d", uint64(maxTraceSample), *traceSample)
	}
	if *traceSample > 0 && *metricsOut == "" {
		fatalUsage("-trace-sample requires -metrics")
	}
	if *checkpointPath != "" && !*streaming {
		fatalUsage("-checkpoint requires -stream")
	}
	if *resume && *checkpointPath == "" {
		fatalUsage("-resume requires -checkpoint")
	}
	if *streaming && (*cleanOut != "" || *reportOut != "") {
		fatalUsage("-stream cannot materialise -clean-out or -report; drop those flags")
	}
	if *shards < 1 {
		fatalUsage("-shards must be at least 1, got %d", *shards)
	}
	order, err := core.ParseOrderPolicy(*shardOrder)
	if err != nil {
		fatalUsage("%v", err)
	}
	if *shards > 1 {
		if !*streaming {
			fatalUsage("-shards requires -stream")
		}
		if *checkpointPath != "" {
			fatalUsage("-shards is incompatible with -checkpoint; checkpoints cover the sequential path only")
		}
		if *shardKey == "" {
			fatalUsage("-shards requires -shard-key")
		}
	}
	if *columnar {
		if !*streaming {
			fatalUsage("-columnar requires -stream")
		}
		if *shards > 1 {
			fatalUsage("-columnar is incompatible with -shards; the columnar engine is sequential")
		}
		if *checkpointPath != "" {
			fatalUsage("-columnar is incompatible with -checkpoint; checkpoints cover the tuple-wise path only")
		}
	}

	schema, err := schemafile.Load(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}

	cf, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := config.Parse(cf)
	cf.Close()
	if err != nil {
		log.Fatal(err)
	}
	proc, err := config.Build(doc)
	if err != nil {
		log.Fatal(err)
	}
	proc.KeepClean = *cleanOut != ""
	if proc.Fault.Quarantine {
		proc.Fault.DLQ = stream.NewDeadLetterQueue()
	} else if *deadOut != "" {
		log.Fatal("-dead-letters requires fault_policy.quarantine in the configuration")
	}
	if err := proc.ValidateAttrs(schema); err != nil {
		log.Fatal(err)
	}

	metrics := setupMetrics(*metricsOut, *metricsFormat, *metricsInterval, *traceSample)
	proc.Obs = metrics.registry()

	in := os.Stdin
	if *inPath != "-" {
		in, err = os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
	}
	var reader stream.Source
	if *columnar {
		// Batch-native ingest: the columnar runner detects the reader's
		// ReadBatch face and decodes CSV rows straight into column
		// batches (unless a retry wrapper intervenes below).
		reader, err = csvio.NewColumnReader(in, schema)
	} else {
		reader, err = csvio.NewReader(in, schema)
	}
	if err != nil {
		log.Fatal(err)
	}
	src := withRetry(reader, doc, metrics.registry())

	if *streaming {
		if *checkpointPath != "" {
			interval := *checkpointEvery
			if interval <= 0 {
				interval = doc.Fault.Interval()
			}
			metrics.start()
			runCheckpointed(proc, src, schema, checkpointedRun{
				outPath:  *outPath,
				logOut:   *logOut,
				deadOut:  *deadOut,
				meta:     *meta,
				ckptPath: *checkpointPath,
				resume:   *resume,
				interval: interval,
				reorder:  *reorder,
			})
			metrics.finish()
			return
		}
		metrics.start()
		runStreaming(proc, src, schema, *outPath, *logOut, *deadOut, *meta, *columnar, *reorder,
			core.ShardConfig{KeyAttr: *shardKey, Shards: *shards, Order: order, Arena: true})
		metrics.finish()
		return
	}

	metrics.start()

	result, err := proc.Run(src)
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "-" {
		out, err = os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	writeAll := csvio.WriteAll
	if *meta {
		writeAll = csvio.WriteAllMeta
	}
	if err := writeAll(out, schema, result.Polluted); err != nil {
		log.Fatal(err)
	}
	proc.Obs.Add(obs.CSinkWrites, uint64(len(result.Polluted)))

	if *cleanOut != "" {
		cf, err := os.Create(*cleanOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeAll(cf, schema, result.Clean); err != nil {
			log.Fatal(err)
		}
		if err := cf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *logOut != "" {
		lf, err := os.Create(*logOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := result.Log.WriteJSON(lf); err != nil {
			log.Fatal(err)
		}
		if err := lf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *deadOut != "" {
		if err := writeDeadLetters(*deadOut, result.Quarantined); err != nil {
			log.Fatal(err)
		}
	}
	if *reportOut != "" {
		rf, err := os.Create(*reportOut)
		if err != nil {
			log.Fatal(err)
		}
		err = report.Write(rf, report.Input{
			Title:       "Icewafl pollution run: " + *configPath,
			Process:     proc,
			Result:      result,
			GeneratedAt: time.Now(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := rf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	metrics.finish()
	log.Printf("wrote %d tuples (%d errors injected, %d dropped, %d quarantined)",
		len(result.Polluted), result.Log.Len(), result.DroppedTuples, len(result.Quarantined))
}

// metricsExport bundles the optional observability wiring of one CLI
// run: the registry every runner reports into, the snapshot file sink,
// and the optional live-rewrite ticker. The zero export (no -metrics)
// is inert: registry() returns nil, start/finish are no-ops.
type metricsExport struct {
	reg  *obs.Registry
	fn   obs.SinkFunc
	tick *obs.MetricsSink
}

// setupMetrics builds the export for the given flags. path == ""
// disables metrics entirely.
func setupMetrics(path, format string, interval time.Duration, traceSample uint64) *metricsExport {
	if path == "" {
		return &metricsExport{}
	}
	fn, err := obs.FileSink(path, format)
	if err != nil {
		log.Fatal(err)
	}
	m := &metricsExport{reg: obs.NewRegistry(), fn: fn}
	if traceSample > 0 {
		m.reg.SetTraceSampling(traceSample, 0)
	}
	if interval > 0 {
		m.tick, err = obs.NewMetricsSink(m.reg, interval, fn)
		if err != nil {
			log.Fatal(err)
		}
	}
	return m
}

// registry returns the run's registry (nil when metrics are off — the
// engine's hooks are nil-safe).
func (m *metricsExport) registry() *obs.Registry { return m.reg }

// start launches the periodic rewrite, when configured.
func (m *metricsExport) start() {
	if m.tick != nil {
		m.tick.Start()
	}
}

// finish writes the final snapshot (stopping the ticker first).
func (m *metricsExport) finish() {
	if m.reg == nil {
		return
	}
	if m.tick != nil {
		if err := m.tick.Stop(); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := m.fn(m.reg.Snapshot()); err != nil {
		log.Fatal(err)
	}
}

// withRetry wraps src in a RetrySource when the configuration enables
// source retrying, instrumenting it against the run's registry.
func withRetry(src stream.Source, doc *config.Document, reg *obs.Registry) stream.Source {
	policy, ok, err := doc.Fault.RetryPolicy()
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		return src
	}
	rs := stream.NewRetrySource(src, policy)
	rs.Instrument(reg)
	return rs
}

// writeDeadLetters persists quarantined tuples as JSON lines.
func writeDeadLetters(path string, letters []stream.DeadLetter) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i := range letters {
		if err := enc.Encode(&letters[i]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// runStreaming executes the constant-memory tuple-wise path: tuples are
// polluted and written as they arrive, with only the bounded reordering
// window buffered. With sharding.Shards > 1 the keyed hot path is
// partitioned across parallel workers; the CLI always runs the sharded
// path in arena mode, which is safe because the sinks below never hold
// a tuple across Next calls. With columnar the pollution hot path runs
// on the columnar engine (batch kernels over column batches), emitting
// a stream byte-identical to the tuple-wise runner.
func runStreaming(proc *core.Process, reader stream.Source, schema *stream.Schema, outPath, logOut, deadOut string, meta, columnar bool, reorder int, sharding core.ShardConfig) {
	var (
		src  stream.Source
		plog *core.Log
		err  error
	)
	switch {
	case sharding.Shards > 1:
		src, plog, err = proc.RunStreamSharded(reader, reorder, sharding)
	case columnar:
		src, plog, err = proc.RunStreamColumnar(reader, reorder)
	default:
		src, plog, err = proc.RunStreamMulti(reader, reorder)
	}
	if err != nil {
		log.Fatal(err)
	}
	out := os.Stdout
	if outPath != "-" {
		out, err = os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	var sink stream.Sink = csvio.NewWriter(out, schema)
	if meta {
		sink = csvio.NewMetaWriter(out, schema)
	}
	n, err := stream.Copy(stream.ObserveSink(sink, proc.Obs), src)
	if err != nil {
		log.Fatal(err)
	}
	if logOut != "" && plog != nil {
		lf, err := os.Create(logOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := plog.WriteJSON(lf); err != nil {
			log.Fatal(err)
		}
		if err := lf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	quarantined := 0
	if proc.Fault.DLQ != nil {
		quarantined = proc.Fault.DLQ.Len()
		if deadOut != "" {
			if err := writeDeadLetters(deadOut, proc.Fault.DLQ.Letters()); err != nil {
				log.Fatal(err)
			}
		}
	}
	errs := 0
	if plog != nil {
		errs = plog.Len()
	}
	log.Printf("streamed %d tuples (%d errors injected, %d quarantined)", n, errs, quarantined)
}

// checkpointedRun bundles the parameters of a checkpointed streaming run.
type checkpointedRun struct {
	outPath  string
	logOut   string
	deadOut  string
	meta     bool
	ckptPath string
	resume   bool
	interval int
	reorder  int
}

// resumableSink is the writer contract checkpointing needs: flushing to
// record exact file offsets and header suppression on resume.
type resumableSink interface {
	stream.Sink
	Flush() error
	OmitHeader()
}

// runCheckpointed executes the checkpointed streaming path. Every
// opt.interval emitted tuples it flushes the output and log files,
// snapshots the pipeline state, and atomically rewrites the checkpoint
// file. With opt.resume the previous run's files are truncated to the
// checkpointed offsets and the run continues exactly where the snapshot
// was taken.
func runCheckpointed(proc *core.Process, reader stream.Source, schema *stream.Schema, opt checkpointedRun) {
	if opt.outPath == "-" {
		log.Fatal("-checkpoint requires a real -out file (offsets must be truncatable on resume)")
	}
	if opt.reorder > 1 {
		log.Fatal("-checkpoint requires -reorder 1: checkpoints cannot cover tuples buffered in the reordering window")
	}

	var ckpt *core.Checkpoint
	if opt.resume {
		var err error
		ckpt, err = core.ReadCheckpoint(opt.ckptPath)
		if err != nil {
			log.Fatal(err)
		}
	}

	outF := openResumable(opt.outPath, opt.resume, ckpt, "out_bytes")
	defer outF.Close()
	var logF *os.File
	if opt.logOut != "" {
		logF = openResumable(opt.logOut, opt.resume, ckpt, "log_bytes")
		defer logF.Close()
	}

	src, plog, ck, err := proc.RunStreamCheckpointed(reader, ckpt)
	if err != nil {
		log.Fatal(err)
	}

	var sink resumableSink = csvio.NewWriter(outF, schema)
	if opt.meta {
		sink = csvio.NewMetaWriter(outF, schema)
	}
	if opt.resume {
		sink.OmitHeader()
	}

	flushedLog := 0 // entries of this session's log already on disk
	capture := func() error {
		if err := sink.Flush(); err != nil {
			return err
		}
		c, err := ck.Capture()
		if err != nil {
			return err
		}
		outOff, err := outF.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		c.Offsets["out_bytes"] = outOff
		if logF != nil && plog != nil {
			enc := json.NewEncoder(logF)
			for i := flushedLog; i < len(plog.Entries); i++ {
				if err := enc.Encode(&plog.Entries[i]); err != nil {
					return err
				}
			}
			flushedLog = len(plog.Entries)
			logOff, err := logF.Seek(0, io.SeekCurrent)
			if err != nil {
				return err
			}
			c.Offsets["log_bytes"] = logOff
		}
		return core.WriteCheckpoint(opt.ckptPath, c)
	}

	n := 0
	for {
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		if err := sink.Write(t); err != nil {
			log.Fatal(err)
		}
		proc.Obs.Inc(obs.CSinkWrites)
		n++
		if n%opt.interval == 0 {
			if err := capture(); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sink.Close(); err != nil {
		log.Fatal(err)
	}
	if err := capture(); err != nil {
		log.Fatal(err)
	}
	quarantined := 0
	if dlq := ck.DeadLetters(); dlq != nil {
		quarantined = dlq.Len()
		if opt.deadOut != "" {
			if err := writeDeadLetters(opt.deadOut, dlq.Letters()); err != nil {
				log.Fatal(err)
			}
		}
	}
	errs := 0
	if plog != nil {
		errs = plog.Len()
	}
	log.Printf("streamed %d tuples (%d errors injected, %d quarantined, checkpoint %s)",
		n, errs, quarantined, opt.ckptPath)
}

// openResumable opens path for appending output. On resume the file is
// truncated to the checkpointed offset first, discarding rows written
// after the snapshot; otherwise a fresh file is created.
func openResumable(path string, resume bool, ckpt *core.Checkpoint, offsetKey string) *os.File {
	if !resume {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	off, ok := ckpt.Offsets[offsetKey]
	if !ok {
		log.Fatalf("checkpoint has no %q offset; was it written by -checkpoint?", offsetKey)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		log.Fatal(err)
	}
	return f
}
