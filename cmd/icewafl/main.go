// Command icewafl is the end-to-end polluter CLI: it reads a CSV stream,
// applies a JSON pollution configuration, and writes the polluted stream,
// the clean (prepared) stream, and the pollution log — the full workflow
// of Figure 2.
//
// Usage:
//
//	icewafl -schema schema.json -config pollution.json \
//	        -in clean.csv -out dirty.csv [-clean-out clean_out.csv] [-log log.jsonl]
//
// The schema file lists attributes in CSV column order, e.g.:
//
//	{"timestamp": "Time",
//	 "fields": [{"name": "Time", "kind": "time"},
//	            {"name": "BPM", "kind": "float"}]}
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"icewafl/internal/config"
	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/report"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("icewafl: ")
	schemaPath := flag.String("schema", "", "path to the JSON schema file (required)")
	configPath := flag.String("config", "", "path to the JSON pollution configuration (required)")
	inPath := flag.String("in", "", "input CSV (required; '-' for stdin)")
	outPath := flag.String("out", "", "polluted output CSV (required; '-' for stdout)")
	cleanOut := flag.String("clean-out", "", "optional output CSV for the prepared clean stream")
	logOut := flag.String("log", "", "optional pollution log output (JSON lines)")
	meta := flag.Bool("meta", false, "emit Algorithm 1's (_id, _substream, …) columns in the outputs")
	reportOut := flag.String("report", "", "optional Markdown report output documenting the run")
	streaming := flag.Bool("stream", false, "tuple-wise constant-memory execution for unbounded inputs (no -clean-out/-report; bounded reordering)")
	reorder := flag.Int("reorder", 64, "streaming mode: bounded reordering window in tuples")
	flag.Parse()

	if *schemaPath == "" || *configPath == "" || *inPath == "" || *outPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	schema, err := schemafile.Load(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}

	cf, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	proc, err := config.Load(cf)
	cf.Close()
	if err != nil {
		log.Fatal(err)
	}
	proc.KeepClean = *cleanOut != ""
	if err := proc.ValidateAttrs(schema); err != nil {
		log.Fatal(err)
	}

	in := os.Stdin
	if *inPath != "-" {
		in, err = os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
	}
	reader, err := csvio.NewReader(in, schema)
	if err != nil {
		log.Fatal(err)
	}

	if *streaming {
		if *cleanOut != "" || *reportOut != "" {
			log.Fatal("-stream cannot materialise -clean-out or -report; drop those flags")
		}
		runStreaming(proc, reader, schema, *outPath, *logOut, *meta, *reorder)
		return
	}

	result, err := proc.Run(reader)
	if err != nil {
		log.Fatal(err)
	}

	out := os.Stdout
	if *outPath != "-" {
		out, err = os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	writeAll := csvio.WriteAll
	if *meta {
		writeAll = csvio.WriteAllMeta
	}
	if err := writeAll(out, schema, result.Polluted); err != nil {
		log.Fatal(err)
	}

	if *cleanOut != "" {
		cf, err := os.Create(*cleanOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeAll(cf, schema, result.Clean); err != nil {
			log.Fatal(err)
		}
		if err := cf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *logOut != "" {
		lf, err := os.Create(*logOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := result.Log.WriteJSON(lf); err != nil {
			log.Fatal(err)
		}
		if err := lf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *reportOut != "" {
		rf, err := os.Create(*reportOut)
		if err != nil {
			log.Fatal(err)
		}
		err = report.Write(rf, report.Input{
			Title:       "Icewafl pollution run: " + *configPath,
			Process:     proc,
			Result:      result,
			GeneratedAt: time.Now(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := rf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("wrote %d tuples (%d errors injected, %d dropped)",
		len(result.Polluted), result.Log.Len(), result.DroppedTuples)
}

// runStreaming executes the constant-memory tuple-wise path: tuples are
// polluted and written as they arrive, with only the bounded reordering
// window buffered.
func runStreaming(proc *core.Process, reader stream.Source, schema *stream.Schema, outPath, logOut string, meta bool, reorder int) {
	src, plog, err := proc.RunStreamMulti(reader, reorder)
	if err != nil {
		log.Fatal(err)
	}
	out := os.Stdout
	if outPath != "-" {
		out, err = os.Create(outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	var sink stream.Sink = csvio.NewWriter(out, schema)
	if meta {
		sink = csvio.NewMetaWriter(out, schema)
	}
	n, err := stream.Copy(sink, src)
	if err != nil {
		log.Fatal(err)
	}
	if logOut != "" && plog != nil {
		lf, err := os.Create(logOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := plog.WriteJSON(lf); err != nil {
			log.Fatal(err)
		}
		if err := lf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	errs := 0
	if plog != nil {
		errs = plog.Len()
	}
	log.Printf("streamed %d tuples (%d errors injected)", n, errs)
}
