// Command exp2 reproduces Experiment 2 of the paper (§3.2): the
// robustness of ARIMA, ARIMAX and Holt-Winters against temporally
// increasing noise (Figure 6) and temporally increasing scale errors
// (Figure 7) on the air-quality streams of three regions.
//
// Usage:
//
//	exp2 [-region Wanshouxigong|all] [-scenario noise|scale|eval|all]
//	     [-reps 10] [-seed 20160226] [-grid] [-print-splits]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"icewafl/internal/dataset"
	"icewafl/internal/experiments"
	"icewafl/internal/timeseries"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exp2: ")
	region := flag.String("region", "all", "region: Gucheng, Wanshouxigong, Wanliu, or all")
	scenario := flag.String("scenario", "all", "scenario: eval, noise, scale, or all")
	reps := flag.Int("reps", 10, "polluted replicates per scenario")
	seed := flag.Int64("seed", experiments.DefaultDataSeed, "dataset seed")
	grid := flag.Bool("grid", false, "run the §3.2.2 grid search instead of the evaluation")
	printSplits := flag.Bool("print-splits", false, "print the Table 2 data splits and exit")
	withSARIMA := flag.Bool("with-sarima", false, "add a seasonal ARIMA as a fourth method (extension)")
	withBaselines := flag.Bool("with-baselines", false, "add naive and seasonal-naive reference forecasters")
	flag.Parse()

	cfg := experiments.DefaultExp2Config()
	cfg.DataSeed = *seed
	cfg.Reps = *reps
	cfg.IncludeSARIMA = *withSARIMA
	cfg.IncludeBaselines = *withBaselines

	regions := dataset.Regions()
	if *region != "all" {
		regions = []string{*region}
	}

	if *printSplits {
		for _, reg := range regions {
			printTable2(cfg, reg)
		}
		return
	}

	if *grid {
		for _, reg := range regions {
			fmt.Printf("grid search (5-fold time-series CV) for region %s:\n", reg)
			winners, err := experiments.RunExp2GridSearch(cfg, reg)
			if err != nil {
				log.Fatal(err)
			}
			for _, family := range experiments.ModelNames {
				w := winners[family]
				fmt.Printf("  %-14s best: %-32s CV-MAE %.2f\n", family, w.Label, w.MAE)
			}
		}
		return
	}

	scenarios := []string{experiments.ScenarioEval, experiments.ScenarioNoise, experiments.ScenarioScale}
	if *scenario != "all" {
		scenarios = []string{*scenario}
	}
	for _, reg := range regions {
		for _, sc := range scenarios {
			r, err := experiments.RunExp2(cfg, reg, sc)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintExp2(os.Stdout, r)
			for _, s := range r.Summarise() {
				fmt.Printf("  %-14s early MAE %.2f -> late MAE %.2f (%+.0f%%)\n",
					s.Model, s.EarlyMAE, s.LateMAE, s.DegradationPercent)
			}
			fmt.Println()
		}
	}
}

func printTable2(cfg experiments.Exp2Config, region string) {
	tuples := dataset.AirQuality(region, cfg.DataSeed, dataset.AirQualityOptions{})
	s, err := timeseries.FromTuples(tuples, "NO2")
	if err != nil {
		log.Fatal(err)
	}
	s.FFill()
	splits, err := timeseries.Split(s, time.Duration(cfg.Horizon)*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Table 2 — data splits for region %s (%d tuples total):\n", region, len(tuples))
	fmt.Printf("  D_train: %6d tuples  [%s .. %s)\n", splits.Train.Len(),
		splits.Train.Times[0].Format("2006-01-02 15:04"), splits.TrainEnd.Format("2006-01-02 15:04"))
	fmt.Printf("  D_valid: %6d tuples  [%s .. %s)\n", splits.Valid.Len(),
		splits.TrainEnd.Format("2006-01-02 15:04"), splits.ValidEnd.Format("2006-01-02 15:04"))
	fmt.Printf("  D_eval:  %6d tuples  [%s .. ]\n", splits.Eval.Len(),
		splits.EvalStart.Format("2006-01-02 15:04"))
	fmt.Printf("  D_noise, D_scale: polluted variants of D_eval (see -scenario)\n")
}
