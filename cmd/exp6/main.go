// Command exp6 runs the cleaning benchmark (an extension of the paper's
// evaluation): one error type is injected at a time and a panel of
// stream-cleaning algorithms is scored by the RMSE of the repaired
// attribute against the retained clean stream.
//
// Usage:
//
//	exp6 [-tuples 6000] [-seed 20160226]
package main

import (
	"flag"
	"log"
	"os"

	"icewafl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exp6: ")
	tuples := flag.Int("tuples", 6000, "length of the hourly evaluation stream")
	seed := flag.Int64("seed", experiments.DefaultDataSeed, "dataset seed")
	flag.Parse()

	r, err := experiments.RunExp6(*seed, *tuples)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintExp6(os.Stdout, r)
}
