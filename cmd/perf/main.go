// Command perf is the CI perf-harness entry point. It has two
// subcommands:
//
//	perf record -out BENCH_pr2.json < bench.txt
//	    parses `go test -bench` output from stdin and writes a
//	    machine-readable JSON report.
//
//	perf gate -baseline BENCH_baseline.json -current BENCH_pr2.json [-max-regress 0.20]
//	    compares the current report against the committed baseline and
//	    exits non-zero when any shared benchmark's ns/op regressed by
//	    more than max-regress.
//
// With -scaling-bench FAMILY, gate additionally checks the shard
// scaling curve of the CURRENT report (family/shards=N entries): every
// point must keep speedup >= -scaling-min over shards=1, and the
// widest point must reach -scaling-floor prorated by the recorded
// GOMAXPROCS (see perf.ScalingGate).
package main

import (
	"flag"
	"fmt"
	"os"

	"icewafl/internal/perf"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  perf record -out FILE        parse 'go test -bench' output on stdin into a JSON report
  perf gate -baseline FILE -current FILE [-max-regress FRAC]
            [-scaling-bench FAMILY -scaling-floor X -scaling-min Y]
                               fail when ns/op regressed more than FRAC (default 0.20);
                               with -scaling-bench, also fail when the FAMILY/shards=N
                               curve of the current report scales worse than the floor
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "gate":
		gate(os.Args[2:])
	default:
		usage()
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "", "path of the JSON report to write (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "perf record: -out is required")
		os.Exit(2)
	}
	rep, err := perf.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("perf: recorded %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func gate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	basePath := fs.String("baseline", "", "committed baseline report (required)")
	curPath := fs.String("current", "", "report of the current run (required)")
	maxRegress := fs.Float64("max-regress", 0.20, "maximum tolerated ns/op regression (0.20 = +20%)")
	scalingBench := fs.String("scaling-bench", "", "benchmark family with /shards=N sub-benchmarks to scaling-gate (empty = skip)")
	scalingFloor := fs.Float64("scaling-floor", 3.0, "required speedup at the widest shard count, assuming as many procs as shards")
	scalingMin := fs.Float64("scaling-min", 0.45, "speedup every shard count must keep over shards=1 (never-catastrophically-slower)")
	fs.Parse(args)
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(os.Stderr, "perf gate: -baseline and -current are required")
		os.Exit(2)
	}
	base, err := perf.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cur, err := perf.ReadFile(*curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	deltas := perf.Compare(base, cur)
	if len(deltas) == 0 {
		fmt.Fprintln(os.Stderr, "perf gate: baseline and current share no benchmarks")
		os.Exit(1)
	}
	fmt.Print(perf.FormatTable(deltas))
	if bad := perf.Gate(base, cur, *maxRegress); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "\nperf gate FAILED: %d benchmark(s) regressed (ns/op beyond +%.0f%%, or allocs/op growth on a zero-alloc-class benchmark):\n%s",
			len(bad), *maxRegress*100, perf.FormatTable(bad))
		os.Exit(1)
	}
	if *scalingBench != "" {
		pts, err := perf.ShardScaling(cur, *scalingBench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\n%s", perf.FormatScaling(*scalingBench, pts))
		if err := perf.ScalingGate(cur, *scalingBench, *scalingFloor, *scalingMin); err != nil {
			fmt.Fprintf(os.Stderr, "\nperf gate FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scaling gate passed (%s at %d procs, floor %.2fx, never-slower %.2fx)\n",
			*scalingBench, max(cur.Procs, 1), *scalingFloor, *scalingMin)
	}
	fmt.Printf("\nperf gate passed (%d benchmarks within +%.0f%%, no zero-alloc regressions)\n", len(deltas), *maxRegress*100)
}
