// Command gendata materialises the synthetic benchmark datasets as CSV
// files plus matching schema documents, so the streams the experiments
// use can be fed to external tools (or back into icewafl/dqcheck).
//
// Usage:
//
//	gendata -dataset wearable -out wearable.csv [-schema-out wearable.schema.json]
//	gendata -dataset airquality -region Wanshouxigong -tuples 8760 -out aq.csv
package main

import (
	"flag"
	"log"
	"os"

	"icewafl/internal/csvio"
	"icewafl/internal/dataset"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gendata: ")
	which := flag.String("dataset", "wearable", "dataset to generate: wearable or airquality")
	region := flag.String("region", dataset.RegionWanshouxigong, "air-quality region")
	tuples := flag.Int("tuples", 0, "air-quality stream length (default: the full 35,064)")
	seed := flag.Int64("seed", 20160226, "generator seed")
	outPath := flag.String("out", "", "output CSV (required; '-' for stdout)")
	schemaOut := flag.String("schema-out", "", "optional schema JSON output")
	flag.Parse()

	if *outPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	var schema *stream.Schema
	var data []stream.Tuple
	switch *which {
	case "wearable":
		schema = dataset.WearableSchema()
		data = dataset.Wearable(*seed)
	case "airquality":
		schema = dataset.AirQualitySchema()
		data = dataset.AirQuality(*region, *seed, dataset.AirQualityOptions{Tuples: *tuples})
	default:
		log.Fatalf("unknown dataset %q (want wearable or airquality)", *which)
	}

	out := os.Stdout
	var err error
	if *outPath != "-" {
		out, err = os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	if err := csvio.WriteAll(out, schema, data); err != nil {
		log.Fatal(err)
	}
	if *schemaOut != "" {
		sf, err := os.Create(*schemaOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := schemafile.Write(sf, schema); err != nil {
			log.Fatal(err)
		}
		if err := sf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("wrote %d tuples of %s", len(data), *which)
}
