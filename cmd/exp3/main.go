// Command exp3 reproduces Experiment 3 of the paper (§3.3): the runtime
// overhead of the three §3.1 pollution scenarios relative to an
// unpolluted load-and-write pipeline, reported as Figure 8 box-plot
// statistics.
//
// Usage:
//
//	exp3 [-runs 50] [-replicas 100] [-seed 20160226]
package main

import (
	"flag"
	"log"
	"os"

	"icewafl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exp3: ")
	runs := flag.Int("runs", 50, "timed executions per scenario")
	replicas := flag.Int("replicas", 100, "stream replications to lengthen the workload")
	seed := flag.Int64("seed", experiments.DefaultDataSeed, "dataset seed")
	disk := flag.Bool("disk", false, "run the pipelines against real files (heavier, paper-like baseline)")
	flag.Parse()

	cfg := experiments.Exp3Config{DataSeed: *seed, Runs: *runs, Replicas: *replicas}
	if *disk {
		dir, err := os.MkdirTemp("", "icewafl-exp3-*")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cfg.DiskDir = dir
	}
	r, err := experiments.RunExp3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintExp3(os.Stdout, r)
}
