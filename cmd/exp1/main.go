// Command exp1 reproduces Experiment 1 of the paper (§3.1): evaluating a
// data-quality tool with Icewafl-polluted wearable-device streams. It
// regenerates the Figure 4 series (random temporal errors), Table 1 (the
// software-update composite scenario), and the §3.1.3 bad-network
// numbers.
//
// Usage:
//
//	exp1 [-scenario random|update|network|all] [-reps 50] [-seed 20160226]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"icewafl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exp1: ")
	scenario := flag.String("scenario", "all", "scenario to run: random, update, network, or all")
	reps := flag.Int("reps", 50, "number of pollution repetitions")
	seed := flag.Int64("seed", experiments.DefaultDataSeed, "dataset seed")
	flag.Parse()

	runRandom := func() {
		r, err := experiments.RunExp1Random(*seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintExp1Random(os.Stdout, r)
	}
	runUpdate := func() {
		r, err := experiments.RunExp1Update(*seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintExp1Update(os.Stdout, r)
	}
	runNetwork := func() {
		r, err := experiments.RunExp1Network(*seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintExp1Network(os.Stdout, r)
	}

	switch *scenario {
	case "random":
		runRandom()
	case "update":
		runUpdate()
	case "network":
		runNetwork()
	case "all":
		runRandom()
		fmt.Println()
		runUpdate()
		fmt.Println()
		runNetwork()
	default:
		log.Fatalf("unknown scenario %q (want random, update, network, or all)", *scenario)
	}
}
