// Kill-and-recover end-to-end test for session mode: a -sessions
// daemon with a -state-dir hosting two tenants' durable sessions is
// SIGKILLed mid-stream and restarted over the same state directory;
// every session of every tenant must come back through Service.Recover
// and serve a stream byte-identical to an uninterrupted run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"icewafl/internal/chaos"
	"icewafl/internal/netstream"
	"icewafl/internal/stream"
)

// sessionsProc is a running icewafld -sessions with both listener
// addresses parsed from the announcement line.
type sessionsProc struct {
	*daemonProc
	httpAddr string
}

// launchSessionsDaemon starts bin in session mode on random ports and
// waits for the "sessions mode listening tcp=... http=..." banner.
func launchSessionsDaemon(t *testing.T, bin string, args ...string) *sessionsProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-sessions", "-listen", "127.0.0.1:0", "-http", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &sessionsProc{daemonProc: &daemonProc{t: t, cmd: cmd, done: make(chan error, 1)}}
	sc := bufio.NewScanner(stderr)
	var seen []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening tcp="); i >= 0 {
			for _, f := range strings.Fields(line[i:]) {
				switch {
				case strings.HasPrefix(f, "tcp="):
					d.tcpAddr = strings.TrimPrefix(f, "tcp=")
				case strings.HasPrefix(f, "http="):
					d.httpAddr = strings.TrimPrefix(f, "http=")
				}
			}
			break
		}
		seen = append(seen, line)
	}
	go func() {
		for sc.Scan() {
		}
		d.done <- cmd.Wait()
	}()
	if d.tcpAddr == "" || d.httpAddr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("sessions daemon never announced its addresses (scan err: %v)\nstderr:\n%s",
			sc.Err(), strings.Join(seen, "\n"))
	}
	t.Cleanup(func() {
		if !d.stopped {
			_ = cmd.Process.Kill()
			<-d.done
		}
	})
	return d
}

// crashSessionSpec renders one POST /v1/sessions body: a minimal
// schema, a seeded two-polluter config, and rows of generated CSV —
// deterministic, so every session of the test produces the same stream
// and one golden covers them all.
func crashSessionSpec(t *testing.T, rows int) json.RawMessage {
	t.Helper()
	var csv strings.Builder
	csv.WriteString("Time,Val,Idx\n")
	base := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&csv, "%s,%d.5,%d\n", base.Add(time.Duration(i)*time.Second).Format(time.RFC3339), i%97, i)
	}
	spec := map[string]any{
		"schema": json.RawMessage(`{
			"timestamp": "Time",
			"fields": [
				{"name": "Time", "kind": "time"},
				{"name": "Val", "kind": "float"},
				{"name": "Idx", "kind": "int"}
			]
		}`),
		"config": json.RawMessage(`{
			"seed": 424241,
			"pipelines": [{
				"name": "crash",
				"polluters": [
					{
						"name": "scale Val",
						"error": {"type": "scale_by_factor", "factor": 10},
						"condition": {"type": "random", "p": 0.4},
						"attrs": ["Val"]
					},
					{
						"name": "drop Val",
						"error": {"type": "missing_value"},
						"condition": {"type": "random", "p": 0.05},
						"attrs": ["Val"]
					}
				]
			}]
		}`),
		"csv": csv.String(),
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// createCrashSession posts one session and requires HTTP 201.
func createCrashSession(t *testing.T, httpAddr, tenant, name string, spec json.RawMessage) {
	t.Helper()
	body, err := json.Marshal(netstream.SessionRequest{Tenant: tenant, Name: name, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+httpAddr+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var out bytes.Buffer
		_, _ = out.ReadFrom(resp.Body)
		t.Fatalf("create %s/%s: HTTP %d: %s", tenant, name, resp.StatusCode, out.String())
	}
}

// TestSessionsCrashRecoverySIGKILL: golden run on a memory-only
// sessions daemon → durable daemon with 2 tenants × 3 sessions
// SIGKILLed mid-stream (the observing subscriber reads through a chaos
// proxy) → restart over the same -state-dir → /healthz reports every
// session resumed, and each one's dirty stream drains byte-identical
// to the golden with zero gap errors.
func TestSessionsCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	const rows, readBeforeKill = 12000, 400
	tenants := []string{"alpha", "beta"}
	names := []string{"s0", "s1", "s2"}
	bin := buildDaemon(t)
	stateDir := t.TempDir()
	spec := crashSessionSpec(t, rows)

	// Uninterrupted reference: one memory-only session with the same
	// spec. Every durable session must match this stream exactly.
	ref := launchSessionsDaemon(t, bin)
	createCrashSession(t, ref.httpAddr, "ref", "golden", spec)
	golden := drainChannel(t, ref.tcpAddr, "ref/golden/"+netstream.ChannelDirty)
	ref.terminate()
	if len(golden) != rows {
		t.Fatalf("golden run produced %d dirty tuples, want %d", len(golden), rows)
	}

	// Durable fleet; frequent fsync keeps every pipeline mid-stream long
	// enough for the kill to land.
	crash := launchSessionsDaemon(t, bin, "-state-dir", stateDir, "-wal-fsync-every", "16")
	for _, tenant := range tenants {
		for _, name := range names {
			createCrashSession(t, crash.httpAddr, tenant, name, spec)
		}
	}
	// The observing subscriber reads through a fault-injecting chaos
	// proxy (latency + jitter) until the fleet is provably mid-stream,
	// then the daemon dies hard.
	proxy, err := chaos.NewProxy("127.0.0.1:0", chaos.ProxyConfig{
		Target:  crash.tcpAddr,
		Seed:    41,
		Latency: 200 * time.Microsecond,
		Jitter:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs, err := netstream.Dial(proxy.Addr(), "alpha/s0/"+netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	readN(t, cs, readBeforeKill)
	crash.kill()
	cs.Stop()
	proxy.Close()

	// The kill must land mid-stream for recovery to mean anything.
	dirtyWAL, err := netstream.OpenWAL(filepath.Join(stateDir, "alpha", "s0", "wal", netstream.ChannelDirty), netstream.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	durableMax := dirtyWAL.MaxSeq()
	dirtyWAL.Close()
	if durableMax >= uint64(rows) {
		t.Fatalf("alpha/s0 already finished before SIGKILL (durable max seq %d); enlarge the input", durableMax)
	}
	t.Logf("killed mid-stream: alpha/s0 durable dirty seq %d of %d", durableMax, rows)

	// Restart over the same state dir: Recover runs before the listeners
	// come up, so the announcement implies the fleet is back.
	again := launchSessionsDaemon(t, bin, "-state-dir", stateDir, "-wal-fsync-every", "16")
	resp, err := http.Get("http://" + again.httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		State    string                             `json:"state"`
		Sessions map[string]netstream.SessionStatus `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.State != "ok" || len(health.Sessions) != len(tenants)*len(names) {
		t.Fatalf("healthz after restart: state=%s sessions=%d, want ok/%d", health.State, len(health.Sessions), len(tenants)*len(names))
	}
	for id, st := range health.Sessions {
		if !st.Durable || !st.Resumed {
			t.Fatalf("session %s: durable=%t resumed=%t, want both after restart", id, st.Durable, st.Resumed)
		}
		if st.State == "failed" || st.State == "quarantined" {
			t.Fatalf("session %s recovered into state %q: %s", id, st.State, st.Error)
		}
	}

	// Every session of every tenant drains byte-identical to the golden.
	for _, tenant := range tenants {
		for _, name := range names {
			ch := tenant + "/" + name + "/" + netstream.ChannelDirty
			sameWire(t, ch+" after restart", drainChannel(t, again.tcpAddr, ch), golden)
		}
	}

	// The partially-read subscriber's resume point is also gap-free: the
	// retained log still covers its next sequence.
	rc, err := netstream.DialFrom(again.tcpAddr, "alpha/s0/"+netstream.ChannelDirty, uint64(readBeforeKill)+1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rest, err := stream.Drain(rc)
	rc.Stop()
	if err != nil {
		t.Fatal(err)
	}
	sameWire(t, "alpha/s0 resumed tail", rest, golden[readBeforeKill:])
	again.terminate()
}
