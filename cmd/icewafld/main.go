// Command icewafld is the networked pollution service: it runs one
// configured pollution pipeline over a CSV input and streams the dirty
// stream, the clean stream, and the pollution log to any number of
// subscribed clients — over raw TCP (length-prefixed JSON frames) and
// HTTP (NDJSON chunks, SSE, plus /metrics and /healthz).
//
// Usage:
//
//	icewafld -schema schema.json -config pollution.json -in clean.csv \
//	         [-listen :7077] [-http :7078] [-policy block|drop-oldest|disconnect-slow] \
//	         [-buffer 256] [-replay 65536] [-reorder 64] [-linger 0] \
//	         [-wal DIR] [-checkpoint PATH] [-supervise] [-columnar]
//
// With -columnar the pipeline runs on the columnar engine and the dirty
// channel carries colbatch frames — column-major micro-batches of up to
// -columnar-batch rows, one frame per sequence number — which clients
// (netstream.ClientSource) transparently explode back into tuples. The
// served stream is byte-identical to tuple-wise serving; only the frame
// granularity changes. Incompatible with -shards and -checkpoint.
//
// With -wal the replay ring is backed by a segmented, checksummed
// write-ahead log: from_seq resume survives daemon restarts, and a
// restarted daemon continues the frame sequence exactly where the
// durable log ends. Adding -checkpoint makes the pipeline itself
// resumable (kill -9 mid-run, restart, and clients see one seamless
// stream). -supervise restarts the session in-process after a panic or
// fatal error, with an exponential-backoff restart budget
// (-restart-budget per -restart-window) after which the session is
// quarantined and reported on /healthz.
//
// The configuration's optional "serve" block provides defaults for the
// service flags; explicit flags win. The daemon runs the pipeline once,
// keeps serving results from its replay ring, and drains gracefully on
// SIGINT/SIGTERM: connected clients get -drain-timeout to finish
// reading before connections close. With -linger > 0 the daemon
// additionally exits that long after the pipeline completes, which
// makes scripted runs self-terminating.
//
// Remote pipelines consume the service with netstream.ClientSource
// (wrapped in stream.RetrySource for reconnect-with-backoff).
//
// With -sessions the daemon instead hosts the multi-tenant session
// service: no pipeline flags are needed, and sessions — each a
// supervised pipeline run with its own <tenant>/<session>/dirty|clean|
// log channels — are created and stopped over the REST control plane
// (POST/GET/DELETE /v1/sessions). The -config file's serve block may
// set the listeners and per-tenant quotas (serve.tenants: max
// sessions, max subscribers, bytes/sec); quota violations answer with
// typed errors on the wire. See cmd/icewafload for a load harness.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"icewafl/internal/config"
	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/netstream"
	"icewafl/internal/obs"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// fatalUsage prints the error and the flag usage, exiting non-zero with
// the conventional usage status.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "icewafld: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("icewafld: ")
	sessions := flag.Bool("sessions", false, "run the multi-tenant session service: pipelines are created over the REST control plane instead of flags")
	schemaPath := flag.String("schema", "", "path to the JSON schema file (required)")
	configPath := flag.String("config", "", "path to the JSON pollution configuration (required)")
	inPath := flag.String("in", "", "input CSV (required)")
	listen := flag.String("listen", "", "raw-TCP listen address (default from serve block, \":7077\"; \"off\" disables)")
	httpAddr := flag.String("http", "", "HTTP listen address for NDJSON/SSE//metrics (default from serve block; \"off\" disables)")
	policyFlag := flag.String("policy", "", "backpressure policy: block, drop-oldest or disconnect-slow (default from serve block)")
	buffer := flag.Int("buffer", 0, "per-subscriber send queue capacity in frames (default from serve block)")
	replay := flag.Int("replay", 0, "frames retained per channel for late subscribers (default from serve block)")
	reorder := flag.Int("reorder", 0, "bounded reordering window in tuples (default from serve block)")
	shards := flag.Int("shards", 0, "partition the keyed hot path across N parallel workers (default from serve block, 1)")
	shardKey := flag.String("shard-key", "", "attribute routing tuples to shards (default from serve block; required with shards > 1)")
	shardOrder := flag.String("shard-order", "", "sharded merge order: strict or relaxed (default from serve block, strict)")
	columnar := flag.Bool("columnar", false, "serve the dirty channel as columnar micro-batches (colbatch frames; default from serve block)")
	columnarBatch := flag.Int("columnar-batch", 0, "rows per colbatch frame (default from serve block, 256)")
	drain := flag.Duration("drain-timeout", 0, "graceful-drain bound on shutdown (default from serve block)")
	linger := flag.Duration("linger", 0, "exit this long after the pipeline completes (0 = serve until SIGTERM)")
	traceSample := flag.Uint64("trace-sample", 0, "deterministically trace 1 in N tuples (0 = off)")
	walDir := flag.String("wal", "", "directory for the durable write-ahead log backing replay (default from serve block; \"\" = in-memory only)")
	walSegment := flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size (default 8 MiB)")
	walRetain := flag.Int64("wal-retain-bytes", 0, "cap on closed WAL segments per channel (default 256 MiB)")
	walRetainAge := flag.Duration("wal-retain-age", 0, "drop WAL segments older than this (0 = keep regardless of age)")
	walFsyncEvery := flag.Int("wal-fsync-every", 0, "batch fsync to one per this many appends (default 64)")
	checkpointPath := flag.String("checkpoint", "", "durable pipeline checkpoint path for resume-after-crash (requires -wal)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "capture a checkpoint every this many emitted tuples (default 256)")
	stateDir := flag.String("state-dir", "", "sessions mode: durable multi-tenant store root; every session gets its own WAL+checkpoint under <state-dir>/<tenant>/<session> and is resurrected on restart")
	archiveDeleted := flag.Bool("archive-deleted", false, "sessions mode: archive deleted sessions' state under <state-dir>/.deleted instead of removing it")
	supervise := flag.Bool("supervise", false, "restart the pipeline session after a panic or fatal error")
	restartBudget := flag.Int("restart-budget", 0, "quarantine the session after this many restarts per window (default 3)")
	restartWindow := flag.Duration("restart-window", 0, "sliding window for the restart budget (default 1m)")
	restartBackoff := flag.Duration("restart-backoff", 0, "base exponential backoff between restarts (default 100ms)")
	flag.Parse()

	if *sessions {
		if *drain < 0 {
			fatalUsage("-drain-timeout must be positive, got %v", *drain)
		}
		if *walSegment < 0 {
			fatalUsage("-wal-segment-bytes must be positive, got %d", *walSegment)
		}
		if *walRetain < 0 {
			fatalUsage("-wal-retain-bytes must be positive, got %d", *walRetain)
		}
		if *walRetainAge < 0 {
			fatalUsage("-wal-retain-age must be positive, got %v", *walRetainAge)
		}
		if *walFsyncEvery < 0 {
			fatalUsage("-wal-fsync-every must be positive, got %d", *walFsyncEvery)
		}
		runSessions(sessionsOpts{
			configPath:     *configPath,
			listen:         *listen,
			httpAddr:       *httpAddr,
			drain:          *drain,
			traceSample:    *traceSample,
			stateDir:       *stateDir,
			archiveDeleted: *archiveDeleted,
			walSegment:     *walSegment,
			walRetain:      *walRetain,
			walRetainAge:   *walRetainAge,
			walFsyncEvery:  *walFsyncEvery,
		})
		return
	}
	if *stateDir != "" || *archiveDeleted {
		fatalUsage("-state-dir/-archive-deleted apply to -sessions mode (use -wal/-checkpoint for the single pipeline)")
	}

	if *schemaPath == "" || *configPath == "" || *inPath == "" {
		fatalUsage("-schema, -config and -in are required")
	}
	if *buffer < 0 {
		fatalUsage("-buffer must be positive, got %d", *buffer)
	}
	if *replay < 0 {
		fatalUsage("-replay must be positive, got %d", *replay)
	}
	if *reorder < 0 {
		fatalUsage("-reorder must not be negative, got %d", *reorder)
	}
	if *shards < 0 {
		fatalUsage("-shards must not be negative, got %d", *shards)
	}
	if *drain < 0 {
		fatalUsage("-drain-timeout must be positive, got %v", *drain)
	}
	if *linger < 0 {
		fatalUsage("-linger must be non-negative, got %v", *linger)
	}
	if *walSegment < 0 {
		fatalUsage("-wal-segment-bytes must be positive, got %d", *walSegment)
	}
	if *walRetain < 0 {
		fatalUsage("-wal-retain-bytes must be positive, got %d", *walRetain)
	}
	if *walRetainAge < 0 {
		fatalUsage("-wal-retain-age must be positive, got %v", *walRetainAge)
	}
	if *walFsyncEvery < 0 {
		fatalUsage("-wal-fsync-every must be positive, got %d", *walFsyncEvery)
	}
	if *columnarBatch < 0 {
		fatalUsage("-columnar-batch must be positive, got %d", *columnarBatch)
	}
	if *checkpointEvery < 0 {
		fatalUsage("-checkpoint-every must be positive, got %d", *checkpointEvery)
	}
	if *restartBudget < 0 {
		fatalUsage("-restart-budget must be positive, got %d", *restartBudget)
	}
	if *restartWindow < 0 {
		fatalUsage("-restart-window must be positive, got %v", *restartWindow)
	}
	if *restartBackoff < 0 {
		fatalUsage("-restart-backoff must be positive, got %v", *restartBackoff)
	}

	schema, err := schemafile.Load(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}
	cf, err := os.Open(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	doc, err := config.Parse(cf)
	cf.Close()
	if err != nil {
		log.Fatal(err)
	}
	proc, err := config.Build(doc)
	if err != nil {
		log.Fatal(err)
	}
	if len(proc.Pipelines) != 1 {
		log.Fatalf("the service runs the streaming engine: configuration must have exactly one pipeline, got %d", len(proc.Pipelines))
	}
	if err := proc.ValidateAttrs(schema); err != nil {
		log.Fatal(err)
	}
	if proc.Fault.Quarantine {
		proc.Fault.DLQ = stream.NewDeadLetterQueue()
	}
	proc.KeepClean = false // the clean channel is fed by the server's tap

	spec, err := doc.Serve.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	if *listen != "" {
		spec.Listen = *listen
	}
	if *httpAddr != "" {
		spec.HTTP = *httpAddr
	}
	if *policyFlag != "" {
		spec.Policy = *policyFlag
	}
	if *buffer > 0 {
		spec.Buffer = *buffer
	}
	if *replay > 0 {
		spec.Replay = *replay
	}
	if *reorder > 0 {
		spec.Reorder = *reorder
	}
	if *shards > 0 {
		spec.Shards = *shards
	}
	if *shardKey != "" {
		spec.ShardKey = *shardKey
	}
	if *shardOrder != "" {
		spec.ShardOrder = *shardOrder
	}
	if *columnar {
		spec.Columnar = true
	}
	if *columnarBatch > 0 {
		spec.ColumnarBatch = *columnarBatch
	}
	if *walDir != "" {
		spec.WALDir = *walDir
	}
	if *walSegment > 0 {
		spec.WALSegmentBytes = *walSegment
	}
	if *walRetain > 0 {
		spec.WALRetainBytes = *walRetain
	}
	if *walRetainAge > 0 {
		spec.WALRetainAge = walRetainAge.String()
	}
	if *walFsyncEvery > 0 {
		spec.WALFsyncEvery = *walFsyncEvery
	}
	if *checkpointPath != "" {
		spec.Checkpoint = *checkpointPath
	}
	if *checkpointEvery > 0 {
		spec.CheckpointEvery = *checkpointEvery
	}
	if *supervise {
		spec.Supervise = true
	}
	if *restartBudget > 0 {
		spec.RestartBudget = *restartBudget
	}
	if *restartWindow > 0 {
		spec.RestartWindow = restartWindow.String()
	}
	if *restartBackoff > 0 {
		spec.RestartBackoff = restartBackoff.String()
	}
	if spec.Checkpoint != "" && spec.WALDir == "" {
		fatalUsage("-checkpoint requires -wal (a checkpoint without a durable log cannot resume)")
	}
	if spec.Shards > 1 && spec.ShardKey == "" {
		fatalUsage("-shards requires -shard-key (or serve.shard_key)")
	}
	if spec.Shards > 1 && spec.Checkpoint != "" {
		fatalUsage("-shards is incompatible with -checkpoint; checkpoints cover the sequential path only")
	}
	if spec.Columnar && spec.Shards > 1 {
		fatalUsage("-columnar is incompatible with -shards; the columnar engine is sequential")
	}
	if spec.Columnar && spec.Checkpoint != "" {
		fatalUsage("-columnar is incompatible with -checkpoint; checkpoints cover the tuple-wise path only")
	}
	policy, err := netstream.ParsePolicy(spec.Policy)
	if err != nil {
		fatalUsage("%v", err)
	}
	order, err := core.ParseOrderPolicy(spec.ShardOrder)
	if err != nil {
		fatalUsage("%v", err)
	}
	drainTimeout := *drain
	if drainTimeout == 0 {
		drainTimeout, _ = time.ParseDuration(spec.DrainTimeout)
	}
	retainAge, _ := time.ParseDuration(spec.WALRetainAge)
	rWindow, _ := time.ParseDuration(spec.RestartWindow)
	rBackoff, _ := time.ParseDuration(spec.RestartBackoff)

	reg := obs.NewRegistry()
	if *traceSample > 0 {
		reg.SetTraceSampling(*traceSample, 0)
	}
	proc.Obs = reg

	newSource := func() (stream.Source, error) {
		f, err := os.Open(*inPath)
		if err != nil {
			return nil, err
		}
		var reader stream.Source
		if spec.Columnar {
			// Batch-native CSV ingest: rows decode straight into column
			// batches, so the columnar runner never materialises per-row
			// tuples on the way in (unless a retry wrapper intervenes).
			reader, err = csvio.NewColumnReader(f, schema)
		} else {
			reader, err = csvio.NewReader(f, schema)
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		return withRetry(reader, doc, reg), nil
	}

	srv, err := netstream.NewServer(netstream.Config{
		Schema:        schema,
		Proc:          proc,
		NewSource:     newSource,
		Reorder:       spec.Reorder,
		Shards:        spec.Shards,
		ShardKey:      spec.ShardKey,
		ShardOrder:    order,
		Columnar:      spec.Columnar,
		ColumnarBatch: spec.ColumnarBatch,
		Buffer:        spec.Buffer,
		Replay:        spec.Replay,
		Policy:        policy,
		DrainTimeout:  drainTimeout,
		Reg:           reg,
		Logf:          log.Printf,
		WALDir:        spec.WALDir,
		WAL: netstream.WALOptions{
			SegmentBytes: spec.WALSegmentBytes,
			RetainBytes:  spec.WALRetainBytes,
			RetainAge:    retainAge,
			FsyncEvery:   spec.WALFsyncEvery,
		},
		CheckpointPath:  spec.Checkpoint,
		CheckpointEvery: spec.CheckpointEvery,
		Supervise:       spec.Supervise,
		RestartBudget:   spec.RestartBudget,
		RestartWindow:   rWindow,
		RestartBackoff:  rBackoff,
	})
	if err != nil {
		log.Fatal(err)
	}

	var tcpLn, httpLn net.Listener
	if spec.Listen != "" && spec.Listen != "off" {
		tcpLn, err = net.Listen("tcp", spec.Listen)
		if err != nil {
			log.Fatal(err)
		}
	}
	if spec.HTTP != "" && spec.HTTP != "off" {
		httpLn, err = net.Listen("tcp", spec.HTTP)
		if err != nil {
			log.Fatal(err)
		}
	}
	if tcpLn == nil && httpLn == nil {
		fatalUsage("both listeners disabled; enable -listen or -http")
	}

	// Announce the bound addresses (":0" picks random ports) in a
	// stable, machine-parseable form for scripts and the CI harness.
	tcpAddr, httpURL := "off", "off"
	if tcpLn != nil {
		tcpAddr = tcpLn.Addr().String()
	}
	if httpLn != nil {
		httpURL = httpLn.Addr().String()
	}
	log.Printf("listening tcp=%s http=%s policy=%s buffer=%d replay=%d", tcpAddr, httpURL, policy, spec.Buffer, spec.Replay)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if *linger > 0 {
		go func() {
			select {
			case <-srv.PipelineDone():
				select {
				case <-time.After(*linger):
					cancel()
				case <-ctx.Done():
				}
			case <-ctx.Done():
			}
		}()
	}
	go func() {
		<-srv.PipelineDone()
		if err := srv.PipelineErr(); err != nil {
			log.Printf("pipeline: %v", err)
		} else {
			log.Printf("pipeline done: dirty=%d clean=%d log=%d frames",
				srv.Hub().Seq(netstream.ChannelDirty), srv.Hub().Seq(netstream.ChannelClean), srv.Hub().Seq(netstream.ChannelLog))
		}
	}()

	if err := srv.Serve(ctx, tcpLn, httpLn); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	if srv.DrainExpired() {
		// Subscribers were force-disconnected mid-stream when the drain
		// deadline fired; exit non-zero so orchestration notices the
		// shutdown was not clean.
		log.Printf("drain deadline expired with subscribers connected")
		os.Exit(1)
	}
}

// withRetry wraps src in a RetrySource when the configuration enables
// source retrying (same contract as the single-process CLI).
func withRetry(src stream.Source, doc *config.Document, reg *obs.Registry) stream.Source {
	policy, ok, err := doc.Fault.RetryPolicy()
	if err != nil {
		log.Fatal(err)
	}
	if !ok {
		return src
	}
	rs := stream.NewRetrySource(src, policy)
	rs.Instrument(reg)
	return rs
}
