package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"icewafl/internal/config"
	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/netstream"
	"icewafl/internal/obs"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// sessionSpec is the opaque per-session payload of POST /v1/sessions:
// a schema document, a pollution configuration (whose optional serve
// block sets the session's engine knobs) and an inline CSV input. The
// input rides in the request because a session is a self-contained,
// reproducible pipeline run — the daemon's filesystem is not part of
// the contract.
type sessionSpec struct {
	Schema json.RawMessage `json:"schema"`
	Config json.RawMessage `json:"config"`
	CSV    string          `json:"csv"`
}

// sessionBuilder compiles one session's spec into a pipeline Config.
// The service overrides Namespace, Reg, TrackDelivery and Logf; this
// hook owns everything pipeline-shaped.
func sessionBuilder(reg *obs.Registry) func(raw json.RawMessage) (netstream.Config, error) {
	return func(raw json.RawMessage) (netstream.Config, error) {
		var spec sessionSpec
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			return netstream.Config{}, fmt.Errorf("session spec: %w", err)
		}
		if len(spec.Schema) == 0 || len(spec.Config) == 0 || spec.CSV == "" {
			return netstream.Config{}, fmt.Errorf("session spec needs schema, config and csv")
		}
		schema, err := schemafile.Parse(bytes.NewReader(spec.Schema))
		if err != nil {
			return netstream.Config{}, fmt.Errorf("session schema: %w", err)
		}
		doc, err := config.Parse(bytes.NewReader(spec.Config))
		if err != nil {
			return netstream.Config{}, fmt.Errorf("session config: %w", err)
		}
		proc, err := config.Build(doc)
		if err != nil {
			return netstream.Config{}, fmt.Errorf("session config: %w", err)
		}
		if len(proc.Pipelines) != 1 {
			return netstream.Config{}, fmt.Errorf("session config must have exactly one pipeline, got %d", len(proc.Pipelines))
		}
		if err := proc.ValidateAttrs(schema); err != nil {
			return netstream.Config{}, err
		}
		if proc.Fault.Quarantine {
			proc.Fault.DLQ = stream.NewDeadLetterQueue()
		}
		proc.KeepClean = false // the clean channel is fed by the server's tap
		ss, err := doc.Serve.Normalize()
		if err != nil {
			return netstream.Config{}, err
		}
		if ss.WALDir != "" || ss.Checkpoint != "" {
			return netstream.Config{}, fmt.Errorf("session specs cannot choose wal_dir/checkpoint paths on the daemon's filesystem; run icewafld -sessions -state-dir to give every session its own durable WAL and checkpoint")
		}
		policy, err := netstream.ParsePolicy(ss.Policy)
		if err != nil {
			return netstream.Config{}, err
		}
		order, err := core.ParseOrderPolicy(ss.ShardOrder)
		if err != nil {
			return netstream.Config{}, err
		}
		drainTimeout, _ := time.ParseDuration(ss.DrainTimeout)
		rWindow, _ := time.ParseDuration(ss.RestartWindow)
		rBackoff, _ := time.ParseDuration(ss.RestartBackoff)
		walRetainAge, _ := time.ParseDuration(ss.WALRetainAge)
		// Surface a broken retry policy at create time, not from inside
		// the running session's source factory.
		retryPolicy, retryOK, err := doc.Fault.RetryPolicy()
		if err != nil {
			return netstream.Config{}, err
		}
		columnar := ss.Columnar
		csv := spec.CSV
		newSource := func() (stream.Source, error) {
			var reader stream.Source
			var err error
			if columnar {
				reader, err = csvio.NewColumnReader(strings.NewReader(csv), schema)
			} else {
				reader, err = csvio.NewReader(strings.NewReader(csv), schema)
			}
			if err != nil {
				return nil, err
			}
			if retryOK {
				rs := stream.NewRetrySource(reader, retryPolicy)
				rs.Instrument(reg)
				return rs, nil
			}
			return reader, nil
		}
		return netstream.Config{
			Schema:        schema,
			Proc:          proc,
			NewSource:     newSource,
			Reorder:       ss.Reorder,
			Shards:        ss.Shards,
			ShardKey:      ss.ShardKey,
			ShardOrder:    order,
			Columnar:      columnar,
			ColumnarBatch: ss.ColumnarBatch,
			Buffer:        ss.Buffer,
			Replay:        ss.Replay,
			Policy:        policy,
			DrainTimeout:  drainTimeout,
			// Per-session WAL tuning (not paths): with a service state dir
			// these override the daemon-wide defaults for this session's
			// durable logs; without one they are ignored.
			WAL: netstream.WALOptions{
				SegmentBytes: ss.WALSegmentBytes,
				RetainBytes:  ss.WALRetainBytes,
				RetainAge:    walRetainAge,
				FsyncEvery:   ss.WALFsyncEvery,
			},
			CheckpointEvery: ss.CheckpointEvery,
			Supervise:       ss.Supervise,
			RestartBudget:   ss.RestartBudget,
			RestartWindow:   rWindow,
			RestartBackoff:  rBackoff,
		}, nil
	}
}

// sessionsOpts carries the flag overrides into session mode.
type sessionsOpts struct {
	configPath     string
	listen         string
	httpAddr       string
	drain          time.Duration
	traceSample    uint64
	stateDir       string
	archiveDeleted bool
	walSegment     int64
	walRetain      int64
	walRetainAge   time.Duration
	walFsyncEvery  int
}

// runSessions is the -sessions entry point: instead of running one
// pipeline, the daemon hosts the multi-tenant session service and
// pipelines arrive over the REST control plane.
func runSessions(opts sessionsOpts) {
	var serve *config.ServeSpec
	if opts.configPath != "" {
		cf, err := os.Open(opts.configPath)
		if err != nil {
			log.Fatal(err)
		}
		doc, err := config.Parse(cf)
		cf.Close()
		if err != nil {
			log.Fatal(err)
		}
		serve = doc.Serve
	}
	spec, err := serve.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	if opts.listen != "" {
		spec.Listen = opts.listen
	}
	if opts.httpAddr != "" {
		spec.HTTP = opts.httpAddr
	}
	if spec.HTTP == "" {
		// The control plane is HTTP; session mode cannot run without it.
		spec.HTTP = ":7078"
	}
	if spec.HTTP == "off" {
		fatalUsage("-sessions requires an HTTP listener (the REST control plane)")
	}
	if opts.stateDir != "" {
		spec.StateDir = opts.stateDir
	}
	if opts.archiveDeleted {
		spec.ArchiveDeleted = true
	}
	if opts.walSegment > 0 {
		spec.WALSegmentBytes = opts.walSegment
	}
	if opts.walRetain > 0 {
		spec.WALRetainBytes = opts.walRetain
	}
	if opts.walRetainAge > 0 {
		spec.WALRetainAge = opts.walRetainAge.String()
	}
	if opts.walFsyncEvery > 0 {
		spec.WALFsyncEvery = opts.walFsyncEvery
	}
	if spec.ArchiveDeleted && spec.StateDir == "" {
		fatalUsage("-archive-deleted requires -state-dir (or serve.state_dir)")
	}
	drainTimeout := opts.drain
	if drainTimeout == 0 {
		drainTimeout, _ = time.ParseDuration(spec.DrainTimeout)
	}
	retainAge, _ := time.ParseDuration(spec.WALRetainAge)
	quotas := make(map[string]netstream.TenantQuota, len(spec.Tenants))
	for _, t := range spec.Tenants {
		quotas[t.Name] = netstream.TenantQuota{
			MaxSessions:    t.MaxSessions,
			MaxSubscribers: t.MaxSubscribers,
			BytesPerSec:    t.BytesPerSec,
			Burst:          t.Burst,
			MaxWALBytes:    t.MaxWALBytes,
		}
	}

	reg := obs.NewRegistry()
	if opts.traceSample > 0 {
		reg.SetTraceSampling(opts.traceSample, 0)
	}
	svc, err := netstream.NewService(netstream.ServiceConfig{
		Build:        sessionBuilder(reg),
		Quotas:       quotas,
		DrainTimeout: drainTimeout,
		Reg:          reg,
		Logf:         log.Printf,
		StateDir:     spec.StateDir,
		WAL: netstream.WALOptions{
			SegmentBytes: spec.WALSegmentBytes,
			RetainBytes:  spec.WALRetainBytes,
			RetainAge:    retainAge,
			FsyncEvery:   spec.WALFsyncEvery,
		},
		ArchiveDeleted: spec.ArchiveDeleted,
	})
	if err != nil {
		log.Fatal(err)
	}
	if spec.StateDir != "" {
		ids, err := svc.Recover()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("state dir %s: recovered %d durable session(s)", spec.StateDir, len(ids))
	}

	var tcpLn, httpLn net.Listener
	if spec.Listen != "" && spec.Listen != "off" {
		tcpLn, err = net.Listen("tcp", spec.Listen)
		if err != nil {
			log.Fatal(err)
		}
	}
	httpLn, err = net.Listen("tcp", spec.HTTP)
	if err != nil {
		log.Fatal(err)
	}
	tcpAddr := "off"
	if tcpLn != nil {
		tcpAddr = tcpLn.Addr().String()
	}
	log.Printf("sessions mode listening tcp=%s http=%s tenants=%d drain=%s", tcpAddr, httpLn.Addr().String(), len(quotas), drainTimeout)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := svc.Serve(ctx, tcpLn, httpLn); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}
