// Kill-and-recover end-to-end tests: the real icewafld binary is
// SIGKILLed mid-stream and restarted over the same WAL directory and
// checkpoint; a client resuming at its last acked sequence must observe
// a stream byte-identical to an uninterrupted run — directly, and
// through a fault-injecting chaos proxy.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"icewafl/internal/chaos"
	"icewafl/internal/netstream"
	"icewafl/internal/stream"
)

// daemonProc is a running icewafld with handles for both shutdown modes.
type daemonProc struct {
	t       *testing.T
	cmd     *exec.Cmd
	done    chan error
	tcpAddr string
	stopped bool
}

// launchDaemon starts bin with args plus a random TCP listener and no
// HTTP endpoint, waiting for the address announcement.
func launchDaemon(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	cmd := exec.Command(bin, append(args, "-listen", "127.0.0.1:0", "-http", "off")...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemonProc{t: t, cmd: cmd, done: make(chan error, 1)}
	sc := bufio.NewScanner(stderr)
	var seen []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening tcp="); i >= 0 {
			fields := strings.Fields(line[i:])
			if len(fields) >= 2 {
				d.tcpAddr = strings.TrimPrefix(fields[1], "tcp=")
			}
			break
		}
		seen = append(seen, line)
	}
	go func() {
		for sc.Scan() {
		}
		d.done <- cmd.Wait()
	}()
	if d.tcpAddr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never announced its address (scan err: %v)\nstderr:\n%s",
			sc.Err(), strings.Join(seen, "\n"))
	}
	t.Cleanup(func() {
		if !d.stopped {
			_ = cmd.Process.Kill()
			<-d.done
		}
	})
	return d
}

// kill SIGKILLs the daemon — the crash under test.
func (d *daemonProc) kill() {
	d.t.Helper()
	_ = d.cmd.Process.Kill()
	select {
	case <-d.done:
	case <-time.After(10 * time.Second):
		d.t.Fatal("daemon did not die after SIGKILL")
	}
	d.stopped = true
}

// terminate SIGTERMs the daemon and requires a clean exit.
func (d *daemonProc) terminate() {
	d.t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-d.done:
		if err != nil {
			d.t.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		d.t.Fatal("daemon did not exit after SIGTERM")
	}
	d.stopped = true
}

// writeBigCSV generates a deterministic wearable CSV large enough that
// a kill shortly after the run starts always lands mid-stream.
func writeBigCSV(t *testing.T, path string, rows int) {
	t.Helper()
	var b strings.Builder
	b.WriteString("Time,BPM,Steps,Distance,CaloriesBurned,ActiveMinutes\n")
	base := time.Date(2016, 2, 26, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		ts := base.Add(time.Duration(i) * 15 * time.Minute)
		bpm := 55 + (i*7)%80 // crosses the BPM>100 pollution branch
		steps := (i * 13) % 400
		dist := float64(steps) * 0.0007
		cal := 19.0 + float64(i%50)*0.37
		active := (i / 4) % 15
		fmt.Fprintf(&b, "%s,%d,%d,%.4f,%.3f,%d\n",
			ts.Format(time.RFC3339), bpm, steps, dist, cal, active)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// crashArgs returns the shared flag set for a run over the generated
// input; withWAL adds the durability flags rooted at dir.
func crashArgs(in string, dir string, withWAL bool) []string {
	ex := filepath.Join("..", "..", "examples", "cli")
	args := []string{
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", in,
		"-replay", "65536",
		"-reorder", "1",
	}
	if withWAL {
		args = append(args,
			"-wal", filepath.Join(dir, "wal"),
			"-checkpoint", filepath.Join(dir, "ck.json"),
			"-checkpoint-every", "64",
			"-wal-fsync-every", "16",
		)
	}
	return args
}

// readN pulls exactly n tuples from src.
func readN(t *testing.T, src stream.Source, n int) []stream.Tuple {
	t.Helper()
	out := make([]stream.Tuple, 0, n)
	for len(out) < n {
		tp, err := src.Next()
		if err != nil {
			t.Fatalf("read tuple %d: %v", len(out)+1, err)
		}
		out = append(out, tp)
	}
	return out
}

// sameWire fails unless got and want are byte-identical on the wire.
func sameWire(t *testing.T, label string, got, want []stream.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d tuples, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, _ := json.Marshal(netstream.EncodeTuple(got[i]))
		w, _ := json.Marshal(netstream.EncodeTuple(want[i]))
		if string(g) != string(w) {
			t.Fatalf("%s: tuple %d differs:\ngot  %s\nwant %s", label, i, g, w)
		}
	}
}

// TestDaemonCrashRecoverySIGKILL: golden run → WAL-backed run killed
// with SIGKILL mid-stream → restart on the same WAL and checkpoint →
// a client resuming at its last acked sequence observes the exact
// golden stream, and a fresh full drain of the clean channel matches
// the uninterrupted run too.
func TestDaemonCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	const rows, readBeforeKill = 12000, 500
	bin := buildDaemon(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "big.csv")
	writeBigCSV(t, in, rows)

	// Uninterrupted reference run (no WAL).
	ref := launchDaemon(t, bin, crashArgs(in, dir, false)...)
	golden := drainChannel(t, ref.tcpAddr, netstream.ChannelDirty)
	goldenClean := drainChannel(t, ref.tcpAddr, netstream.ChannelClean)
	ref.terminate()
	if len(golden) != rows {
		t.Fatalf("golden run produced %d dirty tuples, want %d", len(golden), rows)
	}

	// Durable run, SIGKILLed after the client acked readBeforeKill
	// tuples.
	crash := launchDaemon(t, bin, crashArgs(in, dir, true)...)
	cs, err := netstream.Dial(crash.tcpAddr, netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	first := readN(t, cs, readBeforeKill)
	crash.kill()
	cs.Stop()

	// The crash must land mid-stream for the resume to mean anything:
	// the durable dirty log ends short of the full run.
	dirtyWAL, err := netstream.OpenWAL(filepath.Join(dir, "wal", netstream.ChannelDirty), netstream.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	durableMax := dirtyWAL.MaxSeq()
	dirtyWAL.Close()
	if durableMax >= uint64(rows) {
		t.Fatalf("pipeline already finished before SIGKILL (durable max seq %d); enlarge the input", durableMax)
	}
	t.Logf("killed mid-stream: durable dirty seq %d of %d", durableMax, rows)

	// Restart over the same WAL directory and checkpoint; resume at the
	// last acked sequence.
	again := launchDaemon(t, bin, crashArgs(in, dir, true)...)
	rc, err := netstream.DialFrom(again.tcpAddr, netstream.ChannelDirty, uint64(readBeforeKill)+1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Stop()
	rest, err := stream.Drain(rc)
	if err != nil {
		t.Fatal(err)
	}
	sameWire(t, "resumed dirty stream", append(first, rest...), golden)

	// A fresh subscriber drains the complete clean channel from the
	// durable log — no duplicated and no missing sequences across the
	// crash.
	sameWire(t, "clean stream after restart", drainChannel(t, again.tcpAddr, netstream.ChannelClean), goldenClean)
	again.terminate()
}

// TestDaemonCrashRecoveryChaosProxy is the same kill-and-recover flow
// with every client byte crossing a chaos proxy that adds latency,
// jitter, and mid-frame connection kills; retry-wrapped clients must
// still assemble the exact golden stream.
func TestDaemonCrashRecoveryChaosProxy(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	const rows, readBeforeKill = 12000, 400
	bin := buildDaemon(t)
	dir := t.TempDir()
	in := filepath.Join(dir, "big.csv")
	writeBigCSV(t, in, rows)

	ref := launchDaemon(t, bin, crashArgs(in, dir, false)...)
	golden := drainChannel(t, ref.tcpAddr, netstream.ChannelDirty)
	ref.terminate()

	newProxy := func(target string) *chaos.Proxy {
		p, err := chaos.NewProxy("127.0.0.1:0", chaos.ProxyConfig{
			Target:         target,
			Seed:           97,
			Latency:        200 * time.Microsecond,
			Jitter:         time.Millisecond,
			KillAfterBytes: 32 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// dialVia retries past kills that land inside the hello frame.
	dialVia := func(addr string, fromSeq uint64) *netstream.ClientSource {
		var last error
		for attempt := 0; attempt < 10; attempt++ {
			cs, err := netstream.DialFrom(addr, netstream.ChannelDirty, fromSeq, 5*time.Second)
			if err == nil {
				return cs
			}
			last = err
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("dial through chaos proxy: %v", last)
		return nil
	}
	retryPolicy := stream.RetryPolicy{MaxRetries: 10, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}

	crash := launchDaemon(t, bin, crashArgs(in, dir, true)...)
	proxy := newProxy(crash.tcpAddr)
	cs := dialVia(proxy.Addr(), 0)
	first := readN(t, stream.NewRetrySource(cs, retryPolicy), readBeforeKill)
	crash.kill()
	cs.Stop()
	kills := proxy.Kills()
	proxy.Close()

	again := launchDaemon(t, bin, crashArgs(in, dir, true)...)
	proxy2 := newProxy(again.tcpAddr)
	defer proxy2.Close()
	rc := dialVia(proxy2.Addr(), uint64(readBeforeKill)+1)
	defer rc.Stop()
	rest, err := stream.Drain(stream.NewRetrySource(rc, retryPolicy))
	if err != nil {
		t.Fatal(err)
	}
	sameWire(t, "resumed dirty stream via chaos proxy", append(first, rest...), golden)
	if kills+proxy2.Kills() == 0 {
		t.Error("chaos proxy never killed a connection; fault schedule did not engage")
	}
	again.terminate()
	t.Logf("chaos: %d kills during crash phase, %d during resume", kills, proxy2.Kills())
}
