// End-to-end test of the networked service: builds the real icewafld
// binary, serves the examples/cli wearable scenario, and checks that
// concurrent network clients receive exactly the artifacts the
// single-process CLI writes — the dirty stream byte-identical to
// cmd/icewafl's committed golden, the clean stream identical to the
// input, and the pollution log identical to the log golden.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/netstream"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// buildDaemon compiles icewafld into a scratch dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "icewafld")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches icewafld over the examples/cli scenario on random
// ports and returns the bound TCP and HTTP addresses plus a shutdown
// function that SIGTERMs the process and waits for a clean exit.
func startDaemon(t *testing.T, extra ...string) (tcpAddr, httpAddr string, shutdown func()) {
	t.Helper()
	bin := buildDaemon(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	args := append([]string{
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)

	// The daemon announces its bound addresses on stderr; everything
	// after is drained so the process never blocks on the pipe.
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening tcp="); i >= 0 {
			fields := strings.Fields(line[i:])
			if len(fields) < 3 {
				continue
			}
			tcpAddr = strings.TrimPrefix(fields[1], "tcp=")
			httpAddr = strings.TrimPrefix(fields[2], "http=")
			break
		}
	}
	go func() {
		for sc.Scan() {
		}
		done <- cmd.Wait()
	}()
	if tcpAddr == "" || httpAddr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never announced its addresses (scan err: %v)", sc.Err())
	}

	var once sync.Once
	shutdown = func() {
		once.Do(func() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("daemon exited non-zero after SIGTERM: %v", err)
				}
			case <-time.After(30 * time.Second):
				_ = cmd.Process.Kill()
				t.Error("daemon did not exit after SIGTERM")
			}
		})
	}
	t.Cleanup(shutdown)
	return tcpAddr, httpAddr, shutdown
}

// drainChannel subscribes a ClientSource and drains the whole channel.
func drainChannel(t *testing.T, addr, channel string) []stream.Tuple {
	t.Helper()
	src, err := netstream.Dial(addr, channel)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	tuples, err := stream.Drain(src)
	if err != nil {
		t.Fatal(err)
	}
	return tuples
}

// renderCSV writes tuples exactly as the CLI does.
func renderCSV(t *testing.T, schema *stream.Schema, tuples []stream.Tuple) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := csvio.WriteAll(&buf, schema, tuples); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDaemonServesGoldenPipeline is the tentpole acceptance test:
// icewafld serves the examples/cli pipeline to concurrent clients whose
// received streams are byte-identical to the in-process CLI goldens.
func TestDaemonServesGoldenPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	tcpAddr, httpAddr, shutdown := startDaemon(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	schema, err := schemafile.Load(filepath.Join(ex, "schema.json"))
	if err != nil {
		t.Fatal(err)
	}

	// Two concurrent dirty-channel clients plus one clean-channel client.
	var wg sync.WaitGroup
	dirty := make([][]stream.Tuple, 2)
	for i := range dirty {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dirty[i] = drainChannel(t, tcpAddr, netstream.ChannelDirty)
		}(i)
	}
	var clean []stream.Tuple
	wg.Add(1)
	go func() {
		defer wg.Done()
		clean = drainChannel(t, tcpAddr, netstream.ChannelClean)
	}()
	wg.Wait()

	// Dirty stream: byte-identical to the committed CLI golden, for both
	// clients.
	golden, err := os.ReadFile(filepath.Join("..", "icewafl", "testdata", "dirty.csv.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range dirty {
		if got := renderCSV(t, schema, dirty[i]); !bytes.Equal(got, golden) {
			t.Errorf("client %d: dirty stream differs from cmd/icewafl golden (%d vs %d bytes)", i, len(got), len(golden))
		}
	}

	// Clean stream: the prepared input, byte-identical to the source CSV.
	inBytes, err := os.ReadFile(filepath.Join(ex, "clean.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := renderCSV(t, schema, clean); !bytes.Equal(got, inBytes) {
		t.Errorf("clean stream differs from the input CSV (%d vs %d bytes)", len(got), len(inBytes))
	}

	// Log channel: entries identical to the CLI's pollution log golden.
	entries := readLog(t, tcpAddr)
	var logBuf bytes.Buffer
	l := &core.Log{Entries: entries}
	if err := l.WriteJSON(&logBuf); err != nil {
		t.Fatal(err)
	}
	logGolden, err := os.ReadFile(filepath.Join("..", "icewafl", "testdata", "log.jsonl.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(logBuf.Bytes(), logGolden) {
		t.Errorf("pollution log differs from cmd/icewafl golden (%d vs %d bytes)", logBuf.Len(), len(logGolden))
	}

	// Health endpoint reports the completed run.
	resp, err := http.Get("http://" + httpAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		State    string `json:"state"`
		DirtySeq uint64 `json:"dirty_seq"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.State != "done" {
		t.Errorf("health state = %q, want done", health.State)
	}
	if want := uint64(len(dirty[0]) + 1); health.DirtySeq != want {
		t.Errorf("health dirty_seq = %d, want %d (tuples + eof)", health.DirtySeq, want)
	}

	// Graceful shutdown: SIGTERM exits zero.
	shutdown()
}

// readLog drains the log channel over raw TCP.
func readLog(t *testing.T, addr string) []core.Entry {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req, _ := json.Marshal(netstream.SubscribeRequest{Channel: netstream.ChannelLog})
	if err := netstream.WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var entries []core.Entry
	for {
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		payload, err := netstream.ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		f, err := netstream.DecodeFrame(payload)
		if err != nil {
			t.Fatal(err)
		}
		switch f.Type {
		case netstream.FrameHello:
		case netstream.FrameLog:
			entries = append(entries, *f.Entry)
		case netstream.FrameEOF:
			return entries
		default:
			t.Fatalf("unexpected frame %q on log channel", f.Type)
		}
	}
}

// TestDaemonLinger: with -linger the daemon exits on its own after the
// pipeline completes, which the CI harness relies on.
func TestDaemonLinger(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	cmd := exec.Command(bin,
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-listen", "127.0.0.1:0",
		"-http", "off",
		"-linger", "100ms",
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("icewafld -linger: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "pipeline done") {
		t.Errorf("missing completion log:\n%s", out)
	}
}

// TestDaemonUsageErrors: invalid invocations exit with usage status 2.
func TestDaemonUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	base := []string{
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing required", nil, "required"},
		{"bad policy", append(base, "-policy", "bogus"), "unknown backpressure policy"},
		{"negative buffer", append(base, "-buffer", "-1"), "-buffer must be positive"},
		{"both listeners off", append(base, "-listen", "off", "-http", "off"), "both listeners disabled"},
		{"checkpoint without wal", append(base, "-checkpoint", "ck.json"), "-checkpoint requires -wal"},
		{"negative wal segment", append(base, "-wal-segment-bytes", "-1"), "-wal-segment-bytes must be positive"},
		{"negative restart budget", append(base, "-restart-budget", "-1"), "-restart-budget must be positive"},
		{"negative checkpoint every", append(base, "-checkpoint-every", "-1"), "-checkpoint-every must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected non-zero exit, got %v\n%s", err, out)
			}
			if ee.ExitCode() != 2 {
				t.Errorf("exit code = %d, want 2\n%s", ee.ExitCode(), out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("diagnostic missing %q:\n%s", tc.want, out)
			}
		})
	}
}
