// Command dqcheck validates a stream against a JSON expectation suite —
// the data-quality-tool side of the benchmark loop: pollute with
// icewafl (or serve with icewafld), then measure with dqcheck.
//
// Usage:
//
//	dqcheck -schema schema.json -suite suite.json -in data.csv [-window 4h]
//	dqcheck -schema schema.json -suite suite.json -follow host:port -window 4h
//
// Without -window the whole input is validated at once (batch mode);
// with -window it is validated per tumbling window on the incremental
// engine (continuous monitoring mode; add -slide for sliding windows).
// With -follow the input is a live icewafld dirty channel instead of a
// file: dqcheck subscribes over TCP (reconnecting with resume on
// connection loss) and writes one NDJSON window verdict per closed
// window as the stream progresses. Offline windowed runs emit the same
// NDJSON with -ndjson, so a live run and an offline re-check of the
// same stream are byte-comparable. `-truth live` in follow mode scores
// the flagged tuples against the pollution-log channel served by the
// same daemon.
//
// A long-outage reconnect can land past the server's replay retention:
// the daemon then reports a permanent replay gap. -resume-policy
// chooses the reaction: "fail" (default) exits with the typed gap error
// (last acked and server-minimum sequence numbers), "restart" logs the
// gap and re-subscribes at the server's oldest retained frame, trading
// the lost windows for continued monitoring.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/dq"
	"icewafl/internal/groundtruth"
	"icewafl/internal/netstream"
	"icewafl/internal/obs"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// fatalUsage reports a flag-validation error the conventional way: the
// diagnostic, the usage text, and exit status 2 — before any I/O.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dqcheck: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dqcheck: ")
	schemaPath := flag.String("schema", "", "path to the JSON schema file (required)")
	suitePath := flag.String("suite", "", "path to the JSON expectation suite (required unless -profile)")
	inPath := flag.String("in", "", "input CSV ('-' for stdin; required unless -follow)")
	follow := flag.String("follow", "", "subscribe to a live icewafld dirty channel at this TCP address instead of reading a file")
	window := flag.Duration("window", 0, "validate per tumbling window of this width instead of in one batch")
	slide := flag.Duration("slide", 0, "sliding-window advance (requires -window; width must be a multiple)")
	ndjson := flag.Bool("ndjson", false, "emit one NDJSON verdict per window instead of the table (windowed mode)")
	profileOut := flag.String("profile", "", "profile the input (assumed clean) into an expectation suite at this path instead of validating")
	truthPath := flag.String("truth", "", "pollution log (JSON lines from icewafl -log) to score detections against; requires -meta. With -follow, the literal 'live' scores against the served log channel")
	metaIn := flag.Bool("meta", false, "input carries icewafl's _id/_substream metadata columns (and _arrival when present)")
	metricsOut := flag.String("metrics", "", "write a Prometheus metrics snapshot of the monitor here at exit (windowed mode)")
	resumePolicy := flag.String("resume-policy", "fail", "reaction to a permanent replay gap in -follow mode: fail (exit) or restart (re-subscribe at the server's oldest retained frame)")
	flag.Parse()

	// Flag validation: every rejected range and combination exits 2 with
	// usage before any file or network I/O.
	if *schemaPath == "" || (*inPath == "" && *follow == "") || (*suitePath == "" && *profileOut == "") {
		fatalUsage("-schema, -suite (or -profile) and -in (or -follow) are required")
	}
	if *inPath != "" && *follow != "" {
		fatalUsage("-in and -follow are mutually exclusive")
	}
	if *profileOut != "" {
		if *suitePath != "" {
			fatalUsage("-profile cannot be combined with -suite")
		}
		if *truthPath != "" {
			fatalUsage("-profile cannot be combined with -truth")
		}
		if *follow != "" || *window != 0 {
			fatalUsage("-profile cannot be combined with -follow or -window")
		}
	}
	if *window < 0 {
		fatalUsage("-window must be positive, got %v", *window)
	}
	if *follow != "" && *window <= 0 {
		fatalUsage("-follow requires a positive -window")
	}
	if (*slide != 0 || *ndjson) && *window <= 0 {
		fatalUsage("-slide and -ndjson require a positive -window")
	}
	if *slide < 0 {
		fatalUsage("-slide must be positive, got %v", *slide)
	}
	if *slide > 0 {
		if *slide > *window {
			fatalUsage("-slide %v must not exceed -window %v", *slide, *window)
		}
		if *window%*slide != 0 {
			fatalUsage("-window %v must be a multiple of -slide %v", *window, *slide)
		}
	}
	if *truthPath != "" {
		if *follow != "" && *truthPath != "live" {
			fatalUsage("with -follow, -truth must be the literal 'live' (the served log channel)")
		}
		if *follow == "" && *truthPath == "live" {
			fatalUsage("-truth live requires -follow")
		}
		if *follow == "" && !*metaIn {
			fatalUsage("-truth requires -meta input (raw CSV rows have no joinable tuple IDs)")
		}
	}
	if *metricsOut != "" && *window <= 0 {
		fatalUsage("-metrics requires a positive -window (it snapshots the streaming monitor)")
	}
	switch *resumePolicy {
	case "fail", "restart":
	default:
		fatalUsage("-resume-policy must be fail or restart, got %q", *resumePolicy)
	}
	if *resumePolicy != "fail" && *follow == "" {
		fatalUsage("-resume-policy applies to -follow mode only")
	}

	schema, err := schemafile.Load(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}

	if *profileOut != "" {
		profile(schema, *inPath, *metaIn, *profileOut)
		return
	}

	sf, err := os.Open(*suitePath)
	if err != nil {
		log.Fatal(err)
	}
	suite, err := dq.LoadSuite(sf)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *follow != "" {
		runFollow(suite, *follow, *window, *slide, *truthPath == "live", *metricsOut, *resumePolicy)
		return
	}

	src := openInput(schema, *inPath, *metaIn)
	if *window > 0 {
		runWindowed(suite, src, *window, *slide, *ndjson, *truthPath, *metricsOut)
		return
	}
	runBatch(suite, src, *truthPath)
}

// openInput opens the file (or stdin) input as a stream source.
func openInput(schema *stream.Schema, inPath string, metaIn bool) stream.Source {
	in := os.Stdin
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			log.Fatal(err)
		}
		in = f
	}
	if metaIn {
		// The metadata format already carries icewafl's tuple IDs (and,
		// when written with _arrival, exact delivery times), so
		// detections join against a pollution log and windows match the
		// live stream.
		mr, err := csvio.NewMetaReader(in, schema)
		if err != nil {
			log.Fatal(err)
		}
		return mr
	}
	reader, err := csvio.NewReader(in, schema)
	if err != nil {
		log.Fatal(err)
	}
	// Prepare assigns IDs and arrival times so windows and
	// unexpected-ID reporting work on raw CSV input.
	return stream.NewPrepare(reader, 1)
}

// profile drains the input and writes a profiled expectation suite.
func profile(schema *stream.Schema, inPath string, metaIn bool, outPath string) {
	src := openInput(schema, inPath, metaIn)
	tuples, err := stream.Drain(src)
	if err != nil {
		log.Fatal(err)
	}
	suite := dq.Profile("profiled", tuples, 0.1)
	out, err := os.Create(outPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := dq.SaveSuite(out, suite); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("profiled %d tuples into %d expectations at %s",
		len(tuples), len(suite.Expectations), outPath)
}

// newMonitor builds the streaming monitor for the given window shape.
func newMonitor(suite *dq.Suite, window, slide time.Duration) *dq.Monitor {
	m, err := dq.NewSlidingMonitor(suite, window, slide)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// writeMetrics snapshots reg as Prometheus text exposition at path.
func writeMetrics(reg *obs.Registry, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := reg.Snapshot().WritePrometheus(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// collectFlagged dedups the unexpected tuple IDs of one window into
// flagged (sliding windows report overlapping tuples repeatedly).
func collectFlagged(flagged map[uint64]bool, wr dq.WindowResult) {
	for _, r := range wr.Results {
		for _, id := range r.UnexpectedIDs {
			flagged[id] = true
		}
	}
}

// scoreTruth prints precision/recall/F1 of flagged against the log.
func scoreTruth(flagged map[uint64]bool, plog *core.Log) {
	ids := make([]uint64, 0, len(flagged))
	for id := range flagged {
		ids = append(ids, id)
	}
	score := groundtruth.Evaluate(ids, plog.PollutedTuples())
	log.Printf("vs ground truth (%d polluted tuples): precision %.2f, recall %.2f, F1 %.2f",
		len(plog.PollutedTuples()), score.Precision(), score.Recall(), score.F1())
}

// runWindowed validates a file input window by window on the
// incremental engine.
func runWindowed(suite *dq.Suite, src stream.Source, window, slide time.Duration, ndjson bool, truthPath, metricsOut string) {
	m := newMonitor(suite, window, slide)
	reg := obs.NewRegistry()
	m.SetObs(reg)
	out := bufio.NewWriter(os.Stdout)
	flagged := make(map[uint64]bool)
	var windows []dq.WindowResult
	err := m.Run(src, func(wr dq.WindowResult) error {
		collectFlagged(flagged, wr)
		if ndjson {
			return dq.WriteVerdict(out, wr)
		}
		windows = append(windows, wr)
		return nil
	})
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
	if !ndjson {
		fmt.Printf("%-20s %8s %10s\n", "window start", "tuples", "unexpected")
		for _, w := range windows {
			fmt.Printf("%-20s %8d %10d\n", w.Start.Format("2006-01-02 15:04"), w.Tuples, w.Unexpected())
		}
		if worst := dq.WorstWindow(windows); worst >= 0 {
			fmt.Printf("worst window: %s with %d unexpected rows\n",
				windows[worst].Start.Format("2006-01-02 15:04"), windows[worst].Unexpected())
		}
	}
	if truthPath != "" {
		tf, err := os.Open(truthPath)
		if err != nil {
			log.Fatal(err)
		}
		plog, err := core.ReadLogJSON(tf)
		tf.Close()
		if err != nil {
			log.Fatal(err)
		}
		scoreTruth(flagged, plog)
	}
	writeMetrics(reg, metricsOut)
}

// runFollow subscribes to a live icewafld dirty channel and streams one
// NDJSON verdict per closed window. The subscription survives
// connection loss: the ClientSource resumes at the next sequence number
// and RetrySource adds backoff between attempts. A replay gap (resume
// point past the server's retention) is permanent and ends the run,
// unless resumePolicy is "restart", which re-subscribes at the server's
// oldest retained frame and keeps monitoring.
func runFollow(suite *dq.Suite, addr string, window, slide time.Duration, truthLive bool, metricsOut, resumePolicy string) {
	m := newMonitor(suite, window, slide)
	reg := obs.NewRegistry()
	m.SetObs(reg)

	cs, err := netstream.Dial(addr, netstream.ChannelDirty)
	if err != nil {
		log.Fatal(err)
	}
	defer cs.Stop()
	retry := stream.NewRetrySource(cs, stream.RetryPolicy{
		MaxRetries: 10,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
	})
	retry.Instrument(reg)
	var src stream.Source = retry
	if resumePolicy == "restart" {
		src = &gapRestartSource{Source: retry, cs: cs}
	}

	out := bufio.NewWriter(os.Stdout)
	flagged := make(map[uint64]bool)
	err = m.Run(src, func(wr dq.WindowResult) error {
		if err := dq.WriteVerdict(out, wr); err != nil {
			return err
		}
		collectFlagged(flagged, wr)
		// Verdicts flush as windows close — this is live monitoring, not
		// a report at EOF.
		return out.Flush()
	})
	if ferr := out.Flush(); err == nil {
		err = ferr
	}
	if err != nil {
		log.Fatal(err)
	}
	if n := cs.Reconnects(); n > 0 {
		log.Printf("reconnected %d time(s) during the run", n)
	}
	if truthLive {
		plog, err := readServedLog(addr)
		if err != nil {
			log.Fatal(err)
		}
		scoreTruth(flagged, plog)
	}
	writeMetrics(reg, metricsOut)
}

// gapRestartSource implements -resume-policy restart: when the wrapped
// follow chain fails with a permanent replay gap, it moves the
// subscription to the server's oldest retained frame and keeps going.
// The frames between the last acked and the server minimum are lost —
// that trade is the policy's point, so each restart is logged.
type gapRestartSource struct {
	stream.Source
	cs       *netstream.ClientSource
	restarts int
}

func (g *gapRestartSource) Next() (stream.Tuple, error) {
	for {
		t, err := g.Source.Next()
		var gap *netstream.GapError
		if err == nil || !errors.As(err, &gap) {
			return t, err
		}
		g.restarts++
		log.Printf("replay gap on %s (last acked seq %d, server retains from %d): restarting at server minimum (restart %d)",
			gap.Channel, gap.LastAcked, gap.ServerMin, g.restarts)
		g.cs.RestartAt(gap.ServerMin)
	}
}

// readServedLog drains the daemon's pollution-log channel over raw TCP
// frames (the log channel carries entries, not tuples, so ClientSource
// does not apply).
func readServedLog(addr string) (*core.Log, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("dial log channel: %w", err)
	}
	defer conn.Close()
	req, err := json.Marshal(netstream.SubscribeRequest{Channel: netstream.ChannelLog})
	if err != nil {
		return nil, err
	}
	if err := netstream.WriteFrame(conn, req); err != nil {
		return nil, fmt.Errorf("subscribe log channel: %w", err)
	}
	br := bufio.NewReader(conn)
	plog := &core.Log{}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(30 * time.Second))
		payload, err := netstream.ReadFrame(br)
		if err != nil {
			return nil, fmt.Errorf("read log frame: %w", err)
		}
		f, err := netstream.DecodeFrame(payload)
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case netstream.FrameHello:
		case netstream.FrameLog:
			plog.Entries = append(plog.Entries, *f.Entry)
		case netstream.FrameEOF:
			return plog, nil
		case netstream.FrameError:
			return nil, fmt.Errorf("log channel error: %s", f.Error)
		default:
			return nil, fmt.Errorf("unexpected frame %q on log channel", f.Type)
		}
	}
}

// runBatch validates the whole input at once (the original CLI mode).
func runBatch(suite *dq.Suite, src stream.Source, truthPath string) {
	tuples, err := stream.Drain(src)
	if err != nil {
		log.Fatal(err)
	}
	results := suite.Validate(tuples)
	failures := 0
	var flagged []uint64
	fmt.Printf("%-55s %9s %10s %8s\n", "expectation", "evaluated", "unexpected", "success")
	for _, r := range results {
		fmt.Printf("%-55s %9d %10d %8v\n", r.Expectation, r.Evaluated, r.Unexpected, r.Success)
		flagged = append(flagged, r.UnexpectedIDs...)
		if !r.Success {
			failures++
		}
	}
	if truthPath != "" {
		tf, err := os.Open(truthPath)
		if err != nil {
			log.Fatal(err)
		}
		plog, err := core.ReadLogJSON(tf)
		tf.Close()
		if err != nil {
			log.Fatal(err)
		}
		score := groundtruth.Evaluate(flagged, plog.PollutedTuples())
		fmt.Printf("vs ground truth (%d polluted tuples): precision %.2f, recall %.2f, F1 %.2f\n",
			len(plog.PollutedTuples()), score.Precision(), score.Recall(), score.F1())
	}
	if failures > 0 {
		fmt.Printf("%d of %d expectations failed\n", failures, len(results))
		os.Exit(1)
	}
	fmt.Println("all expectations passed")
}
