// Command dqcheck validates a CSV stream against a JSON expectation
// suite — the data-quality-tool side of the benchmark loop: pollute with
// icewafl, then measure with dqcheck.
//
// Usage:
//
//	dqcheck -schema schema.json -suite suite.json -in data.csv [-window 4h]
//
// Without -window the whole stream is validated at once (batch mode);
// with -window the stream is validated per tumbling event-time window
// (continuous monitoring mode) and one line per window is printed.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"icewafl/internal/core"
	"icewafl/internal/csvio"
	"icewafl/internal/dq"
	"icewafl/internal/groundtruth"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dqcheck: ")
	schemaPath := flag.String("schema", "", "path to the JSON schema file (required)")
	suitePath := flag.String("suite", "", "path to the JSON expectation suite (required unless -profile)")
	inPath := flag.String("in", "", "input CSV (required; '-' for stdin)")
	window := flag.Duration("window", 0, "validate per tumbling window of this width instead of in one batch")
	profileOut := flag.String("profile", "", "profile the input (assumed clean) into an expectation suite at this path instead of validating")
	truthPath := flag.String("truth", "", "optional pollution log (JSON lines from icewafl -log) to score detections against; requires -meta input")
	metaIn := flag.Bool("meta", false, "input carries icewafl's _id/_substream metadata columns")
	flag.Parse()

	if *schemaPath == "" || *inPath == "" || (*suitePath == "" && *profileOut == "") {
		flag.Usage()
		os.Exit(2)
	}
	schema, err := schemafile.Load(*schemaPath)
	if err != nil {
		log.Fatal(err)
	}

	in := os.Stdin
	if *inPath != "-" {
		in, err = os.Open(*inPath)
		if err != nil {
			log.Fatal(err)
		}
		defer in.Close()
	}
	var src stream.Source
	if *metaIn {
		// The metadata format already carries icewafl's tuple IDs, so
		// detections can be joined against a pollution log.
		mr, err := csvio.NewMetaReader(in, schema)
		if err != nil {
			log.Fatal(err)
		}
		src = mr
	} else {
		reader, err := csvio.NewReader(in, schema)
		if err != nil {
			log.Fatal(err)
		}
		// Prepare assigns IDs and arrival times so windows and
		// unexpected-ID reporting work on raw CSV input.
		src = stream.NewPrepare(reader, 1)
	}

	if *profileOut != "" {
		tuples, err := stream.Drain(src)
		if err != nil {
			log.Fatal(err)
		}
		suite := dq.Profile("profiled", tuples, 0.1)
		out, err := os.Create(*profileOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := dq.SaveSuite(out, suite); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("profiled %d tuples into %d expectations at %s",
			len(tuples), len(suite.Expectations), *profileOut)
		return
	}

	sf, err := os.Open(*suitePath)
	if err != nil {
		log.Fatal(err)
	}
	suite, err := dq.LoadSuite(sf)
	sf.Close()
	if err != nil {
		log.Fatal(err)
	}

	if *window > 0 {
		validator := dq.NewStreamingValidator(suite, *window)
		windows, err := validator.Run(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %8s %10s\n", "window start", "tuples", "unexpected")
		for _, w := range windows {
			fmt.Printf("%-20s %8d %10d\n", w.Start.Format("2006-01-02 15:04"), w.Tuples, w.Unexpected())
		}
		if worst := dq.WorstWindow(windows); worst >= 0 {
			fmt.Printf("worst window: %s with %d unexpected rows\n",
				windows[worst].Start.Format("2006-01-02 15:04"), windows[worst].Unexpected())
		}
		return
	}

	tuples, err := stream.Drain(src)
	if err != nil {
		log.Fatal(err)
	}
	results := suite.Validate(tuples)
	failures := 0
	var flagged []uint64
	fmt.Printf("%-55s %9s %10s %8s\n", "expectation", "evaluated", "unexpected", "success")
	for _, r := range results {
		fmt.Printf("%-55s %9d %10d %8v\n", r.Expectation, r.Evaluated, r.Unexpected, r.Success)
		flagged = append(flagged, r.UnexpectedIDs...)
		if !r.Success {
			failures++
		}
	}
	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			log.Fatal(err)
		}
		plog, err := core.ReadLogJSON(tf)
		tf.Close()
		if err != nil {
			log.Fatal(err)
		}
		score := groundtruth.Evaluate(flagged, plog.PollutedTuples())
		fmt.Printf("vs ground truth (%d polluted tuples): precision %.2f, recall %.2f, F1 %.2f\n",
			len(plog.PollutedTuples()), score.Precision(), score.Recall(), score.F1())
	}
	if failures > 0 {
		fmt.Printf("%d of %d expectations failed\n", failures, len(results))
		os.Exit(1)
	}
	fmt.Println("all expectations passed")
}
