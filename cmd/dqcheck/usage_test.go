// Flag-validation tests: bad invocations must exit with the
// conventional usage status (2), print a one-line diagnostic naming the
// offending flag, and show the flag usage — before any file or network
// I/O (the bogus -follow address below would hang or error differently
// if it were dialled).
package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDQCheck compiles dqcheck into a scratch dir.
func buildDQCheck(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "dqcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestDQCheckFlagValidation exercises every rejected flag range and
// combination against the real binary.
func TestDQCheckFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDQCheck(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	base := []string{
		"-schema", filepath.Join(ex, "schema.json"),
		"-suite", filepath.Join(ex, "suite.json"),
		"-in", filepath.Join(ex, "clean.csv"),
	}
	noIn := []string{
		"-schema", filepath.Join(ex, "schema.json"),
		"-suite", filepath.Join(ex, "suite.json"),
	}

	cases := []struct {
		name string
		args []string
		want string // substring of the diagnostic
	}{
		{"missing required", nil, "required"},
		{"in and follow", append(base, "-follow", "127.0.0.1:1"), "mutually exclusive"},
		{"profile with suite", append(base, "-profile", "p.json"), "-profile cannot be combined with -suite"},
		{"profile with truth", []string{
			"-schema", filepath.Join(ex, "schema.json"),
			"-in", filepath.Join(ex, "clean.csv"),
			"-profile", "p.json", "-truth", "log.jsonl",
		}, "-profile cannot be combined with -truth"},
		{"profile with window", []string{
			"-schema", filepath.Join(ex, "schema.json"),
			"-in", filepath.Join(ex, "clean.csv"),
			"-profile", "p.json", "-window", "1h",
		}, "-profile cannot be combined with -follow or -window"},
		{"negative window", append(base, "-window", "-1h"), "-window must be positive"},
		{"follow without window", append(noIn, "-follow", "127.0.0.1:1"), "-follow requires a positive -window"},
		{"follow with zero window", append(noIn, "-follow", "127.0.0.1:1", "-window", "0s"), "-follow requires a positive -window"},
		{"slide without window", append(base, "-slide", "1h"), "-slide and -ndjson require a positive -window"},
		{"ndjson without window", append(base, "-ndjson"), "-slide and -ndjson require a positive -window"},
		{"negative slide", append(base, "-window", "1h", "-slide", "-5m"), "-slide must be positive"},
		{"slide exceeds window", append(base, "-window", "1h", "-slide", "2h"), "must not exceed -window"},
		{"window not multiple of slide", append(base, "-window", "1h", "-slide", "25m"), "must be a multiple of -slide"},
		{"truth without meta", append(base, "-truth", "log.jsonl"), "-truth requires -meta"},
		{"truth live without follow", append(base, "-meta", "-truth", "live"), "-truth live requires -follow"},
		{"follow with file truth", append(noIn, "-follow", "127.0.0.1:1", "-window", "1h", "-truth", "log.jsonl"), "-truth must be the literal 'live'"},
		{"metrics without window", append(base, "-metrics", "m.prom"), "-metrics requires a positive -window"},
		{"bogus resume policy", append(noIn, "-follow", "127.0.0.1:1", "-window", "1h", "-resume-policy", "retry"), "-resume-policy must be fail or restart"},
		{"resume policy without follow", append(base, "-resume-policy", "restart"), "-resume-policy applies to -follow mode only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bin, tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("expected non-zero exit, got err=%v\n%s", err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Errorf("exit code = %d, want 2 (usage)\n%s", code, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("diagnostic missing %q:\n%s", tc.want, out)
			}
			if !strings.Contains(string(out), "Usage") && !strings.Contains(string(out), "-schema string") {
				t.Errorf("usage text not printed:\n%s", out)
			}
		})
	}
}
