// End-to-end acceptance for live monitoring: dqcheck -follow against a
// real icewafld daemon must emit byte-identical NDJSON verdicts to an
// offline dqcheck -window run over the same dirty stream captured to a
// metadata CSV with the `_arrival` column. Arrival preservation is the
// crux — without it a delayed tuple's window assignment (and therefore
// the verdict stream) would silently differ between live and offline.
package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"icewafl/internal/csvio"
	"icewafl/internal/netstream"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// buildDaemonBin compiles icewafld into a scratch dir.
func buildDaemonBin(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "icewafld")
	cmd := exec.Command("go", "build", "-o", bin, "../icewafld")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build icewafld: %v\n%s", err, out)
	}
	return bin
}

// startDaemon serves the examples/cli scenario on a random port and
// returns the bound TCP address. Shutdown is registered as a cleanup.
func startDaemon(t *testing.T) string {
	t.Helper()
	bin := buildDaemonBin(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	cmd := exec.Command(bin,
		"-schema", filepath.Join(ex, "schema.json"),
		"-config", filepath.Join(ex, "pollution.json"),
		"-in", filepath.Join(ex, "clean.csv"),
		"-listen", "127.0.0.1:0",
		"-http", "127.0.0.1:0",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var tcpAddr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening tcp="); i >= 0 {
			fields := strings.Fields(line[i:])
			if len(fields) >= 2 {
				tcpAddr = strings.TrimPrefix(fields[1], "tcp=")
			}
			break
		}
	}
	go func() {
		for sc.Scan() {
		}
		done <- cmd.Wait()
	}()
	if tcpAddr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never announced its address (scan err: %v)", sc.Err())
	}
	var once sync.Once
	t.Cleanup(func() {
		once.Do(func() {
			_ = cmd.Process.Signal(syscall.SIGTERM)
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				_ = cmd.Process.Kill()
				t.Error("daemon did not exit after SIGTERM")
			}
		})
	})
	return tcpAddr
}

// TestFollowMatchesOfflineVerdicts is the PR's acceptance test: live
// follow output ≡ offline windowed output, byte for byte.
func TestFollowMatchesOfflineVerdicts(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binaries")
	}
	dqcheck := buildDQCheck(t)
	addr := startDaemon(t)
	ex := filepath.Join("..", "..", "examples", "cli")
	schemaPath := filepath.Join(ex, "schema.json")
	suitePath := filepath.Join(ex, "suite.json")
	const window = "24h"

	// Capture the dirty channel to a metadata CSV carrying `_arrival`,
	// exactly as an archival consumer of the live stream would.
	schema, err := schemafile.Load(schemaPath)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := netstream.Dial(addr, netstream.ChannelDirty)
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := stream.Drain(cs)
	cs.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) == 0 {
		t.Fatal("dirty channel is empty")
	}
	metaPath := filepath.Join(t.TempDir(), "dirty_meta.csv")
	mf, err := os.Create(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	mw := csvio.NewMetaWriter(mf, schema)
	mw.IncludeArrival()
	for _, tp := range tuples {
		if err := mw.Write(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mf.Close(); err != nil {
		t.Fatal(err)
	}

	// Live: follow the daemon until it serves EOF.
	live := exec.Command(dqcheck,
		"-schema", schemaPath, "-suite", suitePath,
		"-follow", addr, "-window", window,
	)
	live.Stderr = os.Stderr
	liveOut, err := live.Output()
	if err != nil {
		t.Fatalf("dqcheck -follow: %v", err)
	}

	// Offline: same windows over the captured stream.
	offline := exec.Command(dqcheck,
		"-schema", schemaPath, "-suite", suitePath,
		"-in", metaPath, "-meta", "-window", window, "-ndjson",
	)
	offline.Stderr = os.Stderr
	offlineOut, err := offline.Output()
	if err != nil {
		t.Fatalf("dqcheck -window over capture: %v", err)
	}

	if !bytes.Equal(liveOut, offlineOut) {
		t.Fatalf("live and offline verdicts differ:\nlive:\n%s\noffline:\n%s", liveOut, offlineOut)
	}

	// Sanity: the verdict stream is non-trivial — multiple windows, and
	// the polluted example flags at least one window.
	lines := bytes.Split(bytes.TrimSpace(liveOut), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("only %d verdict line(s):\n%s", len(lines), liveOut)
	}
	if !bytes.Contains(liveOut, []byte(`"unexpected":`)) {
		t.Fatalf("verdicts carry no unexpected counts:\n%s", liveOut)
	}
	flagged := false
	for _, ln := range lines {
		if bytes.Contains(ln, []byte(`"success":false`)) {
			flagged = true
			break
		}
	}
	if !flagged {
		t.Fatal("no window flagged any pollution; the example pipeline should produce violations")
	}
}
