// Command exp4 runs the synthesis study sketched in the paper's future
// work (§5, item 4): whether time-series synthesis approaches preserve
// or remove the temporal error patterns Icewafl injects. A block
// bootstrap replays error patterns; a seasonal AR model generates clean
// data.
//
// Usage:
//
//	exp4 [-len 2120] [-seed 20160226]
package main

import (
	"flag"
	"log"
	"os"

	"icewafl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exp4: ")
	length := flag.Int("len", 0, "synthetic stream length (default 2x the source)")
	seed := flag.Int64("seed", experiments.DefaultDataSeed, "dataset seed")
	flag.Parse()

	r, err := experiments.RunExp4(*seed, *length)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintExp4(os.Stdout, r)
}
