// Integration test of the load harness against the real session-mode
// daemon: builds icewafld, starts it with per-tenant quotas, and drives
// a scaled-down fleet (8 sessions × 32 subscribers) through the REST
// control plane. The run must finish with zero gap errors, quota
// rejections exactly where quotas are configured, and every subscriber
// of every session byte-identical to a direct in-process run of the
// same pipeline.
package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles icewafld into a scratch dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not in PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "icewafld")
	cmd := exec.Command("go", "build", "-o", bin, "icewafl/cmd/icewafld")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startSessionDaemon launches icewafld -sessions with the given config
// file on random ports, parses the announced addresses from stderr, and
// returns the HTTP base URL plus a SIGTERM-and-wait shutdown function.
func startSessionDaemon(t *testing.T, configPath string) (baseURL string, shutdown func()) {
	t.Helper()
	bin := buildDaemon(t)
	args := []string{"-sessions", "-listen", "127.0.0.1:0", "-http", "127.0.0.1:0"}
	if configPath != "" {
		args = append(args, "-config", configPath)
	}
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)

	var httpAddr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening tcp="); i >= 0 {
			fields := strings.Fields(line[i:])
			for _, f := range fields {
				if strings.HasPrefix(f, "http=") {
					httpAddr = strings.TrimPrefix(f, "http=")
				}
			}
			break
		}
	}
	// Drain the rest of stderr so the daemon never blocks on the pipe.
	go func() {
		for sc.Scan() {
		}
		done <- cmd.Wait()
	}()
	if httpAddr == "" {
		_ = cmd.Process.Kill()
		t.Fatal("daemon never announced its HTTP address")
	}
	return "http://" + httpAddr, func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			t.Error("daemon did not exit on SIGTERM")
		}
	}
}

// tenantConfig writes a session-mode config file capping both tenants
// at 4 sessions each.
func tenantConfig(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "serve.json")
	doc := `{"serve": {"tenants": [
		{"name": "alpha", "max_sessions": 4},
		{"name": "beta", "max_sessions": 4}
	]}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadHarnessScaledDown(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness integration is not a -short test")
	}
	baseURL, shutdown := startSessionDaemon(t, tenantConfig(t))
	defer shutdown()

	// 10 requested sessions round-robin over 2 tenants capped at 4 each:
	// 8 run, one per tenant is quota-rejected — rejections exactly where
	// configured, none anywhere else.
	const rows = 120
	res, err := Run(Options{
		BaseURL:  baseURL,
		Tenants:  []string{"alpha", "beta"},
		Sessions: 10,
		Subs:     32,
		Rows:     rows,
		Timeout:  3 * time.Minute,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Errors {
		t.Errorf("unexpected error: %s", e)
	}
	if len(res.Created) != 8 || res.CreateRejected != 2 {
		t.Fatalf("created %d sessions with %d rejections, want 8 and 2", len(res.Created), res.CreateRejected)
	}
	if res.GapErrors != 0 {
		t.Fatalf("%d gap errors, want 0", res.GapErrors)
	}
	if res.SubsStarted != 8*32 || res.SubQuotaRejected != 0 {
		t.Fatalf("subscribers: started %d (want %d), quota-rejected %d (want 0)",
			res.SubsStarted, 8*32, res.SubQuotaRejected)
	}

	// Byte-identity: every one of the 256 subscriber streams carries the
	// digest of the direct in-process run.
	want, wantFrames, err := directDigest(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Digests) != 1 || res.Digests[want] != 8*32 {
		t.Fatalf("digests = %v, want {%.12s…: %d}", res.Digests, want, 8*32)
	}
	if res.Frames != uint64(8*32*wantFrames) {
		t.Fatalf("delivered %d frames, want %d", res.Frames, 8*32*wantFrames)
	}

	// The daemon's obs histogram produced the latency quantiles.
	if res.DeliverCount == 0 || res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("delivery latency not observed: count=%d p50=%v p99=%v", res.DeliverCount, res.P50, res.P99)
	}

	// Per-tenant families: both tenants served frames, and each logged
	// exactly its one configured-session rejection.
	for _, tenant := range []string{"alpha", "beta"} {
		st, ok := res.Tenants[tenant]
		if !ok || st.Frames == 0 || st.Bytes == 0 {
			t.Fatalf("tenant %s missing from /metrics families: %+v", tenant, res.Tenants)
		}
		if st.QuotaRejections != 1 {
			t.Fatalf("tenant %s quota rejections = %d, want exactly 1", tenant, st.QuotaRejections)
		}
	}
}
