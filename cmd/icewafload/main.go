// Command icewafload is the load harness for icewafld's session mode:
// it drives many concurrent pipeline sessions across multiple tenants
// through the REST control plane, fans thousands of subscribers out
// over the namespaced channels, and reports end-to-end delivery
// latency (p50/p99 from the daemon's obs histograms) plus per-tenant
// throughput and quota-rejection counts from the /metrics families.
//
// Usage:
//
//	icewafld -sessions -http :7078 &
//	icewafload -url http://127.0.0.1:7078 -n 100 -subs 20 [-tenants alpha,beta] [-rows 200]
//
// Every session runs the same deterministic spec, so the harness also
// verifies correctness under load: zero replay-gap errors, quota
// rejections only where quotas are configured, and every subscriber of
// every session byte-identical to a direct in-process run of the same
// pipeline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("icewafload: ")
	baseURL := flag.String("url", "", "base HTTP URL of the session-mode daemon (required), e.g. http://127.0.0.1:7078")
	sessions := flag.Int("n", 8, "total sessions to create")
	subs := flag.Int("subs", 16, "concurrent subscribers per session")
	tenants := flag.String("tenants", "alpha,beta", "comma-separated tenant names, sessions spread round-robin")
	rows := flag.Int("rows", 200, "CSV input rows per session")
	timeout := flag.Duration("timeout", 2*time.Minute, "bound on the whole run")
	keep := flag.Bool("keep", false, "keep the sessions after the run (skip the DELETE phase; pairs with -attach after a daemon restart)")
	attach := flag.Bool("attach", false, "attach to the daemon's existing sessions instead of creating new ones (restart verification)")
	flag.Parse()
	if *baseURL == "" {
		fmt.Fprintln(os.Stderr, "icewafload: -url is required")
		flag.Usage()
		os.Exit(2)
	}

	var names []string
	for _, t := range strings.Split(*tenants, ",") {
		if t = strings.TrimSpace(t); t != "" {
			names = append(names, t)
		}
	}
	res, err := Run(Options{
		BaseURL:      strings.TrimRight(*baseURL, "/"),
		Tenants:      names,
		Sessions:     *sessions,
		Subs:         *subs,
		Rows:         *rows,
		Timeout:      *timeout,
		AttachOnly:   *attach,
		KeepSessions: *keep,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	want, wantFrames, err := directDigest(*rows)
	if err != nil {
		log.Fatalf("direct run: %v", err)
	}
	identical := len(res.Digests) == 1 && res.Digests[want] > 0

	log.Printf("sessions: %d created, %d quota-rejected", len(res.Created), res.CreateRejected)
	log.Printf("subscribers: %d started, %d quota-rejected, %d gap errors", res.SubsStarted, res.SubQuotaRejected, res.GapErrors)
	log.Printf("delivered: %d frames, %d bytes in %v", res.Frames, res.Bytes, res.Elapsed.Round(time.Millisecond))
	if res.DeliverCount == 0 {
		// An empty histogram has no quantiles; reporting 0ns would be
		// indistinguishable from an implausibly fast daemon.
		log.Printf("delivery latency (obs histogram, 0 observations): p50=n/a p99=n/a")
	} else {
		log.Printf("delivery latency (obs histogram, %d observations): p50=%v p99=%v", res.DeliverCount, res.P50, res.P99)
	}
	tenantsSorted := make([]string, 0, len(res.Tenants))
	for t := range res.Tenants {
		tenantsSorted = append(tenantsSorted, t)
	}
	sort.Strings(tenantsSorted)
	secs := res.Elapsed.Seconds()
	for _, t := range tenantsSorted {
		st := res.Tenants[t]
		rate := float64(st.Bytes)
		if secs > 0 {
			rate /= secs
		}
		log.Printf("tenant %s: frames=%d bytes=%d (%.1f KiB/s) quota_rejections=%d", t, st.Frames, st.Bytes, rate/1024, st.QuotaRejections)
	}
	if identical {
		log.Printf("byte-identity: all %d clean subscribers match the direct run (%d frames, digest %.12s…)", res.Digests[want], wantFrames, want)
	} else {
		log.Printf("byte-identity FAILED: want digest %.12s… (%d frames), got %d distinct digests", want, wantFrames, len(res.Digests))
	}

	fail := !identical || res.GapErrors > 0 || len(res.Errors) > 0
	for _, e := range res.Errors {
		log.Printf("error: %s", e)
	}
	if fail {
		os.Exit(1)
	}
}
