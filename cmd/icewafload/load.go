package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"icewafl/internal/netstream"
	"icewafl/internal/obs"
	"icewafl/internal/stream"
)

// Options configures one load run against a session-mode icewafld.
type Options struct {
	// BaseURL is the daemon's HTTP address, e.g. http://127.0.0.1:7078.
	BaseURL string
	// Tenants are the tenant names sessions are spread across
	// round-robin.
	Tenants []string
	// Sessions is the total number of sessions to create.
	Sessions int
	// Subs is the number of concurrent subscribers per session.
	Subs int
	// Rows is the number of CSV input rows per session.
	Rows int
	// Timeout bounds the whole run.
	Timeout time.Duration
	// AttachOnly skips session creation and subscribes to the sessions
	// the daemon already runs (restart verification: a recovered daemon
	// must serve the same streams it served before the kill).
	AttachOnly bool
	// KeepSessions skips the final DELETE phase so the sessions — and,
	// on a durable daemon, their state directories — survive the run.
	KeepSessions bool
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if len(o.Tenants) == 0 {
		o.Tenants = []string{"alpha", "beta"}
	}
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.Subs <= 0 {
		o.Subs = 8
	}
	if o.Rows <= 0 {
		o.Rows = 200
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
}

// TenantStat is one tenant's served totals, read back from the
// daemon's /metrics families.
type TenantStat struct {
	Frames          uint64
	Bytes           uint64
	QuotaRejections uint64
}

// Result is the aggregate outcome of a load run.
type Result struct {
	// Created lists the session IDs that were accepted.
	Created []string
	// CreateRejected counts sessions the control plane refused with a
	// typed quota error (429).
	CreateRejected int
	// SubsStarted / SubQuotaRejected count subscriber attempts and
	// subscriber-level typed quota rejections.
	SubsStarted      int
	SubQuotaRejected int
	// Frames / Bytes total tuple frames and wire bytes read by all
	// subscribers.
	Frames uint64
	Bytes  uint64
	// GapErrors counts replay-gap rejections (must be zero: every
	// subscriber starts from seq 0 against a fully retained ring).
	GapErrors int
	// Errors collects unexpected subscriber or control-plane failures.
	Errors []string
	// Digests maps the sha256 of each subscriber's dirty stream to the
	// number of subscribers that saw it. Byte-identical delivery means
	// exactly one key.
	Digests map[string]int
	// P50 / P99 are the end-to-end delivery latencies (publish to
	// subscriber pickup) from the daemon's obs histograms.
	P50, P99 time.Duration
	// DeliverCount is the number of deliveries the histogram observed.
	DeliverCount uint64
	// Tenants holds the per-tenant /metrics families.
	Tenants map[string]TenantStat
	// Elapsed is the wall time of the streaming phase.
	Elapsed time.Duration
}

// subOutcome is one subscriber's tally.
type subOutcome struct {
	frames uint64
	bytes  uint64
	digest string
	gap    bool
	quota  bool
	err    error
}

// Run drives a session-mode daemon: creates Sessions sessions spread
// round-robin across Tenants, attaches Subs subscribers to each
// session's dirty channel, waits for every stream to terminate, scrapes
// /metrics for delivery latency and per-tenant throughput, and deletes
// the sessions.
func Run(opts Options) (*Result, error) {
	opts.defaults()
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	defer cancel()
	client := &http.Client{}
	res := &Result{Digests: make(map[string]int), Tenants: make(map[string]TenantStat)}
	spec := sessionSpecJSON(opts.Rows)

	// Phase 1: create sessions over the control plane.
	type created struct {
		tenant, name string
	}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		sem  = make(chan struct{}, 16)
		live []created
	)
	if opts.AttachOnly {
		statuses, err := listSessions(ctx, client, opts.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("list sessions: %w", err)
		}
		for _, st := range statuses {
			live = append(live, created{st.Tenant, st.Name})
			res.Created = append(res.Created, st.Tenant+"/"+st.Name)
		}
		sort.Strings(res.Created)
		logf("attached to %d existing sessions", len(live))
	} else {
		for i := 0; i < opts.Sessions; i++ {
			tenant := opts.Tenants[i%len(opts.Tenants)]
			name := fmt.Sprintf("s%04d", i)
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				status, body, err := postJSON(ctx, client, opts.BaseURL+"/v1/sessions", netstream.SessionRequest{
					Tenant: tenant, Name: name, Spec: spec,
				})
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err != nil:
					res.Errors = append(res.Errors, fmt.Sprintf("create %s/%s: %v", tenant, name, err))
				case status == http.StatusCreated:
					live = append(live, created{tenant, name})
					res.Created = append(res.Created, tenant+"/"+name)
				case status == http.StatusTooManyRequests:
					res.CreateRejected++
				default:
					res.Errors = append(res.Errors, fmt.Sprintf("create %s/%s: HTTP %d: %s", tenant, name, status, body))
				}
			}()
		}
		wg.Wait()
		sort.Strings(res.Created)
		logf("created %d/%d sessions (%d quota-rejected) across %d tenants",
			len(res.Created), opts.Sessions, res.CreateRejected, len(opts.Tenants))
	}

	// Phase 2: fan out subscribers and drain every stream.
	start := time.Now()
	outcomes := make([]subOutcome, len(live)*opts.Subs)
	for i, c := range live {
		for j := 0; j < opts.Subs; j++ {
			wg.Add(1)
			go func(slot int, c created) {
				defer wg.Done()
				outcomes[slot] = streamDirty(ctx, client, opts.BaseURL, c.tenant+"/"+c.name+"/dirty")
			}(i*opts.Subs+j, c)
		}
	}
	res.SubsStarted = len(outcomes)
	wg.Wait()
	res.Elapsed = time.Since(start)
	for _, o := range outcomes {
		res.Frames += o.frames
		res.Bytes += o.bytes
		if o.gap {
			res.GapErrors++
		}
		if o.quota {
			res.SubQuotaRejected++
		}
		if o.err != nil {
			res.Errors = append(res.Errors, o.err.Error())
		}
		if o.digest != "" {
			res.Digests[o.digest]++
		}
	}
	logf("%d subscribers drained: %d frames, %d bytes in %v", res.SubsStarted, res.Frames, res.Bytes, res.Elapsed.Round(time.Millisecond))

	// Phase 3: scrape the daemon's obs snapshot for delivery latency and
	// per-tenant families.
	if snap, err := scrapeMetrics(ctx, client, opts.BaseURL); err != nil {
		res.Errors = append(res.Errors, fmt.Sprintf("metrics: %v", err))
	} else {
		if h, ok := snap.Histograms["deliver"]; ok {
			// QuantileOK distinguishes an empty histogram (no deliveries —
			// reported as n/a by the caller via DeliverCount == 0) from a
			// genuinely sub-nanosecond-bucket one.
			res.DeliverCount = h.Count
			if p50, ok := h.QuantileOK(0.50); ok {
				res.P50 = time.Duration(p50)
			}
			if p99, ok := h.QuantileOK(0.99); ok {
				res.P99 = time.Duration(p99)
			}
		}
		for tenant, frames := range snap.TenantFrames {
			st := res.Tenants[tenant]
			st.Frames = frames
			res.Tenants[tenant] = st
		}
		for tenant, b := range snap.TenantBytes {
			st := res.Tenants[tenant]
			st.Bytes = b
			res.Tenants[tenant] = st
		}
		for tenant, q := range snap.TenantQuotaRejections {
			st := res.Tenants[tenant]
			st.QuotaRejections = q
			res.Tenants[tenant] = st
		}
	}

	// Phase 4: delete every session we created (skipped with
	// KeepSessions, e.g. before a kill-and-restart verification pass).
	if opts.KeepSessions {
		return res, nil
	}
	for _, c := range live {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
			opts.BaseURL+"/v1/sessions/"+url.PathEscape(c.tenant)+"/"+url.PathEscape(c.name), nil)
		if err != nil {
			res.Errors = append(res.Errors, err.Error())
			continue
		}
		resp, err := client.Do(req)
		if err != nil {
			res.Errors = append(res.Errors, fmt.Sprintf("delete %s/%s: %v", c.tenant, c.name, err))
			continue
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			res.Errors = append(res.Errors, fmt.Sprintf("delete %s/%s: HTTP %d", c.tenant, c.name, resp.StatusCode))
		}
	}
	return res, nil
}

// listSessions fetches the daemon's live session list.
func listSessions(ctx context.Context, client *http.Client, baseURL string) ([]netstream.SessionStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/sessions: HTTP %d", resp.StatusCode)
	}
	var out struct {
		Sessions []netstream.SessionStatus `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Sessions, nil
}

// postJSON posts v and returns the status code and body.
func postJSON(ctx context.Context, client *http.Client, url string, v any) (int, string, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp.StatusCode, out.String(), nil
}

// streamDirty subscribes to one session's dirty channel over NDJSON and
// drains it to the terminal frame, digesting every tuple.
func streamDirty(ctx context.Context, client *http.Client, baseURL, channel string) subOutcome {
	var o subOutcome
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		baseURL+"/stream?channel="+url.QueryEscape(channel)+"&from_seq=0", nil)
	if err != nil {
		o.err = err
		return o
	}
	resp, err := client.Do(req)
	if err != nil {
		o.err = fmt.Errorf("subscribe %s: %w", channel, err)
		return o
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		o.quota = true
		return o
	}
	if resp.StatusCode != http.StatusOK {
		o.err = fmt.Errorf("subscribe %s: HTTP %d", channel, resp.StatusCode)
		return o
	}
	h := sha256.New()
	var schema *stream.Schema
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		o.bytes += uint64(len(line))
		f, err := netstream.DecodeFrame(line)
		if err != nil {
			o.err = fmt.Errorf("%s: %w", channel, err)
			return o
		}
		switch f.Type {
		case netstream.FrameHello:
			if schema, err = netstream.SchemaFromDocument(f.Schema); err != nil {
				o.err = err
				return o
			}
		case netstream.FrameTuple:
			if err := digestTuple(h, f.Tuple); err != nil {
				o.err = err
				return o
			}
			o.frames++
		case netstream.FrameColBatch:
			tuples, err := netstream.DecodeColumnBatch(f.Batch, schema)
			if err != nil {
				o.err = err
				return o
			}
			for _, t := range tuples {
				if err := digestTuple(h, netstream.EncodeTuple(t)); err != nil {
					o.err = err
					return o
				}
				o.frames++
			}
		case netstream.FrameEOF:
			o.digest = hex.EncodeToString(h.Sum(nil))
			return o
		case netstream.FrameError:
			switch {
			case f.Gap != nil:
				o.gap = true
			case f.Quota != nil:
				o.quota = true
			default:
				o.err = fmt.Errorf("%s: server error: %s", channel, f.Error)
			}
			return o
		}
	}
	if err := sc.Err(); err != nil {
		o.err = fmt.Errorf("%s: %w", channel, err)
	} else {
		o.err = fmt.Errorf("%s: stream ended without a terminal frame", channel)
	}
	return o
}

// scrapeMetrics fetches and parses the daemon's Prometheus exposition.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (*obs.Snapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	return obs.ParsePrometheus(resp.Body)
}
