// Restart verification for the load harness: a durable session-mode
// daemon is loaded with -keep semantics (sessions survive the run),
// SIGKILLed, restarted over the same state directory, and re-verified
// with -attach semantics — the recovered daemon must serve every
// session byte-identical to the pre-kill run, with zero gap errors.
package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// killableDaemon is a session-mode daemon the test can SIGKILL or
// SIGTERM.
type killableDaemon struct {
	t       *testing.T
	cmd     *exec.Cmd
	done    chan error
	baseURL string
	stopped bool
}

// startKillableSessionDaemon launches icewafld -sessions with extra
// args on random ports and parses the announced HTTP address.
func startKillableSessionDaemon(t *testing.T, bin string, extra ...string) *killableDaemon {
	t.Helper()
	args := append([]string{"-sessions", "-listen", "127.0.0.1:0", "-http", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &killableDaemon{t: t, cmd: cmd, done: make(chan error, 1)}
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening tcp="); i >= 0 {
			for _, f := range strings.Fields(line[i:]) {
				if strings.HasPrefix(f, "http=") {
					d.baseURL = "http://" + strings.TrimPrefix(f, "http=")
				}
			}
			break
		}
	}
	go func() {
		for sc.Scan() {
		}
		d.done <- cmd.Wait()
	}()
	if d.baseURL == "" {
		_ = cmd.Process.Kill()
		t.Fatal("daemon never announced its HTTP address")
	}
	t.Cleanup(func() {
		if !d.stopped {
			_ = cmd.Process.Kill()
			<-d.done
		}
	})
	return d
}

// kill SIGKILLs the daemon — no drain, no WAL close, no goodbye.
func (d *killableDaemon) kill() {
	d.t.Helper()
	_ = d.cmd.Process.Kill()
	select {
	case <-d.done:
	case <-time.After(10 * time.Second):
		d.t.Fatal("daemon did not die after SIGKILL")
	}
	d.stopped = true
}

// terminate SIGTERMs the daemon and requires a clean exit.
func (d *killableDaemon) terminate() {
	d.t.Helper()
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-d.done:
		if err != nil {
			d.t.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		d.t.Fatal("daemon did not exit after SIGTERM")
	}
	d.stopped = true
}

// TestLoadHarnessRestartDigestsMatch: load a durable daemon with
// KeepSessions, SIGKILL it, restart over the same -state-dir, and
// re-run the harness with AttachOnly — both passes must produce the
// single direct-run digest across every subscriber of every session,
// with zero gap errors either side of the kill.
func TestLoadHarnessRestartDigestsMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness integration is not a -short test")
	}
	const rows, sessions, subs = 150, 4, 4
	bin := buildDaemon(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	daemonArgs := []string{"-state-dir", stateDir, "-wal-fsync-every", "32"}

	first := startKillableSessionDaemon(t, bin, daemonArgs...)
	res1, err := Run(Options{
		BaseURL:      first.baseURL,
		Tenants:      []string{"alpha", "beta"},
		Sessions:     sessions,
		Subs:         subs,
		Rows:         rows,
		Timeout:      3 * time.Minute,
		KeepSessions: true,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res1.Errors {
		t.Errorf("pre-kill error: %s", e)
	}
	want, _, err := directDigest(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Created) != sessions || res1.GapErrors != 0 {
		t.Fatalf("pre-kill: created=%d gaps=%d, want %d and 0", len(res1.Created), res1.GapErrors, sessions)
	}
	if len(res1.Digests) != 1 || res1.Digests[want] != sessions*subs {
		t.Fatalf("pre-kill digests = %v, want {%.12s…: %d}", res1.Digests, want, sessions*subs)
	}
	// KeepSessions left the durable state behind for the restart.
	if _, err := os.Stat(filepath.Join(stateDir, "alpha")); err != nil {
		t.Fatalf("state dir not populated before kill: %v", err)
	}
	first.kill()

	second := startKillableSessionDaemon(t, bin, daemonArgs...)
	defer second.terminate()
	res2, err := Run(Options{
		BaseURL:    second.baseURL,
		Tenants:    []string{"alpha", "beta"},
		Subs:       subs,
		Rows:       rows,
		Timeout:    3 * time.Minute,
		AttachOnly: true,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res2.Errors {
		t.Errorf("post-restart error: %s", e)
	}
	// The restarted daemon recovered every session and serves the exact
	// pre-kill streams.
	if len(res2.Created) != sessions {
		t.Fatalf("attached to %d recovered sessions, want %d: %v", len(res2.Created), sessions, res2.Created)
	}
	for i := range res1.Created {
		if res1.Created[i] != res2.Created[i] {
			t.Fatalf("recovered session list %v != created list %v", res2.Created, res1.Created)
		}
	}
	if res2.GapErrors != 0 {
		t.Fatalf("%d gap errors after restart, want 0", res2.GapErrors)
	}
	if len(res2.Digests) != 1 || res2.Digests[want] != sessions*subs {
		t.Fatalf("post-restart digests = %v, want {%.12s…: %d}", res2.Digests, want, sessions*subs)
	}
}
