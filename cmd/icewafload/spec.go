package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"strings"
	"time"

	"icewafl/internal/config"
	"icewafl/internal/csvio"
	"icewafl/internal/netstream"
	"icewafl/internal/schemafile"
)

// The harness drives every session with the same deterministic spec:
// identical schema, pollution configuration (fixed seed) and generated
// CSV input. Determinism is the point — it makes "every subscriber of
// every session saw byte-identical output" a checkable invariant.

const loadSchemaJSON = `{
  "timestamp": "Time",
  "fields": [
    {"name": "Time", "kind": "time"},
    {"name": "V", "kind": "float"},
    {"name": "K", "kind": "int"}
  ]
}`

const loadConfigJSON = `{
  "seed": 1184372,
  "pipelines": [
    {
      "name": "load",
      "polluters": [
        {
          "name": "scale V",
          "error": {"type": "scale_by_factor", "factor": 100},
          "condition": {"type": "random", "p": 0.5},
          "attrs": ["V"]
        },
        {
          "name": "null V",
          "error": {"type": "missing_value"},
          "condition": {"type": "random", "p": 0.1},
          "attrs": ["V"]
        }
      ]
    }
  ]
}`

// loadCSV renders rows input rows, one per second, values a fixed
// function of the row index.
func loadCSV(rows int) string {
	var sb strings.Builder
	sb.WriteString("Time,V,K\n")
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%s,%d.25,%d\n", base.Add(time.Duration(i)*time.Second).Format(time.RFC3339), i%89, i)
	}
	return sb.String()
}

// sessionSpecJSON renders the POST /v1/sessions spec payload icewafld's
// session builder consumes: schema + config + inline CSV.
func sessionSpecJSON(rows int) json.RawMessage {
	spec := map[string]any{
		"schema": json.RawMessage(loadSchemaJSON),
		"config": json.RawMessage(loadConfigJSON),
		"csv":    loadCSV(rows),
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		panic(err) // static inputs; cannot fail
	}
	return raw
}

// digestTuple folds one wire tuple into the running digest in its
// canonical JSON rendering.
func digestTuple(h hash.Hash, wt *netstream.WireTuple) error {
	b, err := json.Marshal(wt)
	if err != nil {
		return err
	}
	h.Write(b)
	h.Write([]byte{'\n'})
	return nil
}

// directDigest runs the load spec's pipeline in-process — no service,
// no wire — and returns the sha256 of the dirty stream in the same
// canonical rendering the subscribers digest, plus the tuple count.
// This is the reference the served sessions must be byte-identical to.
func directDigest(rows int) (string, int, error) {
	schema, err := schemafile.Parse(strings.NewReader(loadSchemaJSON))
	if err != nil {
		return "", 0, err
	}
	doc, err := config.Parse(strings.NewReader(loadConfigJSON))
	if err != nil {
		return "", 0, err
	}
	proc, err := config.Build(doc)
	if err != nil {
		return "", 0, err
	}
	if err := proc.ValidateAttrs(schema); err != nil {
		return "", 0, err
	}
	proc.KeepClean = false
	src, err := csvio.NewReader(strings.NewReader(loadCSV(rows)), schema)
	if err != nil {
		return "", 0, err
	}
	// Reorder matches the serve default the sessions run with.
	dirty, _, err := proc.RunStream(src, 64)
	if err != nil {
		return "", 0, err
	}
	h := sha256.New()
	n := 0
	for {
		t, err := dirty.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return "", 0, err
		}
		if err := digestTuple(h, netstream.EncodeTuple(t)); err != nil {
			return "", 0, err
		}
		n++
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
