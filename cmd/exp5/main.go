// Command exp5 runs the detector × error-type matrix (an extension of
// the paper's evaluation): one error type is injected at a time and a
// panel of statistical online detectors is scored against the pollution
// ground truth.
//
// Usage:
//
//	exp5 [-tuples 6000] [-seed 20160226]
package main

import (
	"flag"
	"log"
	"os"

	"icewafl/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("exp5: ")
	tuples := flag.Int("tuples", 6000, "length of the hourly evaluation stream")
	seed := flag.Int64("seed", experiments.DefaultDataSeed, "dataset seed")
	flag.Parse()

	r, err := experiments.RunExp5(*seed, *tuples)
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintExp5(os.Stdout, r)
}
