module icewafl

go 1.22
