// Package icewafl's repository-level benchmarks regenerate every table
// and figure of the paper's evaluation (one benchmark per artifact) and
// benchmark the design alternatives called out in DESIGN.md §5.
//
// Run with: go test -bench=. -benchmem
package icewafl

import (
	"fmt"
	"testing"
	"time"

	"icewafl/internal/anomaly"
	"icewafl/internal/core"
	"icewafl/internal/dataset"
	"icewafl/internal/dq"
	"icewafl/internal/experiments"
	"icewafl/internal/netstream"
	"icewafl/internal/obs"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

// BenchmarkFigure4RandomTemporalErrors regenerates Figure 4: the
// sinusoidal random-temporal-error scenario validated with the DQ tool,
// averaged over 10 repetitions per iteration.
func BenchmarkFigure4RandomTemporalErrors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp1Random(experiments.DefaultDataSeed, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Figure 4: avg errors %.1f, proportion %.2f%% (var %.2f)",
				r.AvgErrors, r.AvgProportion, r.VarProportion)
			for h := 0; h < 24; h++ {
				b.Logf("  hour %02d: expected %.2f measured %.2f", h, r.ExpectedPerHour[h], r.MeasuredPerHour[h])
			}
		}
	}
}

// BenchmarkTable1SoftwareUpdate regenerates Table 1: the composite
// software-update scenario, expected vs measured error counts.
func BenchmarkTable1SoftwareUpdate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp1Update(experiments.DefaultDataSeed, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("Table 1 (post-update %d, BPM>100 %d):", r.PostUpdateTuples, r.HighBPMTuples)
			for _, row := range r.Rows {
				b.Logf("  %-22s expected %.1f (+%d) measured %.1f",
					row.Label, row.Expected, row.PreExisting, row.Measured)
			}
		}
	}
}

// BenchmarkBadNetworkScenario regenerates the §3.1.3 numbers: expected
// vs measured delayed tuples.
func BenchmarkBadNetworkScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp1Network(experiments.DefaultDataSeed, 10)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("bad network: window %d, expected %.2f, measured %.2f",
				r.WindowTuples, r.ExpectedDelayed, r.MeasuredDelayed)
		}
	}
}

// benchmarkExp2 runs one region × scenario of the forecasting study.
func benchmarkExp2(b *testing.B, scenario string) {
	cfg := experiments.DefaultExp2Config()
	cfg.Reps = 2 // the cmd/exp2 binary runs the paper's full 10
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp2(cfg, dataset.RegionWanshouxigong, scenario)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range r.Summarise() {
				b.Logf("  %-14s early %.2f -> late %.2f (%+.0f%%)",
					s.Model, s.EarlyMAE, s.LateMAE, s.DegradationPercent)
			}
		}
	}
}

// BenchmarkFigure6NoisePollution regenerates Figure 6: MAE over time
// under temporally increasing noise.
func BenchmarkFigure6NoisePollution(b *testing.B) { benchmarkExp2(b, experiments.ScenarioNoise) }

// BenchmarkFigure7ScalePollution regenerates Figure 7: MAE over time
// under temporally increasing scale errors.
func BenchmarkFigure7ScalePollution(b *testing.B) { benchmarkExp2(b, experiments.ScenarioScale) }

// BenchmarkFigure8RuntimeOverhead regenerates Figure 8: the runtime of
// the three pollution scenarios against the unpolluted baseline.
func BenchmarkFigure8RuntimeOverhead(b *testing.B) {
	cfg := experiments.Exp3Config{DataSeed: experiments.DefaultDataSeed, Runs: 5, Replicas: 20}
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, sc := range r.Scenarios {
				b.Logf("  %-24s median %.1f ms overhead %+.1f%%", sc.Name, sc.Box.Median, sc.OverheadPercent)
			}
		}
	}
}

// BenchmarkTable2Splits regenerates Table 2: building the
// train/valid/eval splits for all three regions.
func BenchmarkTable2Splits(b *testing.B) {
	cfg := experiments.DefaultExp2Config()
	for i := 0; i < b.N; i++ {
		for _, region := range dataset.Regions() {
			if _, err := experiments.RunExp2(experiments.Exp2Config{
				DataSeed: cfg.DataSeed, Reps: 1, TrainHours: cfg.TrainHours,
				Horizon: cfg.Horizon, ARIMAOrder: cfg.ARIMAOrder,
				ARIMAXOrder: cfg.ARIMAXOrder, HWAlpha: cfg.HWAlpha,
				HWBeta: cfg.HWBeta, HWGamma: cfg.HWGamma, HWPeriod: cfg.HWPeriod,
				NoiseLoMax: cfg.NoiseLoMax, NoiseHiMax: cfg.NoiseHiMax,
				ScaleFactor: cfg.ScaleFactor, ScalePrior: cfg.ScalePrior,
				ScaleHold: cfg.ScaleHold,
			}, region, experiments.ScenarioEval); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §5) ---

func benchStream(n int) (*stream.Schema, []stream.Tuple) {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Second)),
			stream.Float(float64(i)),
		})
	}
	return schema, tuples
}

func noisePipe(seed int64) *core.Pipeline {
	return core.NewPipeline(core.NewStandard("noise",
		&core.GaussianNoise{Stddev: core.Const(1), Rand: rng.Derive(seed, "n")},
		core.NewRandomConst(0.3, rng.Derive(seed, "c")), "v"))
}

// BenchmarkPollutionTupleWise measures the streaming (tuple-wise)
// execution path on the pooled hot path: clone-on-read draws value
// buffers from a TuplePool (streaming mode pollutes in place, so the
// shared backing slice stays intact across iterations) and Recycle
// returns each buffer once the sink has moved past the tuple.
func BenchmarkPollutionTupleWise(b *testing.B) {
	schema, tuples := benchStream(10000)
	pool := stream.NewTuplePoolFor(schema)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc := core.NewProcess(noisePipe(int64(i)))
		proc.DisableLog = true
		src := stream.Map(stream.NewSliceSource(schema, tuples), nil, stream.PooledClone(pool))
		out, _, err := proc.RunStream(src, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stream.Copy(stream.DiscardSink{}, stream.Recycle(out, pool)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(10000)
}

// BenchmarkObsOverhead measures the cost of the observability layer on
// the pooled tuple-wise hot path (DESIGN.md §9). Three variants:
//
//   - off: proc.Obs is nil — the path every uninstrumented run takes.
//     Must match BenchmarkPollutionTupleWise within the perf-gate noise
//     budget and add zero allocations (the instrumentation compiles in
//     at the cost of one nil check per site).
//   - on: a live registry with tracing disabled — counters only, no
//     clock reads, still allocation-free in steady state.
//   - traced: additionally samples 1-in-64 tuples into the span ring,
//     paying two clock reads per sampled tuple.
func BenchmarkObsOverhead(b *testing.B) {
	schema, tuples := benchStream(10000)
	run := func(b *testing.B, reg *obs.Registry) {
		pool := stream.NewTuplePoolFor(schema)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			proc := core.NewProcess(noisePipe(int64(i)))
			proc.DisableLog = true
			proc.Obs = reg
			src := stream.Map(stream.NewSliceSource(schema, tuples), nil, stream.PooledClone(pool))
			out, _, err := proc.RunStream(src, 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stream.Copy(stream.DiscardSink{}, stream.Recycle(out, pool)); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(10000)
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, obs.NewRegistry()) })
	b.Run("traced", func(b *testing.B) {
		reg := obs.NewRegistry()
		reg.SetTraceSampling(64, obs.DefaultTraceCap)
		run(b, reg)
	})
}

// TestObsHotPathAllocFree asserts the tentpole overhead contract as a
// plain test so `go test` catches alloc regressions without the perf
// gate: in steady state the pooled hot path performs only per-run setup
// allocations (process, runner, source chain — a small constant),
// never per-tuple ones, and attaching a live registry adds none at all.
func TestObsHotPathAllocFree(t *testing.T) {
	schema, tuples := benchStream(1000)
	pool := stream.NewTuplePoolFor(schema)
	run := func(reg *obs.Registry) func() {
		seed := int64(0)
		return func() {
			seed++
			proc := core.NewProcess(noisePipe(seed))
			proc.DisableLog = true
			proc.Obs = reg
			src := stream.Map(stream.NewSliceSource(schema, tuples), nil, stream.PooledClone(pool))
			out, _, err := proc.RunStream(src, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := stream.Copy(stream.DiscardSink{}, stream.Recycle(out, pool)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Warm the pool so the measured runs are steady-state.
	run(nil)()
	nilAllocs := testing.AllocsPerRun(10, run(nil))
	reg := obs.NewRegistry()
	run(reg)() // warm the registry's lazy structures too
	onAllocs := testing.AllocsPerRun(10, run(reg))
	// 1000 tuples flow per run; a per-tuple alloc would cost >=1000.
	// The setup constant is ~19 (see BENCH_pr2.json); leave headroom.
	const setupCeiling = 64
	if nilAllocs > setupCeiling {
		t.Fatalf("nil-registry hot path allocates %v/run, want <= %d (per-tuple allocation crept in)", nilAllocs, setupCeiling)
	}
	// An enabled registry pays O(1) wrapper allocations at run setup
	// (the observed-source adapter, the DLQ gauge closure) but must stay
	// allocation-free per tuple: the counters are preallocated padded
	// cells and the sampler is pure arithmetic.
	const wrapperBudget = 8
	if onAllocs > nilAllocs+wrapperBudget {
		t.Fatalf("enabled registry allocates %v/run vs %v/run with nil registry; per-tuple instrumentation must be alloc-free", onAllocs, nilAllocs)
	}
}

// benchSink keeps cloned tuples observable so the compiler cannot
// elide the clone under test.
var benchSink stream.Tuple

// BenchmarkTuplePool isolates the cost of the two clone strategies the
// engine offers: plain allocating Clone versus pooled CloneTuple with
// buffer reuse.
func BenchmarkTuplePool(b *testing.B) {
	schema, tuples := benchStream(1)
	t := tuples[0]
	b.Run("clone-alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = t.Clone()
		}
	})
	b.Run("clone-pooled", func(b *testing.B) {
		pool := stream.NewTuplePoolFor(schema)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = pool.CloneTuple(t)
			pool.ReleaseTuple(benchSink)
		}
	})
}

// benchKeyedStream builds a stream with a string key attribute cycling
// over `sensors` distinct keys, for the sharded keyed benchmarks.
func benchKeyedStream(n, sensors int) (*stream.Schema, []stream.Tuple) {
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "sensor", Kind: stream.KindString},
		stream.Field{Name: "v", Kind: stream.KindFloat},
	)
	base := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	tuples := make([]stream.Tuple, n)
	for i := range tuples {
		tuples[i] = stream.NewTuple(schema, []stream.Value{
			stream.Time(base.Add(time.Duration(i) * time.Second)),
			stream.Str(fmt.Sprintf("sensor-%02d", i%sensors)),
			stream.Float(float64(i)),
		})
	}
	return schema, tuples
}

// keyedBenchPipeline is a keyed noise pipeline whose per-key state and
// randomness derive from the key, so sharded runs are byte-identical to
// sequential ones at every shard count.
func keyedBenchPipeline(seed int64) *core.Pipeline {
	return core.NewPipeline(core.NewKeyedPolluter("noise", "sensor", func(key string) core.Polluter {
		return core.NewStandard("noise",
			&core.GaussianNoise{Stddev: core.Const(1), Rand: rng.Derive(seed, "n/"+key)},
			core.NewRandomConst(0.3, rng.Derive(seed, "c/"+key)), "v")
	}))
}

// BenchmarkShardedKeyed measures the hash-sharded keyed execution path
// at increasing shard counts (shards=1 is the shared sequential code
// path). Output is identical at every degree; only wall-clock changes.
// Arena mode clones each tuple into recycled per-shard value blocks, so
// the shared tuple slice needs no defensive Clone stage and the steady
// state allocates nothing per tuple. The scaling-curve perf gate
// (cmd/perf gate -scaling-bench) enforces speedup(shards=N) on this
// family's recorded numbers.
func BenchmarkShardedKeyed(b *testing.B) {
	schema, tuples := benchKeyedStream(20000, 64)
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				proc := core.NewProcess(keyedBenchPipeline(1))
				proc.DisableLog = true
				src := stream.NewSliceSource(schema, tuples)
				out, _, err := proc.RunStreamSharded(src, 1, core.ShardConfig{
					KeyAttr: "sensor", Shards: shards, Arena: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stream.Copy(stream.DiscardSink{}, out); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(20000)
		})
	}
}

// BenchmarkShardedKeyedRelaxed measures the same workload under
// OrderRelaxed, which skips the sequence merge's ordering stalls —
// the headroom left above the strict merge. A separate benchmark
// family keeps the scaling gate's strict curve uncontaminated.
func BenchmarkShardedKeyedRelaxed(b *testing.B) {
	schema, tuples := benchKeyedStream(20000, 64)
	for _, shards := range []int{1, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				proc := core.NewProcess(keyedBenchPipeline(1))
				proc.DisableLog = true
				src := stream.NewSliceSource(schema, tuples)
				out, _, err := proc.RunStreamSharded(src, 1, core.ShardConfig{
					KeyAttr: "sensor", Shards: shards, Arena: true, Order: core.OrderRelaxed,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stream.Copy(stream.DiscardSink{}, out); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(20000)
		})
	}
}

// BenchmarkPollutionMicroBatch measures the batch execution path
// (materialise, clone, pollute, sort) on the same workload.
func BenchmarkPollutionMicroBatch(b *testing.B) {
	schema, tuples := benchStream(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc := core.NewProcess(noisePipe(int64(i)))
		proc.KeepClean = false
		proc.DisableLog = true
		if _, err := proc.Run(stream.NewSliceSource(schema, tuples)); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(10000)
}

// BenchmarkPollutionColumnar measures the columnar end-to-end hot path
// on the same workload as BenchmarkPollutionTupleWise/MicroBatch:
// batch-native ingest (the source serves column batches directly),
// conditions and error functions as vectorised sweeps over column
// slices with batched RNG draw-ahead, and batch-native emission via the
// runner's ColumnBatchReader side — no per-tuple materialisation
// anywhere. The differential suite (core/columnar_diff_test.go) proves
// the path byte-identical to the tuple-wise runner.
func BenchmarkPollutionColumnar(b *testing.B) {
	schema, tuples := benchStream(10000)
	batches, err := stream.BatchColumnar(stream.NewSliceSource(schema, tuples), 256)
	if err != nil {
		b.Fatal(err)
	}
	out := stream.NewColumnBatch(schema, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc := core.NewProcess(noisePipe(int64(i)))
		proc.DisableLog = true
		src, _, err := proc.RunStreamColumnar(stream.NewBatchSliceReader(schema, batches), 1)
		if err != nil {
			b.Fatal(err)
		}
		cbr := src.(stream.ColumnBatchReader)
		for {
			out.Reset()
			n, rerr := cbr.ReadBatch(out, 256)
			if rerr != nil {
				if n == 0 && stream.IsEndOfStream(rerr) {
					break
				}
				b.Fatal(rerr)
			}
		}
	}
	b.SetBytes(10000)
}

// BenchmarkPollutionColumnarTuples is the same columnar run consumed
// through the plain Source interface — per-row materialisation with
// pooled loaned buffers — to isolate the cost of leaving batch form.
func BenchmarkPollutionColumnarTuples(b *testing.B) {
	schema, tuples := benchStream(10000)
	pool := stream.NewTuplePoolFor(schema)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc := core.NewProcess(noisePipe(int64(i)))
		proc.DisableLog = true
		proc.Columnar.Pool = pool
		out, _, err := proc.RunStreamColumnar(stream.NewSliceSource(schema, tuples), 1)
		if err != nil {
			b.Fatal(err)
		}
		// Loaned buffers are released by the runner itself on the next
		// Next call, so the sink must not recycle.
		if _, err := stream.Copy(stream.DiscardSink{}, out); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(10000)
}

// TestColumnarHotPathAllocFree pins the columnar hot path to the
// zero-alloc class: amortised over the stream, steady-state processing
// must not allocate per tuple — only per-run setup (plan compilation,
// the first batch, pool warm-up) may.
func TestColumnarHotPathAllocFree(t *testing.T) {
	const n = 10000
	schema, tuples := benchStream(n)
	pool := stream.NewTuplePoolFor(schema)
	run := func() {
		proc := core.NewProcess(noisePipe(7))
		proc.DisableLog = true
		proc.Columnar.Pool = pool
		out, _, err := proc.RunStreamColumnar(stream.NewSliceSource(schema, tuples), 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := stream.Copy(stream.DiscardSink{}, out); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the pool outside the measurement
	perRun := testing.AllocsPerRun(10, run)
	if perTuple := perRun / n; perTuple >= 0.05 {
		t.Fatalf("columnar hot path allocates %.0f times per run (%.3f per tuple); want setup-only (< 0.05/tuple)", perRun, perTuple)
	}
}

// BenchmarkMergeSort measures Algorithm 1's sort-at-merge (step 3) over
// m sub-streams.
func BenchmarkMergeSort(b *testing.B) {
	schema, tuples := benchStream(40000)
	prepared, err := stream.Drain(stream.NewPrepare(stream.NewSliceSource(schema, tuples), 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subs := make([]stream.Source, 4)
		for s := range subs {
			var part []stream.Tuple
			for j := s; j < len(prepared); j += 4 {
				part = append(part, prepared[j])
			}
			subs[s] = stream.NewSliceSource(schema, part)
		}
		if _, err := stream.SortMerge(subs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeKWay measures the k-way streaming merge alternative over
// the same pre-sorted sub-streams.
func BenchmarkMergeKWay(b *testing.B) {
	schema, tuples := benchStream(40000)
	prepared, err := stream.Drain(stream.NewPrepare(stream.NewSliceSource(schema, tuples), 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subs := make([]stream.Source, 4)
		for s := range subs {
			var part []stream.Tuple
			for j := s; j < len(prepared); j += 4 {
				part = append(part, prepared[j])
			}
			subs[s] = stream.NewSliceSource(schema, part)
		}
		m, err := stream.NewKWayMerge(subs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stream.Copy(stream.DiscardSink{}, m); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSubStreams runs an m-pipeline process sequentially or in
// parallel; the results are identical (per-sub-stream RNG streams), only
// wall-clock differs.
func benchmarkSubStreams(b *testing.B, parallel bool) {
	schema, tuples := benchStream(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc := &core.Process{
			Pipelines: []*core.Pipeline{
				noisePipe(1), noisePipe(2), noisePipe(3), noisePipe(4),
			},
			Route:    stream.RouteRoundRobin(),
			Parallel: parallel,
		}
		if _, err := proc.Run(stream.NewSliceSource(schema, tuples)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubStreamsSequential pollutes 4 sub-streams one after another.
func BenchmarkSubStreamsSequential(b *testing.B) { benchmarkSubStreams(b, false) }

// BenchmarkSubStreamsParallel pollutes 4 sub-streams concurrently.
func BenchmarkSubStreamsParallel(b *testing.B) { benchmarkSubStreams(b, true) }

// BenchmarkConditionOrdering shows the value of short-circuit condition
// ordering inside And: cheap-first vs expensive-first.
func BenchmarkConditionOrdering(b *testing.B) {
	schema, tuples := benchStream(20000)
	expensive := core.AttrPredicate{Attr: "v", Desc: "expensive", Fn: func(v stream.Value) bool {
		f, _ := v.AsFloat()
		s := 0.0
		for k := 0; k < 50; k++ {
			s += f / float64(k+1)
		}
		return s > 1e18 // never true
	}}
	cheap := core.Never{}
	run := func(b *testing.B, cond core.Condition) {
		for i := 0; i < b.N; i++ {
			pipe := core.NewPipeline(core.NewStandard("p", core.MissingValue{}, cond, "v"))
			proc := core.NewProcess(pipe)
			proc.KeepClean = false
			if _, err := proc.Run(stream.NewSliceSource(schema, tuples)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("cheap-first", func(b *testing.B) { run(b, core.And{cheap, expensive}) })
	b.Run("expensive-first", func(b *testing.B) { run(b, core.And{expensive, cheap}) })
}

// BenchmarkPolluterThroughput reports raw pollution throughput
// (tuples/op) for a representative three-polluter pipeline.
func BenchmarkPolluterThroughput(b *testing.B) {
	for _, size := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			schema, tuples := benchStream(size)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pipe := core.NewPipeline(
					core.NewStandard("noise",
						&core.GaussianNoise{Stddev: core.Const(1), Rand: rng.Derive(int64(i), "a")},
						core.NewRandomConst(0.2, rng.Derive(int64(i), "b")), "v"),
					core.NewStandard("scale", &core.ScaleByFactor{Factor: core.Const(1.1)},
						core.TimeOfDay{FromHour: 0, ToHour: 12}, "v"),
					core.NewStandard("drop", core.DropTuple{},
						core.NewRandomConst(0.001, rng.Derive(int64(i), "d")), "v"),
				)
				proc := core.NewProcess(pipe)
				proc.KeepClean = false
				proc.DisableLog = true
				if _, err := proc.Run(stream.NewSliceSource(schema, tuples)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(size))
		})
	}
}

// BenchmarkDatasetGeneration measures the synthetic generators.
func BenchmarkDatasetGeneration(b *testing.B) {
	b.Run("wearable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataset.Wearable(int64(i))
		}
	})
	b.Run("airquality-1year", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dataset.AirQuality(dataset.RegionGucheng, int64(i), dataset.AirQualityOptions{Tuples: 8760})
		}
	})
}

// BenchmarkExp4SynthesisStudy regenerates the future-work synthesis
// study: error-pattern preservation across three synthesis approaches.
func BenchmarkExp4SynthesisStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp4(experiments.DefaultDataSeed, 2120)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range r.Rows {
				b.Logf("  %-20s errors %4d rate %5.1f%% shape-corr %5.2f",
					row.Stream, row.Errors, row.ErrorRate*100, row.ShapeCorrelation)
			}
		}
	}
}

// BenchmarkSeasonalModelAblation compares the paper's three methods with
// a seasonal ARIMA added (-with-sarima in cmd/exp2): seasonal modelling
// matches ARIMAX on clean data but collapses under noise like the other
// purely autoregressive methods — only exogenous anchoring buys
// robustness.
func BenchmarkSeasonalModelAblation(b *testing.B) {
	cfg := experiments.DefaultExp2Config()
	cfg.Reps = 1
	cfg.IncludeSARIMA = true
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp2(cfg, dataset.RegionWanshouxigong, experiments.ScenarioNoise)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range r.Summarise() {
				b.Logf("  %-14s early %.2f -> late %.2f (%+.0f%%)",
					s.Model, s.EarlyMAE, s.LateMAE, s.DegradationPercent)
			}
		}
	}
}

// BenchmarkParallelScaling measures the m-sub-stream pollution stage at
// different parallelism degrees (the paper's §5 future work, item 3:
// performance of stateful parallelisation). Outputs are identical at
// every degree; only wall-clock changes.
func BenchmarkParallelScaling(b *testing.B) {
	schema, tuples := benchStream(60000)
	for _, m := range []int{1, 2, 4, 8} {
		m := m
		b.Run(fmt.Sprintf("substreams=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipes := make([]*core.Pipeline, m)
				for j := range pipes {
					pipes[j] = noisePipe(int64(j))
				}
				proc := &core.Process{
					Pipelines: pipes,
					Route:     stream.RouteRoundRobin(),
					Parallel:  m > 1,
				}
				if _, err := proc.Run(stream.NewSliceSource(schema, tuples)); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(60000)
		})
	}
}

// BenchmarkExp5DetectorMatrix regenerates the detector × error-type
// matrix (extension experiment).
func BenchmarkExp5DetectorMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp5(experiments.DefaultDataSeed, 6000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, d := range r.Detectors {
				line := fmt.Sprintf("  %-20s", d)
				for _, s := range r.Scenarios {
					line += fmt.Sprintf(" %s=%.2f", s, r.Cells[d][s].Recall)
				}
				b.Log(line)
			}
		}
	}
}

// BenchmarkExp6CleaningMatrix regenerates the cleaner × error-type
// repair-quality matrix (extension experiment).
func BenchmarkExp6CleaningMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunExp6(experiments.DefaultDataSeed, 6000)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range r.Cleaners {
				line := fmt.Sprintf("  %-38s", c)
				for _, s := range r.Scenarios {
					line += fmt.Sprintf(" %s=%+.0f%%", s, r.Cells[c][s].ImprovementPercent)
				}
				b.Log(line)
			}
		}
	}
}

// BenchmarkSuiteValidation measures the DQ engine's validation
// throughput: the paper's software-update suite over the wearable
// stream.
func BenchmarkSuiteValidation(b *testing.B) {
	proc := experiments.SoftwareUpdateProcess(experiments.DefaultDataSeed)
	res, err := proc.Run(experiments.WearableSource(experiments.DefaultDataSeed))
	if err != nil {
		b.Fatal(err)
	}
	suite := experiments.SoftwareUpdateSuite()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := suite.Validate(res.Polluted)
		if len(results) != 4 {
			b.Fatal("wrong result count")
		}
	}
	b.SetBytes(int64(len(res.Polluted)))
}

// dqWindowedInput builds the shared input for the windowed-DQ pair: the
// software-update suite over the polluted wearable stream, validated in
// overlapping sliding windows (8h wide, 1h slide: every tuple belongs to
// 8 windows).
func dqWindowedInput(b *testing.B) (*dq.Suite, []stream.Tuple) {
	b.Helper()
	proc := experiments.SoftwareUpdateProcess(experiments.DefaultDataSeed)
	res, err := proc.Run(experiments.WearableSource(experiments.DefaultDataSeed))
	if err != nil {
		b.Fatal(err)
	}
	return experiments.SoftwareUpdateSuite(), res.Polluted
}

// BenchmarkDQIncremental measures the streaming monitor's sliding-window
// validation: each tuple is observed exactly once into its pane and
// windows close by merging pane partials — the per-tuple cost is
// independent of the window width.
func BenchmarkDQIncremental(b *testing.B) {
	suite, polluted := dqWindowedInput(b)
	schema := polluted[0].Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := dq.NewSlidingMonitor(suite, 8*time.Hour, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		windows := 0
		err = m.Run(stream.NewSliceSource(schema, polluted), func(dq.WindowResult) error {
			windows++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if windows == 0 {
			b.Fatal("no windows closed")
		}
	}
	b.SetBytes(int64(len(polluted)))
}

// BenchmarkDQBatchRevalidate measures the pre-monitor model the
// incremental engine replaces: buffer every sliding window and re-run
// the batch Check over its tuples, re-scanning each tuple once per
// overlapping window.
func BenchmarkDQBatchRevalidate(b *testing.B) {
	suite, polluted := dqWindowedInput(b)
	schema := polluted[0].Schema()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wins, err := stream.SlidingWindows(stream.NewSliceSource(schema, polluted), 8*time.Hour, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if len(wins) == 0 {
			b.Fatal("no windows")
		}
		for _, w := range wins {
			if res := suite.Validate(w.Tuples); len(res) == 0 {
				b.Fatal("no results")
			}
		}
	}
	b.SetBytes(int64(len(polluted)))
}

// BenchmarkAnomalyDetection measures online detector throughput over the
// air-quality stream.
func BenchmarkAnomalyDetection(b *testing.B) {
	data := dataset.AirQuality(dataset.RegionGucheng, 1, dataset.AirQualityOptions{Tuples: 8760})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := anomaly.Ensemble{Members: []anomaly.Detector{
			anomaly.NewRollingZScore("NO2", 72, 4),
			anomaly.NewRateOfChange("NO2", 25),
			anomaly.NewFrozenRun("NO2", 3),
		}}
		anomaly.Run(det, data)
	}
	b.SetBytes(8760)
}

// BenchmarkWALAppend measures the durable log's append path with the
// default fsync batching — the per-frame cost the service pays when
// -wal is enabled (DESIGN.md §12).
func BenchmarkWALAppend(b *testing.B) {
	w, err := netstream.OpenWAL(b.TempDir(), netstream.WALOptions{FsyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	payload := []byte(`{"type":"tuple","seq":1,"tuple":{"id":1,"sub":0,"ts":"2021-06-01T00:00:00Z","values":["2021-06-01T00:00:00Z",3.14,"s1"]}}`)
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(uint64(i+1), false, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHubReplayFromWAL measures serving a full channel replay to a
// late subscriber out of the durable log (the restart-resume read
// path): one subscribe plus draining 10k frames per iteration.
func BenchmarkHubReplayFromWAL(b *testing.B) {
	const frames = 10000
	dir := b.TempDir()
	payload := []byte(`{"type":"tuple","seq":1,"tuple":{"id":1,"sub":0,"ts":"2021-06-01T00:00:00Z","values":["2021-06-01T00:00:00Z",3.14,"s1"]}}`)
	w, err := netstream.OpenWAL(dir, netstream.WALOptions{FsyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	var total int64
	for i := 1; i <= frames; i++ {
		if err := w.Append(uint64(i), false, payload); err != nil {
			b.Fatal(err)
		}
		total += int64(len(payload))
	}
	if err := w.Append(frames+1, true, []byte(`{"type":"eof","seq":10001}`)); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	w, err = netstream.OpenWAL(dir, netstream.WALOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	hub := netstream.NewHub(64, 64, netstream.PolicyBlock, nil)
	if err := hub.AttachWAL(netstream.ChannelDirty, w); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, err := hub.Subscribe(netstream.ChannelDirty, 1)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			_, terminal, err := sub.Recv()
			if err != nil {
				b.Fatal(err)
			}
			n++
			if terminal {
				break
			}
		}
		if n < frames {
			b.Fatalf("replayed %d frames, want >= %d", n, frames)
		}
		sub.Close()
	}
}
