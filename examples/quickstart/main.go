// Quickstart: pollute a small sensor stream with a temporal error
// pattern, inspect the pollution log, and diff the polluted stream
// against the retained clean stream.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/groundtruth"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

func main() {
	// A stream schema needs a timestamp attribute (here "ts").
	schema := stream.MustSchema("ts",
		stream.Field{Name: "ts", Kind: stream.KindTime},
		stream.Field{Name: "temperature", Kind: stream.KindFloat},
		stream.Field{Name: "humidity", Kind: stream.KindFloat},
	)

	// A synthetic day of minute-granularity readings.
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	src := stream.NewGeneratorSource(schema, 24*60, func(i int) stream.Tuple {
		ts := start.Add(time.Duration(i) * time.Minute)
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(ts),
			stream.Float(20 + 5*float64(i%60)/60),
			stream.Float(55),
		})
	})

	// Pipeline: Gaussian noise on temperature whose probability follows
	// a daily sinusoid (a derived temporal error), plus missing humidity
	// values in the afternoon.
	seed := int64(7)
	pipeline := core.NewPipeline(
		core.NewStandard("noisy-temp",
			&core.GaussianNoise{Stddev: core.Const(2), Rand: rng.Derive(seed, "noise")},
			core.NewRandom(core.SinusoidDaily(0.25, 0.25), rng.Derive(seed, "noise-cond")),
			"temperature"),
		core.NewStandard("afternoon-dropouts",
			core.MissingValue{},
			core.And{
				core.TimeOfDay{FromHour: 13, ToHour: 17},
				core.NewRandomConst(0.1, rng.Derive(seed, "drop-cond")),
			},
			"humidity"),
	)

	result, err := core.NewProcess(pipeline).Run(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clean tuples:    %d\n", len(result.Clean))
	fmt.Printf("polluted tuples: %d\n", len(result.Polluted))
	fmt.Printf("errors injected: %d\n", result.Log.Len())
	for name, n := range result.Log.CountByPolluter() {
		fmt.Printf("  %-20s %d\n", name, n)
	}

	// The tuple IDs assigned during preparation link the polluted stream
	// back to the clean one — the ground-truth reference of the paper.
	diff := groundtruth.Diff(result.Clean, result.Polluted)
	fmt.Printf("tuples changed:  %d\n", len(diff.ChangedTupleIDs()))
	fmt.Printf("changes by attribute: %v\n", diff.CountByAttr())

	// Show the first few polluted tuples alongside their clean versions.
	byID := make(map[uint64]stream.Tuple)
	for _, t := range result.Clean {
		byID[t.ID] = t
	}
	shown := 0
	for _, t := range result.Polluted {
		clean := byID[t.ID]
		if t.Equal(clean) || shown >= 3 {
			continue
		}
		fmt.Printf("  clean %s\n  dirty %s\n", clean, t)
		shown++
	}
}
