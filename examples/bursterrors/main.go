// Burst errors: the stateful pollution extensions (the paper's §5 future
// work). A fleet of sensors streams readings; each sensor has its own
// two-state Markov error chain (Gilbert-Elliott), so errors arrive in
// per-sensor bursts — consecutive tuples' error indicators are dependent
// random variables, which per-tuple conditions cannot express. A
// windowed DQ monitor then shows the bursts as error spikes.
//
// Run with: go run ./examples/bursterrors
package main

import (
	"fmt"
	"log"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/dq"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "sensor", Kind: stream.KindString},
	stream.Field{Name: "reading", Kind: stream.KindFloat},
)

func main() {
	const seed = 99
	start := time.Date(2026, 7, 6, 0, 0, 0, 0, time.UTC)
	sensors := []string{"S1", "S2", "S3"}

	src := stream.NewGeneratorSource(schema, 3*24*60, func(i int) stream.Tuple {
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(start.Add(time.Duration(i/3) * time.Minute)),
			stream.Str(sensors[i%3]),
			stream.Float(100),
		})
	})

	// One Markov chain per sensor: bursts start rarely (p=0.005/tuple)
	// and last 1/0.1 = 10 tuples on average. The keyed polluter keeps
	// the chains independent and deterministic per (seed, sensor).
	keyed := core.NewKeyedPolluter("bursty-dropouts", "sensor", func(key string) core.Polluter {
		chain := core.NewMarkovCondition(0.005, 0.1, rng.Derive(seed, "burst/"+key))
		return core.NewStandard("dropout-"+key, core.MissingValue{}, chain, "reading")
	})

	res, err := core.NewProcess(core.NewPipeline(keyed)).Run(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuples: %d, errors injected: %d across sensors %v\n",
		len(res.Polluted), res.Log.Len(), keyed.Keys())

	// Burst structure: count maximal runs of consecutive nulls per sensor.
	runs := map[string][]int{}
	cur := map[string]int{}
	for _, t := range res.Polluted {
		sensor, _ := t.MustGet("sensor").AsString()
		if t.MustGet("reading").IsNull() {
			cur[sensor]++
			continue
		}
		if cur[sensor] > 0 {
			runs[sensor] = append(runs[sensor], cur[sensor])
			cur[sensor] = 0
		}
	}
	for _, s := range sensors {
		total, longest := 0, 0
		for _, r := range runs[s] {
			total += r
			if r > longest {
				longest = r
			}
		}
		avg := 0.0
		if len(runs[s]) > 0 {
			avg = float64(total) / float64(len(runs[s]))
		}
		fmt.Printf("  %s: %d bursts, avg length %.1f, longest %d\n",
			s, len(runs[s]), avg, longest)
	}

	// A streaming DQ monitor sees the bursts as spiky windows.
	monitor := dq.NewStreamingValidator(
		dq.NewSuite("monitor", dq.NotBeNull{Column: "reading"}),
		4*time.Hour)
	windows, err := monitor.Run(stream.NewSliceSource(schema, res.Polluted))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("windowed monitoring (4h windows):")
	for _, w := range windows {
		bar := ""
		for i := 0; i < w.Unexpected()/4; i++ {
			bar += "#"
		}
		fmt.Printf("  %s  %3d errors %s\n", w.Start.Format("15:04"), w.Unexpected(), bar)
	}
	worst := dq.WorstWindow(windows)
	fmt.Printf("worst window starts at %s with %d errors\n",
		windows[worst].Start.Format("15:04"), windows[worst].Unexpected())
}
