// Sensor fusion: the paper's motivating scenario (Figure 1). Four
// weather sensors report temperatures; S1 and S2 share a confounding
// disturbance (a drifting cloud), the same disturbance reaches S4 after a
// delay, and S3 is a logical sensor derived from S1 and S2, inheriting
// their errors. A downstream rule classifies the weather from the mean
// temperature — showing how dependent errors propagate into analysis
// results.
//
// Run with: go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"
	"time"

	"icewafl/internal/core"
	"icewafl/internal/rng"
	"icewafl/internal/stream"
)

var schema = stream.MustSchema("ts",
	stream.Field{Name: "ts", Kind: stream.KindTime},
	stream.Field{Name: "sensor", Kind: stream.KindString},
	stream.Field{Name: "temp", Kind: stream.KindFloat},
)

func main() {
	start := time.Date(2026, 7, 6, 6, 0, 0, 0, time.UTC)
	sensors := []string{"S1", "S2", "S4"}

	// Physical sensors: one reading each per minute, warm summer day.
	src := stream.NewGeneratorSource(schema, 3*12*60, func(i int) stream.Tuple {
		ts := start.Add(time.Duration(i/3) * time.Minute)
		sensor := sensors[i%3]
		return stream.NewTuple(schema, []stream.Value{
			stream.Time(ts), stream.Str(sensor), stream.Float(24 + 4*float64(i/3)/720),
		})
	})

	// The cloud passes between 10:00 and 12:00: an intermediate change
	// pattern scaling a negative temperature offset. S1 and S2 see it
	// directly; S4 sees it an hour later (the drift delay).
	cloud := core.IntermediatePattern{
		From:       start.Add(4 * time.Hour),
		To:         start.Add(6 * time.Hour),
		Triangular: true,
	}
	cloudLater := core.IntermediatePattern{
		From:       start.Add(5 * time.Hour),
		To:         start.Add(7 * time.Hour),
		Triangular: true,
	}
	seed := int64(42)

	// Sub-pipeline per sensor group (stream-specific error patterns,
	// §2.2.2): route by the sensor attribute is not directly usable here
	// because S1/S2 share a pipeline, so a custom route sends S1 and S2
	// to sub-stream 0 and S4 to sub-stream 1.
	route := func(t stream.Tuple, m int) []int {
		s, _ := t.MustGet("sensor").AsString()
		if s == "S4" {
			return []int{1}
		}
		return []int{0}
	}
	proc := &core.Process{
		Pipelines: []*core.Pipeline{
			core.NewPipeline(
				core.NewStandard("cloud shadow (S1, S2)",
					core.Offset{Delta: core.Scaled(cloud, -8)}, nil, "temp"),
				core.NewStandard("S2 miscalibration",
					core.Offset{Delta: core.Const(-1.5)},
					core.Compare{Attr: "sensor", Op: core.OpEq, Value: stream.Str("S2")},
					"temp"),
			),
			core.NewPipeline(
				core.NewStandard("cloud shadow, delayed (S4)",
					core.Offset{Delta: core.Scaled(cloudLater, -8)}, nil, "temp"),
				core.NewStandard("S4 dropouts",
					core.MissingValue{},
					core.NewRandomConst(0.02, rng.Derive(seed, "s4-drop")),
					"temp"),
			),
		},
		Route:     route,
		FirstID:   1,
		KeepClean: true,
	}

	result, err := proc.Run(src)
	if err != nil {
		log.Fatal(err)
	}

	// Derive the logical sensor S3 = mean(S1, S2) per timestamp — it
	// inherits any error present in its sources (the error-propagation
	// chain of Figure 1).
	type slot struct{ s1, s2 float64 }
	perMinute := map[time.Time]*slot{}
	for _, t := range result.Polluted {
		ts, _ := t.Timestamp()
		sensor, _ := t.MustGet("sensor").AsString()
		v, ok := t.MustGet("temp").AsFloat()
		if !ok {
			continue
		}
		sl := perMinute[ts]
		if sl == nil {
			sl = &slot{}
			perMinute[ts] = sl
		}
		switch sensor {
		case "S1":
			sl.s1 = v
		case "S2":
			sl.s2 = v
		}
	}

	// The downstream rule of Figure 1: Weather = hot iff Avg(temp) > 20.
	// Count classifications on the clean vs the polluted stream.
	classify := func(tuples []stream.Tuple) (hot, cold int) {
		sums := map[time.Time]struct {
			sum float64
			n   int
		}{}
		for _, t := range tuples {
			ts, _ := t.Timestamp()
			if v, ok := t.MustGet("temp").AsFloat(); ok {
				e := sums[ts]
				e.sum += v
				e.n++
				sums[ts] = e
			}
		}
		for _, e := range sums {
			if e.sum/float64(e.n) > 20 {
				hot++
			} else {
				cold++
			}
		}
		return hot, cold
	}
	cleanHot, cleanCold := classify(result.Clean)
	dirtyHot, dirtyCold := classify(result.Polluted)

	fmt.Printf("errors injected: %d (%v)\n", result.Log.Len(), result.Log.CountByPolluter())
	fmt.Printf("logical sensor S3 derived for %d timestamps\n", len(perMinute))
	fmt.Printf("weather classification clean:    hot=%d cold=%d\n", cleanHot, cleanCold)
	fmt.Printf("weather classification polluted: hot=%d cold=%d\n", dirtyHot, dirtyCold)
	fmt.Printf("=> %d timestamps flipped by the dependent sensor errors\n",
		abs(cleanHot-dirtyHot))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
