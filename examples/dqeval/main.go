// DQ evaluation: Experiment 1 in miniature. Pollutes the wearable-device
// stream with the software-update scenario, validates the result with the
// Great-Expectations-style suite, and scores the detections against the
// pollution ground truth.
//
// Run with: go run ./examples/dqeval
package main

import (
	"fmt"
	"log"

	"icewafl/internal/experiments"
	"icewafl/internal/groundtruth"
)

func main() {
	const seed = 20160226
	proc := experiments.SoftwareUpdateProcess(seed)
	result, err := proc.Run(experiments.WearableSource(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: %d tuples, %d errors injected\n",
		len(result.Polluted), result.Log.Len())

	suite := experiments.SoftwareUpdateSuite()
	truth := result.Log.PollutedTuples()
	fmt.Printf("%-55s %9s %10s %10s %6s\n", "expectation", "violations", "precision", "recall", "F1")
	for _, res := range suite.Validate(result.Polluted) {
		score := groundtruth.Evaluate(res.UnexpectedIDs, truth)
		fmt.Printf("%-55s %9d %10.2f %10.2f %6.2f\n",
			res.Expectation, res.Unexpected, score.Precision(), score.Recall(), score.F1())
	}

	// Combining all expectations recovers most polluted tuples.
	var flagged []uint64
	for _, res := range suite.Validate(result.Polluted) {
		flagged = append(flagged, res.UnexpectedIDs...)
	}
	combined := groundtruth.Evaluate(flagged, truth)
	fmt.Printf("%-55s %9s %10.2f %10.2f %6.2f\n", "combined suite", "-",
		combined.Precision(), combined.Recall(), combined.F1())
}
