// Forecast robustness: Experiment 2 in miniature. Pollutes one region's
// air-quality stream with temporally increasing noise and compares how
// the MAE of ARIMA, ARIMAX and Holt-Winters evolves as the noise grows.
//
// Run with: go run ./examples/forecast
package main

import (
	"fmt"
	"log"

	"icewafl/internal/experiments"
)

func main() {
	cfg := experiments.DefaultExp2Config()
	cfg.Reps = 3 // keep the example fast; the paper (and cmd/exp2) use 10

	for _, scenario := range []string{experiments.ScenarioEval, experiments.ScenarioNoise} {
		r, err := experiments.RunExp2(cfg, "Wanshouxigong", scenario)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scenario %s:\n", scenario)
		for _, s := range r.Summarise() {
			fmt.Printf("  %-14s MAE %6.2f (early) -> %6.2f (late)  degradation %+.0f%%\n",
				s.Model, s.EarlyMAE, s.LateMAE, s.DegradationPercent)
		}
	}
	fmt.Println("\nExpected shape: under increasing noise every model degrades,")
	fmt.Println("but ARIMAX — anchored on exogenous weather attributes — degrades least.")
}
