package icewafl

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"icewafl/internal/clean"
	"icewafl/internal/config"
	"icewafl/internal/csvio"
	"icewafl/internal/dataset"
	"icewafl/internal/dq"
	"icewafl/internal/groundtruth"
	"icewafl/internal/schemafile"
	"icewafl/internal/stream"
)

// TestFullBenchmarkLoop exercises the complete workflow a downstream
// user runs: generate a dataset, serialise it to CSV, pollute it with a
// JSON configuration, validate the polluted stream with a JSON
// expectation suite, score the detections against the pollution log, and
// repair the stream — all through the public package APIs the CLIs wrap.
func TestFullBenchmarkLoop(t *testing.T) {
	// 1. Generate and serialise the wearable dataset.
	schema := dataset.WearableSchema()
	data := dataset.Wearable(20160226)
	var csvBuf bytes.Buffer
	if err := csvio.WriteAll(&csvBuf, schema, data); err != nil {
		t.Fatal(err)
	}

	// 2. Pollute via the shipped JSON configuration.
	cf, err := os.Open(filepath.Join("examples", "cli", "pollution.json"))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := config.Load(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	reader, err := csvio.NewReader(&csvBuf, schema)
	if err != nil {
		t.Fatal(err)
	}
	result, err := proc.Run(reader)
	if err != nil {
		t.Fatal(err)
	}
	if result.Log.Len() == 0 {
		t.Fatal("no errors injected")
	}

	// 3. Validate with the shipped JSON expectation suite.
	sf, err := os.Open(filepath.Join("examples", "cli", "suite.json"))
	if err != nil {
		t.Fatal(err)
	}
	suite, err := dq.LoadSuite(sf)
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	results := suite.Validate(result.Polluted)
	failures := 0
	var flagged []uint64
	for _, r := range results {
		if !r.Success {
			failures++
		}
		flagged = append(flagged, r.UnexpectedIDs...)
	}
	if failures < 3 {
		t.Fatalf("polluted stream failed only %d expectations", failures)
	}
	// The clean stream passes everything except the BPM==0 activity-sum
	// check, which surfaces exactly the two pre-existing violations the
	// generator plants (the paper's "+2" observation on the real data).
	for _, r := range suite.Validate(result.Clean) {
		if strings.Contains(r.Expectation, "where BPM == 0") {
			if r.Unexpected != 2 {
				t.Fatalf("clean stream has %d pre-existing violations, want 2", r.Unexpected)
			}
			continue
		}
		if !r.Success {
			t.Fatalf("clean stream failed %s", r.Expectation)
		}
	}

	// 4. Score detections against the pollution ground truth.
	score := groundtruth.Evaluate(flagged, result.Log.PollutedTuples())
	if score.Recall() < 0.9 {
		t.Fatalf("suite recall %.2f too low", score.Recall())
	}

	// 5. Repair the polluted BPM attribute and verify improvement.
	repair, err := clean.Evaluate(clean.ForwardFill{}, result.Clean, result.Polluted, "BPM")
	if err != nil {
		t.Fatal(err)
	}
	if repair.Changed == 0 {
		t.Fatal("cleaner repaired nothing")
	}
	if repair.RMSEAfter >= repair.RMSEBefore {
		t.Fatalf("no repair improvement: %+v", repair)
	}
}

// TestShippedExampleFilesAreValid loads every example artefact shipped
// in examples/cli and checks consistency with the generated dataset.
func TestShippedExampleFilesAreValid(t *testing.T) {
	schema, err := schemafile.Load(filepath.Join("examples", "cli", "schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !schema.Equal(dataset.WearableSchema()) {
		t.Fatal("shipped schema diverged from the wearable dataset schema")
	}
	f, err := os.Open(filepath.Join("examples", "cli", "clean.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tuples, err := csvio.ReadAll(f, schema)
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Wearable(20160226)
	if len(tuples) != len(want) {
		t.Fatalf("shipped clean.csv has %d tuples, generator yields %d", len(tuples), len(want))
	}
	for i := range tuples {
		if !tuples[i].Equal(want[i]) {
			t.Fatalf("shipped clean.csv diverged from the generator at tuple %d", i)
		}
	}
}

// TestConfigAndProgrammaticScenarioAgree checks that the shipped JSON
// software-update scenario and the programmatic one in the experiments
// package inject the same error pattern (same polluted attributes, same
// deterministic sub-counts; random sub-polluters differ only within
// their probability band).
func TestConfigAndProgrammaticScenarioAgree(t *testing.T) {
	cf, err := os.Open(filepath.Join("examples", "cli", "pollution.json"))
	if err != nil {
		t.Fatal(err)
	}
	proc, err := config.Load(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	schema := dataset.WearableSchema()
	data := dataset.Wearable(20160226)
	res, err := proc.Run(stream.NewSliceSource(schema, data))
	if err != nil {
		t.Fatal(err)
	}
	diff := groundtruth.Diff(res.Clean, res.Polluted)
	byAttr := diff.CountByAttr()
	// The deterministic children touch every post-update tuple with
	// non-zero distance / fractional calories; compare against the
	// stream constants the experiments package reports.
	if byAttr["Distance"] < 300 || byAttr["Distance"] > 420 {
		t.Fatalf("Distance changes %d out of band", byAttr["Distance"])
	}
	if byAttr["CaloriesBurned"] < 900 || byAttr["CaloriesBurned"] > 980 {
		t.Fatalf("CaloriesBurned changes %d out of band", byAttr["CaloriesBurned"])
	}
	if byAttr["BPM"] < 15 || byAttr["BPM"] > 45 {
		t.Fatalf("BPM changes %d out of band", byAttr["BPM"])
	}
}
